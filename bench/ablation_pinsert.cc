// Ablation: parallel dependency insertion (sharded key index, pooled
// inserter threads) vs the serial indexed insert pipeline.
//
// Sweeps inserter-thread count x Zipf skew on a keyed KV workload
// (keyset_rw_conflict) and reports insert-path throughput: batches are
// pushed through insert_batch() exactly as the replica scheduler delivers
// them, then drained single-threaded so only the fill phases are timed —
// the same protocol ablation_index uses. The serial baseline is the
// coarse-grained indexed COS, i.e. the single-inserter pipeline the
// parallel-insert policy replaces (ROADMAP item 1: with O(k) probes the
// insert *thread* is the remaining ceiling). Skew matters twice: hot keys
// concentrate probe work in few shards (static shard->thread assignment
// balances worse) and produce more real edges (work both paths share).
//
// Series:
//   insert/serial-indexed/theta=<t>      x=1        y=Minserts/s
//   insert/pinsert/theta=<t>             x=threads  y=Minserts/s
//   speedup/pinsert-vs-serial/theta=<t>  x=threads  y=pinsert/serial
//
// The speedup series are gated by CI against BENCH_cos.json (--compare;
// the gate is one-sided, so a committed floor from a small host does not
// fail faster machines). Note the parallel path can only win when probe
// threads actually run in parallel: on a single-core host the pipeline
// overhead makes speedup < 1 at every thread count, and the committed
// baseline records exactly that floor (EXPERIMENTS.md).

#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "app/kv_service.h"
#include "bench_util.h"
#include "cos/factory.h"
#include "workload/generator.h"

namespace {

using psmr::Command;
using psmr::Cos;

constexpr std::uint64_t kKeySpace = 16384;
constexpr double kWritePct = 20.0;
constexpr std::size_t kWindow = 8192;
// Commands handed to insert_batch at once — a realistic delivered-batch
// size (the replica scheduler's delivery callback passes whole batches).
constexpr std::size_t kDeliveredBatch = 256;

// Repeated fill-then-drain cycles; only the fill (insert_batch) phases are
// timed. The single-threaded drain cannot block: a non-empty dependency
// DAG always has a source, and with one thread every ready permit is still
// pending.
double measure_insert_mops(Cos& cos, const std::vector<Command>& workload) {
  double insert_seconds = 0.0;
  std::size_t done = 0;
  while (done + kWindow <= workload.size()) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kWindow; i += kDeliveredBatch) {
      cos.insert_batch({workload.data() + done + i, kDeliveredBatch});
    }
    const auto t1 = std::chrono::steady_clock::now();
    insert_seconds += std::chrono::duration<double>(t1 - t0).count();
    for (std::size_t i = 0; i < kWindow; ++i) {
      cos.remove(cos.get());
    }
    done += kWindow;
  }
  return static_cast<double>(done) / insert_seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const psmr::bench::Options options = psmr::bench::parse_options(argc, argv);
  if (!options.run_real) {
    std::printf("ablation_pinsert has no simulator mode; run with "
                "--mode=real\n");
    return 0;
  }

  const std::vector<std::size_t> inserter_counts = {1, 2, 4};
  const std::vector<double> thetas = {0.0, 0.99};
  const std::size_t cycles = options.quick ? 2 : 8;

  psmr::bench::print_header(
      "ablation_pinsert",
      "insert-path throughput: sharded parallel insert vs serial indexed",
      "real");
  std::printf("%-22s %8s %6s %12s %9s\n", "pipeline", "threads", "theta",
              "Minserts/s", "speedup");

  psmr::KvService service(/*shard_count=*/kKeySpace);
  for (const double theta : thetas) {
    std::vector<Command> workload = psmr::make_kv_workload_zipf(
        service, cycles * kWindow, kWritePct, kKeySpace, theta,
        /*seed=*/42 + static_cast<std::uint64_t>(theta * 100));
    for (std::size_t i = 0; i < workload.size(); ++i) workload[i].id = i;

    // Serial baseline: the coarse-grained indexed COS — one thread computes
    // every edge, the pipeline every other scheduler policy uses.
    double serial = 0.0;
    {
      auto cos = psmr::make_cos({.kind = psmr::CosKind::kCoarseGrained,
                                 .capacity = kWindow,
                                 .conflict = psmr::keyset_rw_conflict,
                                 .indexed = true});
      serial = measure_insert_mops(*cos, workload);
      cos->close();
    }
    std::printf("%-22s %8d %6.2f %12.3f %9s\n", "serial-indexed", 1, theta,
                serial, "1.00x");
    char series[96];
    std::snprintf(series, sizeof(series), "insert/serial-indexed/theta=%.2f",
                  theta);
    psmr::bench::csv_row("ablation_pinsert", "real", series, 1.0, serial);

    for (const std::size_t threads : inserter_counts) {
      auto cos = psmr::make_parallel_insert_cos(
          {.capacity = kWindow,
           .conflict = psmr::keyset_rw_conflict,
           .insert_shards = 0,  // auto: 4x threads
           .inserter_threads = threads});
      const double mops = measure_insert_mops(*cos, workload);
      cos->close();
      const double speedup = mops / serial;
      std::printf("%-22s %8zu %6.2f %12.3f %8.2fx\n", "parallel-insert",
                  threads, theta, mops, speedup);

      std::snprintf(series, sizeof(series), "insert/pinsert/theta=%.2f",
                    theta);
      psmr::bench::csv_row("ablation_pinsert", "real", series,
                           static_cast<double>(threads), mops);
      std::snprintf(series, sizeof(series),
                    "speedup/pinsert-vs-serial/theta=%.2f", theta);
      psmr::bench::csv_row("ablation_pinsert", "real", series,
                           static_cast<double>(threads), speedup);
    }
  }

  psmr::bench::csv_flush();
  if (!psmr::bench::json_flush(options)) return 1;
  const int regressions = psmr::bench::run_compare("ablation_pinsert", options);
  return regressions == 0 ? 0 : 1;
}
