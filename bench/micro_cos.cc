// Microbenchmarks of the COS primitives (google-benchmark).
//
// BM_CosCycle measures one insert+get+remove cycle of a read command while
// the graph is held at a fixed population of in-flight ("executing")
// commands, for each implementation and several populations. The per-node
// slope and base extracted from these numbers calibrate the DES cost model
// (sim/cos_models.h); see EXPERIMENTS.md for the fitted constants.
//
// BM_CosInsertOnly isolates the scheduler-side insert cost (the lock-free
// scheduler's throughput ceiling reported by the paper). BM_EbrPin and
// BM_Semaphore quantify the fixed overheads of the supporting machinery.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/semaphore.h"
#include "cos/factory.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "memory/ebr.h"
#include "workload/generator.h"

namespace {

using psmr::Command;
using psmr::CosHandle;
using psmr::CosKind;

Command read_cmd(std::uint64_t id) {
  Command c = psmr::LinkedListService::make_contains(id);
  c.id = id;
  return c;
}

// One full cycle at a steady population: `population` commands are held in
// the executing state so every traversal walks them.
void BM_CosCycle(benchmark::State& state) {
  const auto kind = static_cast<CosKind>(state.range(0));
  const auto population = static_cast<std::size_t>(state.range(1));
  auto cos = psmr::make_cos({.kind = kind,
                             .capacity = population + 8,
                             .conflict = psmr::rw_conflict});

  std::uint64_t next_id = 1;
  std::vector<CosHandle> held;
  for (std::size_t i = 0; i < population; ++i) {
    cos->insert(read_cmd(next_id++));
    held.push_back(cos->get());  // mark executing; keep in the graph
  }

  for (auto _ : state) {
    cos->insert(read_cmd(next_id++));
    CosHandle h = cos->get();
    benchmark::DoNotOptimize(h);
    cos->remove(h);
  }

  for (CosHandle& h : held) cos->remove(h);
  state.SetLabel(psmr::cos_kind_name(kind));
}

void BM_CosInsertOnly(benchmark::State& state) {
  const auto kind = static_cast<CosKind>(state.range(0));
  // Large graph so inserts never block; a worker drains implicitly by
  // get+remove every iteration to keep the population constant at ~1.
  auto cos = psmr::make_cos(
      {.kind = kind, .capacity = 1 << 16, .conflict = psmr::rw_conflict});
  std::uint64_t next_id = 1;
  for (auto _ : state) {
    cos->insert(read_cmd(next_id++));
    state.PauseTiming();
    CosHandle h = cos->get();
    cos->remove(h);
    state.ResumeTiming();
  }
  state.SetLabel(psmr::cos_kind_name(kind));
}

// Scheduler-side insert cost on a keyed workload at a full window, with the
// key-indexed dependency tracker on or off. Each iteration fills the window
// (timed) and drains it single-threaded (untimed); items/s is the keyed
// insert throughput the acceptance gate cares about.
void BM_CosInsertKeyed(benchmark::State& state) {
  const auto kind = static_cast<CosKind>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const bool indexed = state.range(2) != 0;
  constexpr std::uint64_t kKeySpace = 16384;
  psmr::KvService service(/*shard_count=*/kKeySpace);
  std::vector<Command> workload = psmr::make_kv_workload(
      service, window, /*write_pct=*/20.0, kKeySpace, /*seed=*/42);
  for (std::size_t i = 0; i < workload.size(); ++i) workload[i].id = i + 1;

  auto cos = psmr::make_cos({.kind = kind,
                             .capacity = window,
                             .conflict = psmr::keyset_rw_conflict,
                             .indexed = indexed});
  for (auto _ : state) {
    for (const Command& c : workload) cos->insert(c);
    state.PauseTiming();
    for (std::size_t i = 0; i < window; ++i) cos->remove(cos->get());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(window));
  state.SetLabel(std::string(psmr::cos_kind_name(kind)) +
                 (indexed ? "/indexed" : "/scan"));
}

void BM_EbrPin(benchmark::State& state) {
  psmr::EbrDomain domain;
  for (auto _ : state) {
    auto guard = domain.pin();
    benchmark::DoNotOptimize(&guard);
  }
}

void BM_EbrRetireFlushCycle(benchmark::State& state) {
  psmr::EbrDomain domain;
  for (auto _ : state) {
    domain.retire(new int(1));
  }
  domain.flush();
}

void BM_Semaphore(benchmark::State& state) {
  psmr::Semaphore sem(1);
  for (auto _ : state) {
    sem.acquire();
    sem.release();
  }
}

void BM_ConflictCheck(benchmark::State& state) {
  const Command a = psmr::LinkedListService::make_contains(1);
  const Command b = psmr::LinkedListService::make_add(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psmr::rw_conflict(a, b));
  }
}

void cos_cycle_args(benchmark::internal::Benchmark* bench) {
  for (int kind = 0; kind < 3; ++kind) {
    for (int population : {0, 25, 75, 149}) {
      bench->Args({kind, population});
    }
  }
}

void cos_insert_keyed_args(benchmark::internal::Benchmark* bench) {
  for (int kind = 0; kind < 4; ++kind) {
    for (int window : {512, 8192}) {
      for (int indexed : {0, 1}) {
        bench->Args({kind, window, indexed});
      }
    }
  }
}

}  // namespace

BENCHMARK(BM_CosCycle)->Apply(cos_cycle_args)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_CosInsertOnly)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_CosInsertKeyed)
    ->Apply(cos_insert_keyed_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EbrPin)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_EbrRetireFlushCycle)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_Semaphore)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ConflictCheck)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
