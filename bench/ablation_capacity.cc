// Ablation: dependency-graph capacity (maxSize).
//
// The paper fixes the graph at 150 node slots for every technique (§7.2)
// without exploring the choice. This bench sweeps the capacity: too small
// starves the workers (the ready frontier is clipped), too large inflates
// every traversal for the scanning implementations — the coarse-grained
// insert is O(population) and the fine-grained remove walks the whole list,
// so their throughput *degrades* with capacity, while the lock-free
// structure mainly needs enough slots to keep all workers fed.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/ds_driver.h"

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  const std::vector<std::size_t> capacities =
      options.quick ? std::vector<std::size_t>{16, 150}
                    : std::vector<std::size_t>{8, 16, 50, 150, 500, 2000};

  std::printf("Ablation — dependency graph capacity (maxSize), light cost, "
              "10%% writes, 4 workers\n");
  std::printf("%10s %18s %18s %18s\n", "capacity", "coarse-grained",
              "fine-grained", "lock-free");
  for (std::size_t capacity : capacities) {
    std::printf("%10zu", capacity);
    for (psmr::CosKind kind :
         {psmr::CosKind::kCoarseGrained, psmr::CosKind::kFineGrained,
          psmr::CosKind::kLockFree}) {
      psmr::DsDriverConfig config;
      config.cos.kind = kind;
      config.cos.capacity = capacity;
      config.cost = psmr::ExecCost::kLight;
      config.write_pct = 10.0;
      config.workers = 4;
      config.warmup_ms = options.quick ? 30 : 80;
      config.measure_ms = options.quick ? 80 : 250;
      const auto result = psmr::run_ds_benchmark(config);
      std::printf(" %18.1f", result.throughput_kops);
      const std::string series =
          std::string("capacity/") + psmr::cos_kind_name(kind);
      psmr::bench::csv_row("ablation_capacity", "real", series.c_str(),
                           static_cast<double>(capacity),
                           result.throughput_kops);
    }
    std::printf("\n");
  }
  psmr::bench::csv_flush();
  return 0;
}
