// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints (a) a human-readable table and (b) machine-readable
// CSV rows of the form
//     CSV,<figure>,<mode>,<series>,<x>,<y>[,extra...]
// so the series can be plotted directly against the paper's figures.
//
// Flags (all optional; unknown flags are an error, exit code 2):
//   --mode=real|sim|both   real threads on this host, the calibrated DES
//                          model of the paper's 64-core replicas, or both
//                          (default: both)
//   --quick                trim sweeps for a fast smoke run
//   --json=<path>          also write the rows as JSON: an object mapping
//                          the figure name to an array of
//                          {figure,mode,series,x,y[,extra]} rows — the
//                          format of the committed BENCH_*.json baselines
//   --compare=<path>       after the run, compare against a committed
//                          baseline (see run_compare below); harnesses that
//                          support it exit non-zero on regression
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "tools/options.h"

namespace psmr::bench {

struct Options {
  bool run_real = true;
  bool run_sim = true;
  bool quick = false;
  std::string json_path;
  std::string compare_path;
};

// Built on the shared tools::FlagSet registry so the harnesses reject
// unknown flags exactly like psmr_node does (message + exit code 2).
inline Options parse_options(int argc, char** argv) {
  Options options;
  tools::FlagSet flags;
  flags.add_value("--mode", [&options](const char* v) {
    const std::string_view mode = v;
    if (mode != "real" && mode != "sim" && mode != "both") return false;
    options.run_real = mode != "sim";
    options.run_sim = mode != "real";
    return true;
  });
  flags.add_flag("--quick", &options.quick);
  flags.add_string("--json", &options.json_path);
  flags.add_string("--compare", &options.compare_path);
  if (!flags.parse(argc, argv)) std::exit(2);
  return options;
}

inline void print_header(const char* figure, const char* description,
                         const char* mode) {
  std::printf("\n=== %s (%s) — %s ===\n", figure, mode, description);
}

// One structured data point; everything csv_row records also lands here so
// it can be emitted as JSON and compared against baselines.
struct Row {
  std::string figure;
  std::string mode;
  std::string series;
  double x = 0.0;
  double y = 0.0;
  bool has_extra = false;
  double extra = 0.0;
};

inline std::vector<Row>& row_buffer() {
  static std::vector<Row> buffer;
  return buffer;
}

// CSV rows are buffered and printed as one block by csv_flush() so they do
// not interleave with the human-readable tables.
inline std::vector<std::string>& csv_buffer() {
  static std::vector<std::string> buffer;
  return buffer;
}

inline void csv_row(const char* figure, const char* mode, const char* series,
                    double x, double y) {
  char line[256];
  std::snprintf(line, sizeof(line), "CSV,%s,%s,%s,%g,%.3f", figure, mode,
                series, x, y);
  csv_buffer().emplace_back(line);
  row_buffer().push_back(Row{figure, mode, series, x, y, false, 0.0});
}

inline void csv_row(const char* figure, const char* mode, const char* series,
                    double x, double y, double extra) {
  char line[256];
  std::snprintf(line, sizeof(line), "CSV,%s,%s,%s,%g,%.3f,%.3f", figure,
                mode, series, x, y, extra);
  csv_buffer().emplace_back(line);
  row_buffer().push_back(Row{figure, mode, series, x, y, true, extra});
}

inline void csv_flush() {
  if (csv_buffer().empty()) return;
  std::printf("\n--- machine-readable series ---\n");
  for (const std::string& line : csv_buffer()) {
    std::printf("%s\n", line.c_str());
  }
  csv_buffer().clear();
}

// ---------------------------------------------------------------------------
// JSON output (--json=<path>).
// ---------------------------------------------------------------------------

inline void json_escape_to(std::string* out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
}

// Writes every recorded row, grouped by figure:
//   { "<figure>": [ {"figure":..,"mode":..,"series":..,"x":..,"y":..}, .. ] }
// plus a top-level "metrics" key holding the process-wide
// MetricsRegistry::snapshot() (per-stage breakdowns: COS insert/get/block
// counters, scheduler batch stats, transport traffic). Baseline comparison
// ignores it — run_compare only reads "speedup/" rows and the JsonReader
// skips unknown keys — so committed baselines stay compatible.
// Returns false (with a message on stderr) if the file cannot be written.
inline bool json_flush(const Options& options) {
  if (options.json_path.empty()) return true;
  std::FILE* f = std::fopen(options.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
    return false;
  }
  // Figures in first-appearance order.
  std::vector<std::string> figures;
  for (const Row& row : row_buffer()) {
    bool known = false;
    for (const std::string& fig : figures) known = known || fig == row.figure;
    if (!known) figures.push_back(row.figure);
  }
  std::string out = "{\n";
  for (std::size_t fi = 0; fi < figures.size(); ++fi) {
    out += "  \"";
    json_escape_to(&out, figures[fi]);
    out += "\": [\n";
    bool first = true;
    for (const Row& row : row_buffer()) {
      if (row.figure != figures[fi]) continue;
      if (!first) out += ",\n";
      first = false;
      char buf[384];
      if (row.has_extra) {
        std::snprintf(buf, sizeof(buf),
                      "    {\"figure\": \"%s\", \"mode\": \"%s\", \"series\": "
                      "\"%s\", \"x\": %g, \"y\": %.4f, \"extra\": %.4f}",
                      row.figure.c_str(), row.mode.c_str(), row.series.c_str(),
                      row.x, row.y, row.extra);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "    {\"figure\": \"%s\", \"mode\": \"%s\", \"series\": "
                      "\"%s\", \"x\": %g, \"y\": %.4f}",
                      row.figure.c_str(), row.mode.c_str(), row.series.c_str(),
                      row.x, row.y);
      }
      out += buf;
    }
    out += "\n  ]";
    out += fi + 1 < figures.size() ? ",\n" : "\n";
  }
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  if (!snapshot.empty()) {
    if (!figures.empty()) {
      out.erase(out.size() - 1);  // drop trailing '\n' after last ']'
      out += ",\n";
    }
    out += "  \"metrics\": " + snapshot.to_json() + "\n";
  }
  out += "}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %zu rows to %s\n", row_buffer().size(),
              options.json_path.c_str());
  return true;
}

// ---------------------------------------------------------------------------
// Baseline comparison (--compare=<path>).
//
// The baseline is JSON in the json_flush format (an object with per-figure
// row arrays) or a bare row array. Only rows whose series starts with
// "speedup/" participate in the gate: speedups are ratios of two
// measurements from the same run, so they transfer across machines, unlike
// absolute throughput. A current value more than `band` below the baseline
// is a regression.
// ---------------------------------------------------------------------------

namespace detail {

// Minimal recursive-descent JSON reader — just enough for the baseline
// files; tolerates and skips anything it does not care about.
struct JsonReader {
  const char* p;
  const char* end;
  bool ok = true;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char ch) {
    ws();
    if (p < end && *p == ch) {
      ++p;
      return true;
    }
    return false;
  }
  bool parse_string(std::string* out) {
    ws();
    if (p >= end || *p != '"') return ok = false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) ++p;
      out->push_back(*p++);
    }
    if (p >= end) return ok = false;
    ++p;  // closing quote
    return true;
  }
  bool parse_number(double* out) {
    ws();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p) return ok = false;
    p = after;
    return true;
  }
  // Skips any value (object, array, string, number, literal).
  bool skip_value() {
    ws();
    if (p >= end) return ok = false;
    if (*p == '"') {
      std::string ignored;
      return parse_string(&ignored);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      ++p;
      int depth = 1;
      while (p < end && depth > 0) {
        if (*p == '"') {
          std::string ignored;
          if (!parse_string(&ignored)) return false;
          continue;
        }
        if (*p == open) ++depth;
        if (*p == close) --depth;
        ++p;
      }
      return depth == 0 ? true : (ok = false);
    }
    while (p < end && *p != ',' && *p != '}' && *p != ']') ++p;
    return true;
  }
  // Parses a row object {"figure":...,"x":...,...}.
  bool parse_row(Row* row) {
    if (!consume('{')) return ok = false;
    if (consume('}')) return true;
    do {
      std::string key;
      if (!parse_string(&key) || !consume(':')) return ok = false;
      if (key == "figure") {
        if (!parse_string(&row->figure)) return false;
      } else if (key == "mode") {
        if (!parse_string(&row->mode)) return false;
      } else if (key == "series") {
        if (!parse_string(&row->series)) return false;
      } else if (key == "x") {
        if (!parse_number(&row->x)) return false;
      } else if (key == "y") {
        if (!parse_number(&row->y)) return false;
      } else if (key == "extra") {
        row->has_extra = true;
        if (!parse_number(&row->extra)) return false;
      } else {
        if (!skip_value()) return false;
      }
    } while (consume(','));
    return consume('}') ? true : (ok = false);
  }
  bool parse_row_array(std::vector<Row>* rows) {
    if (!consume('[')) return ok = false;
    if (consume(']')) return true;
    do {
      Row row;
      if (!parse_row(&row)) return false;
      rows->push_back(std::move(row));
    } while (consume(','));
    return consume(']') ? true : (ok = false);
  }
};

// Extracts the row array for `figure` from baseline text: either the value
// under the "<figure>" key of a top-level object, or — for a bare top-level
// array — every row whose figure field matches.
inline bool load_baseline_rows(const std::string& text, const char* figure,
                               std::vector<Row>* rows) {
  JsonReader r{text.data(), text.data() + text.size()};
  r.ws();
  if (r.p < r.end && *r.p == '[') {
    std::vector<Row> all;
    if (!r.parse_row_array(&all)) return false;
    for (Row& row : all) {
      if (row.figure == figure || row.figure.empty()) {
        rows->push_back(std::move(row));
      }
    }
    return true;
  }
  if (!r.consume('{')) return false;
  if (r.consume('}')) return true;
  do {
    std::string key;
    if (!r.parse_string(&key) || !r.consume(':')) return false;
    if (key == figure) return r.parse_row_array(rows);
    if (!r.skip_value()) return false;
  } while (r.consume(','));
  return true;  // figure absent: nothing to compare
}

}  // namespace detail

// Compares the current run's "speedup/" rows for `figure` against the
// committed baseline at options.compare_path. Returns the number of
// regressions (current speedup below (1 - band) x baseline); 0 when the
// gate passes, -1 if the baseline cannot be read. Baseline points missing
// from the current run count as regressions (a silently dropped
// configuration must not pass the gate).
inline int run_compare(const char* figure, const Options& options,
                       double band = 0.20) {
  if (options.compare_path.empty()) return 0;
  std::FILE* f = std::fopen(options.compare_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n",
                 options.compare_path.c_str());
    return -1;
  }
  std::string text;
  char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(f);

  std::vector<Row> baseline;
  if (!detail::load_baseline_rows(text, figure, &baseline)) {
    std::fprintf(stderr, "malformed baseline %s\n",
                 options.compare_path.c_str());
    return -1;
  }

  int regressions = 0;
  int checked = 0;
  std::printf("\n--- baseline comparison (%s, band ±%.0f%%) ---\n",
              options.compare_path.c_str(), band * 100.0);
  for (const Row& base : baseline) {
    if (base.series.rfind("speedup/", 0) != 0) continue;
    const Row* current = nullptr;
    for (const Row& row : row_buffer()) {
      if (row.figure == base.figure && row.mode == base.mode &&
          row.series == base.series && row.x == base.x) {
        current = &row;
        break;
      }
    }
    ++checked;
    if (current == nullptr) {
      std::printf("MISSING  %s/%s x=%g (baseline %.3f)\n", base.mode.c_str(),
                  base.series.c_str(), base.x, base.y);
      ++regressions;
      continue;
    }
    const bool regressed = current->y < base.y * (1.0 - band);
    std::printf("%s %s/%s x=%g: current %.3f vs baseline %.3f\n",
                regressed ? "REGRESS " : "ok      ", base.mode.c_str(),
                base.series.c_str(), base.x, current->y, base.y);
    if (regressed) ++regressions;
  }
  if (checked == 0) {
    std::printf("no gated (speedup/) series in baseline — nothing checked\n");
  } else if (regressions == 0) {
    std::printf("gate passed: %d series within band\n", checked);
  } else {
    std::printf("gate FAILED: %d of %d series regressed\n", regressions,
                checked);
  }
  return regressions;
}

}  // namespace psmr::bench
