// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints (a) a human-readable table and (b) machine-readable
// CSV rows of the form
//     CSV,<figure>,<mode>,<series>,<x>,<y>[,extra...]
// so the series can be plotted directly against the paper's figures.
//
// Flags (all optional):
//   --mode=real|sim|both   real threads on this host, the calibrated DES
//                          model of the paper's 64-core replicas, or both
//                          (default: both)
//   --quick                trim sweeps for a fast smoke run
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace psmr::bench {

struct Options {
  bool run_real = true;
  bool run_sim = true;
  bool quick = false;
};

inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=real") {
      options.run_sim = false;
    } else if (arg == "--mode=sim") {
      options.run_real = false;
    } else if (arg == "--mode=both") {
      options.run_real = options.run_sim = true;
    } else if (arg == "--quick") {
      options.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
    }
  }
  return options;
}

inline void print_header(const char* figure, const char* description,
                         const char* mode) {
  std::printf("\n=== %s (%s) — %s ===\n", figure, mode, description);
}

// CSV rows are buffered and printed as one block by csv_flush() so they do
// not interleave with the human-readable tables.
inline std::vector<std::string>& csv_buffer() {
  static std::vector<std::string> buffer;
  return buffer;
}

inline void csv_row(const char* figure, const char* mode, const char* series,
                    double x, double y) {
  char line[256];
  std::snprintf(line, sizeof(line), "CSV,%s,%s,%s,%g,%.3f", figure, mode,
                series, x, y);
  csv_buffer().emplace_back(line);
}

inline void csv_row(const char* figure, const char* mode, const char* series,
                    double x, double y, double extra) {
  char line[256];
  std::snprintf(line, sizeof(line), "CSV,%s,%s,%s,%g,%.3f,%.3f", figure,
                mode, series, x, y, extra);
  csv_buffer().emplace_back(line);
}

inline void csv_flush() {
  if (csv_buffer().empty()) return;
  std::printf("\n--- machine-readable series ---\n");
  for (const std::string& line : csv_buffer()) {
    std::printf("%s\n", line.c_str());
  }
  csv_buffer().clear();
}

}  // namespace psmr::bench
