// Figure 4: parallel-SMR throughput for different execution costs and
// number of workers (0% writes), plus the sequential-SMR baseline.
//
// Same sweep as Fig. 2 but each point is a full deployment: 3 replicas over
// the simulated network, sequenced atomic broadcast with batching, and
// closed-loop clients. Expected shape: same ordering as Fig. 2 with lower
// absolute values (ordering-protocol overhead); parallel beats sequential
// for every configuration with more than one worker; lock-free scales
// linearly in the inset range.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/cos_models.h"
#include "workload/smr_driver.h"

namespace {

using psmr::CosKind;
using psmr::ExecCost;

constexpr CosKind kKinds[] = {CosKind::kCoarseGrained, CosKind::kFineGrained,
                              CosKind::kLockFree};
constexpr ExecCost kCosts[] = {ExecCost::kLight, ExecCost::kModerate,
                               ExecCost::kHeavy};

void run_real(const psmr::bench::Options& options) {
  const auto workers =
      options.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig4", "SMR throughput vs workers, 0% writes (kops/sec)",
        (std::string("real, ") + psmr::exec_cost_name(cost)).c_str());

    psmr::SmrDriverConfig sequential;
    sequential.policy = psmr::SchedulerPolicy::kSequential;
    sequential.cost = cost;
    sequential.clients = 8;
    sequential.pipeline = 8;
    sequential.warmup_ms = options.quick ? 100 : 200;
    sequential.measure_ms = options.quick ? 200 : 500;
    const auto seq_result = psmr::run_smr_benchmark(sequential);
    std::printf("sequential SMR: %.1f kops/sec\n",
                seq_result.throughput_kops);
    const std::string seq_series =
        std::string("sequential/") + psmr::exec_cost_name(cost);
    psmr::bench::csv_row("fig4", "real", seq_series.c_str(), 1,
                         seq_result.throughput_kops);

    std::printf("%8s %18s %18s %18s\n", "workers", "coarse-grained",
                "fine-grained", "lock-free");
    std::vector<std::pair<int, double>> lock_free_points;
    for (int w : workers) {
      std::printf("%8d", w);
      for (CosKind kind : kKinds) {
        psmr::SmrDriverConfig config;
        config.cos.kind = kind;
        config.cost = cost;
        config.workers = w;
        config.clients = 8;
        config.pipeline = 8;
        config.warmup_ms = options.quick ? 100 : 200;
        config.measure_ms = options.quick ? 200 : 500;
        const auto result = psmr::run_smr_benchmark(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig4", "real", series.c_str(), w,
                             result.throughput_kops);
        if (kind == CosKind::kLockFree) {
          lock_free_points.emplace_back(w, result.throughput_kops);
        }
      }
      std::printf("\n");
    }
    // Machine-portable ratios for the committed end-to-end baseline
    // (BENCH_smr.json): parallel lock-free vs the sequential baseline.
    // Only "speedup/" series participate in the --compare gate.
    if (seq_result.throughput_kops > 0) {
      for (const auto& [w, kops] : lock_free_points) {
        const std::string series =
            std::string("speedup/lock-free/") + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig4", "real", series.c_str(), w,
                             kops / seq_result.throughput_kops);
      }
    }
  }
}

void run_sim(const psmr::bench::Options& options) {
  const auto workers = options.quick
                           ? std::vector<int>{1, 4, 16, 64}
                           : std::vector<int>{1, 2,  4,  6,  8,  10, 12,
                                              16, 24, 32, 40, 48, 56, 64};
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig4", "SMR throughput vs workers, 0% writes (kops/sec)",
        (std::string("sim 64-core, ") + psmr::exec_cost_name(cost)).c_str());

    psmr::sim::SimConfig sequential;
    sequential.smr_mode = true;
    sequential.sequential = true;
    sequential.cost = cost;
    sequential.clients = 200;
    if (options.quick) sequential.measure_ns = 50'000'000;
    const auto seq_result = psmr::sim::simulate_cos(sequential);
    std::printf("sequential SMR: %.1f kops/sec\n",
                seq_result.throughput_kops);
    const std::string seq_series =
        std::string("sequential/") + psmr::exec_cost_name(cost);
    psmr::bench::csv_row("fig4", "sim", seq_series.c_str(), 1,
                         seq_result.throughput_kops);

    std::printf("%8s %18s %18s %18s\n", "workers", "coarse-grained",
                "fine-grained", "lock-free");
    for (int w : workers) {
      std::printf("%8d", w);
      for (CosKind kind : kKinds) {
        psmr::sim::SimConfig config;
        config.smr_mode = true;
        config.kind = kind;
        config.cost = cost;
        config.workers = w;
        config.clients = 200;
        if (options.quick) config.measure_ns = 50'000'000;
        const auto result = psmr::sim::simulate_cos(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig4", "sim", series.c_str(), w,
                             result.throughput_kops);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  std::printf("Figure 4 — SMR throughput for different execution costs and "
              "number of workers (0%% writes)\n");
  if (options.run_real) run_real(options);
  if (options.run_sim) run_sim(options);
  psmr::bench::csv_flush();
  if (!psmr::bench::json_flush(options)) return 1;
  // Gate the end-to-end SMR ratios against the committed BENCH_smr.json
  // baseline (per-point minimum over repeated runs).
  const int regressions = psmr::bench::run_compare("fig4", options);
  return regressions == 0 ? 0 : 1;
}
