// Ablation: early scheduling vs the COS DAG, swept over conflict ratio.
//
// The paper's §7.3.1 ceiling is the parallelizer thread: every command pays
// a conflict scan and a graph insertion. Early scheduling (arXiv
// 1805.05152, cos/early_sched.h) replaces that with a static class lookup
// and a ring push for single-class commands; only cross-class commands
// still pay the DAG plus a barrier. This harness quantifies the trade: a
// Zipf-skewed single-key workload over 64 bank accounts in which a swept
// fraction of commands are cross-class transfers (classes = account mod
// workers, so every such transfer routes kSync).
//
// For each cross-class percentage both schedulers run the same command
// stream with 8 consumer threads, and three things are measured:
//   insert/<sched>      x=cross%  y=Minserts/s — time spent inside the
//                       scheduler's insert_batch calls only (the paper's
//                       bottleneck path)
//   total/<sched>       x=cross%  y=completed kops/s end to end
//   population/<sched>  x=cross%  y=mean commands resident in the
//                       scheduler structure, sampled per batch (the DAG
//                       piles up; class queues drain independently)
//   speedup/early-vs-dag x=cross% y=early/dag insert-path ratio
//
// The speedup series is a ratio of two measurements from the same run and
// machine, so it transfers across hardware; CI gates on it against the
// committed BENCH_cos.json baseline (--compare). The band is ±35% — wider
// than the single-threaded ablations' ±20% because both sides of the ratio
// are multi-threaded runs — and the committed baseline is the per-point
// minimum over repeated runs.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "app/bank_service.h"
#include "bench_util.h"
#include "common/rng.h"
#include "cos/class_map.h"
#include "cos/early_sched.h"
#include "cos/factory.h"

namespace {

using psmr::BankService;
using psmr::Command;
using psmr::Cos;
using psmr::CosHandle;
using psmr::CosKind;

constexpr int kWorkers = 8;
constexpr std::uint64_t kAccounts = 64;
constexpr std::size_t kBatch = 256;
// Large windows so neither insert path blocks on capacity — the sweep
// isolates per-command insert cost, not drain speed.
constexpr std::size_t kDagCapacity = 4096;
constexpr std::size_t kRingCapacity = 4096;

// `cross_pct` percent cross-class transfers (account classes differ mod
// kWorkers), rest Zipf(0.99)-skewed single-account deposits.
std::vector<Command> make_workload(std::size_t count, double cross_pct,
                                   std::uint64_t seed) {
  std::vector<Command> commands;
  commands.reserve(count);
  psmr::Xoshiro256 rng(seed);
  psmr::ZipfGenerator zipf(kAccounts, 0.99);
  for (std::size_t i = 0; i < count; ++i) {
    Command c;
    if (rng.uniform() * 100.0 < cross_pct) {
      const std::uint64_t from = zipf(rng);
      // Pick a destination in a different class so the transfer is kSync.
      std::uint64_t to = rng.below(kAccounts);
      while (to % kWorkers == from % kWorkers) to = (to + 1) % kAccounts;
      c = BankService::make_transfer(from, to, 1);
    } else {
      c = BankService::make_deposit(zipf(rng), 1);
    }
    c.id = static_cast<std::uint64_t>(i) + 1;
    commands.push_back(c);
  }
  return commands;
}

struct RunResult {
  double insert_mops = 0.0;
  double total_kops = 0.0;
  double mean_population = 0.0;
};

RunResult run_one(bool early, const std::vector<Command>& commands) {
  BankService bank(kAccounts, 1'000'000);
  std::unique_ptr<Cos> cos = psmr::make_cos({.kind = CosKind::kLockFree,
                                             .capacity = kDagCapacity,
                                             .conflict = bank.conflict()});
  if (early) {
    cos = std::make_unique<psmr::EarlyCos>(std::move(cos), bank.class_map(),
                                           kWorkers, kRingCapacity);
  }

  std::vector<std::thread> pool;
  pool.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&bank, &cos] {
      while (CosHandle h = cos->get()) {
        bank.execute(*h.cmd);
        cos->remove(h);
      }
    });
  }

  double insert_seconds = 0.0;
  double population_sum = 0.0;
  std::size_t samples = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < commands.size(); i += kBatch) {
    const std::size_t n = std::min(kBatch, commands.size() - i);
    const auto t0 = std::chrono::steady_clock::now();
    cos->insert_batch(std::span(commands.data() + i, n));
    const auto t1 = std::chrono::steady_clock::now();
    insert_seconds += std::chrono::duration<double>(t1 - t0).count();
    population_sum += static_cast<double>(cos->approx_size());
    ++samples;
  }
  while (cos->approx_size() != 0) std::this_thread::yield();
  const auto wall1 = std::chrono::steady_clock::now();
  cos->close();
  for (std::thread& t : pool) t.join();

  const double total = static_cast<double>(commands.size());
  RunResult result;
  result.insert_mops =
      total / insert_seconds / 1e6;
  result.total_kops =
      total / std::chrono::duration<double>(wall1 - wall0).count() / 1e3;
  result.mean_population =
      samples == 0 ? 0.0 : population_sum / static_cast<double>(samples);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const psmr::bench::Options options = psmr::bench::parse_options(argc, argv);
  if (!options.run_real) {
    std::printf("ablation_early has no simulator mode; run with "
                "--mode=real\n");
    return 0;
  }

  const std::size_t count = options.quick ? 50'000 : 200'000;
  const std::vector<double> sweep = {0.0, 1.0, 5.0, 10.0, 25.0, 50.0};

  psmr::bench::print_header(
      "ablation_early",
      "early scheduling vs COS DAG over cross-class fraction", "real");
  std::printf("%9s %14s %14s %12s %12s %9s\n", "cross%", "early Mins/s",
              "dag Mins/s", "early kops", "dag kops", "speedup");

  for (const double cross : sweep) {
    const auto commands = make_workload(count, cross, /*seed=*/29);
    const RunResult early = run_one(/*early=*/true, commands);
    const RunResult dag = run_one(/*early=*/false, commands);
    const double speedup = early.insert_mops / dag.insert_mops;
    std::printf("%9.1f %14.2f %14.2f %12.1f %12.1f %8.2fx\n", cross,
                early.insert_mops, dag.insert_mops, early.total_kops,
                dag.total_kops, speedup);
    psmr::bench::csv_row("ablation_early", "real", "insert/early", cross,
                         early.insert_mops);
    psmr::bench::csv_row("ablation_early", "real", "insert/cos-dag", cross,
                         dag.insert_mops);
    psmr::bench::csv_row("ablation_early", "real", "total/early", cross,
                         early.total_kops);
    psmr::bench::csv_row("ablation_early", "real", "total/cos-dag", cross,
                         dag.total_kops);
    psmr::bench::csv_row("ablation_early", "real", "population/early", cross,
                         early.mean_population);
    psmr::bench::csv_row("ablation_early", "real", "population/cos-dag",
                         cross, dag.mean_population);
    psmr::bench::csv_row("ablation_early", "real", "speedup/early-vs-dag",
                         cross, speedup);
  }

  psmr::bench::csv_flush();
  if (!psmr::bench::json_flush(options)) return 1;
  const int regressions =
      psmr::bench::run_compare("ablation_early", options, /*band=*/0.35);
  return regressions == 0 ? 0 : 1;
}
