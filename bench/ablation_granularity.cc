// Ablation: the lock-granularity spectrum (paper §7.3.2's closing remark).
//
// "Locking the complete graph (i.e., the coarse-grain approach) and
//  individual graph nodes (i.e., the fine-grain approach) represent two
//  ends of a 'lock granularity spectrum'. Alternatively, one could
//  experiment with other granularities of locks (e.g., granular locks),
//  trading concurrency for overhead."
//
// This bench runs that experiment: the striped COS with segment widths
// swept from 1 (≈ fine-grained) to the full graph (≈ coarse-grained),
// bracketed by the three paper implementations.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/linked_list_service.h"
#include "bench_util.h"
#include "common/padded.h"
#include "common/stopwatch.h"
#include "cos/factory.h"
#include "workload/ds_driver.h"
#include "workload/generator.h"

namespace {

// Same harness as run_ds_benchmark, but with an explicit COS instance so
// segment width can be configured.
double run_striped(std::size_t width, int workers, double write_pct,
                   psmr::ExecCost cost, std::uint64_t measure_ms) {
  const std::size_t list_size = psmr::exec_cost_list_size(cost);
  psmr::LinkedListService service(list_size);
  // The segment-width knob is reachable through CosOptions now — exercise
  // the factory path rather than constructing StripedCos by hand.
  auto cos_ptr = psmr::make_cos({.kind = psmr::CosKind::kStriped,
                                 .capacity = psmr::kPaperGraphSize,
                                 .conflict = service.conflict(),
                                 .segment_width = width});
  psmr::Cos& cos = *cos_ptr;
  auto commands = psmr::make_list_workload(1 << 15, write_pct, list_size, 7);

  std::atomic<bool> stop{false};
  std::vector<psmr::Padded<std::atomic<std::uint64_t>>> completed(
      static_cast<std::size_t>(workers));
  std::thread scheduler([&] {
    std::uint64_t id = 1;
    std::size_t index = 0;
    while (!stop.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      psmr::Command c = commands[index];
      if (++index == commands.size()) index = 0;
      c.id = id++;
      if (!cos.insert(c)) return;
    }
  });
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto& counter = completed[static_cast<std::size_t>(w)].value;
      while (true) {
        psmr::CosHandle h = cos.get();
        if (!h) return;
        service.execute(*h.cmd);
        cos.remove(h);
        counter.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      }
    });
  }
  auto total = [&] {
    std::uint64_t t = 0;
    for (const auto& c : completed) t += c.value.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    return t;
  };
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const std::uint64_t before = total();
  psmr::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  const std::uint64_t elapsed = watch.elapsed_ns();
  const std::uint64_t after = total();
  stop.store(true);
  cos.close();
  scheduler.join();
  for (auto& t : threads) t.join();
  return static_cast<double>(after - before) /
         (static_cast<double>(elapsed) * 1e-9) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  const std::uint64_t ms = options.quick ? 100 : 250;
  const int workers = 4;
  const double write_pct = 10.0;
  const auto cost = psmr::ExecCost::kLight;

  std::printf("Ablation — lock granularity spectrum (light cost, %g%% "
              "writes, %d workers)\n",
              write_pct, workers);
  std::printf("%24s %16s\n", "configuration", "kops/sec");

  // Reference points: the three paper implementations.
  for (psmr::CosKind kind :
       {psmr::CosKind::kFineGrained, psmr::CosKind::kCoarseGrained,
        psmr::CosKind::kLockFree}) {
    psmr::DsDriverConfig config;
    config.cos.kind = kind;
    config.cost = cost;
    config.write_pct = write_pct;
    config.workers = workers;
    config.warmup_ms = 60;
    config.measure_ms = ms;
    const auto result = psmr::run_ds_benchmark(config);
    std::printf("%24s %16.1f\n", psmr::cos_kind_name(kind),
                result.throughput_kops);
    psmr::bench::csv_row("ablation_granularity", "real",
                         psmr::cos_kind_name(kind), 0,
                         result.throughput_kops);
  }

  const std::vector<std::size_t> widths =
      options.quick ? std::vector<std::size_t>{1, 16}
                    : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 75, 150};
  for (std::size_t width : widths) {
    const double kops = run_striped(width, workers, write_pct, cost, ms);
    const std::string label = "striped/width=" + std::to_string(width);
    std::printf("%24s %16.1f\n", label.c_str(), kops);
    psmr::bench::csv_row("ablation_granularity", "real", "striped",
                         static_cast<double>(width), kops);
  }
  psmr::bench::csv_flush();
  return 0;
}
