// Figure 2: standalone data-structure throughput for different execution
// costs and number of workers (0% writes).
//
// Paper series: coarse-grained, fine-grained, lock-free over workers
// {1,2,4,6,8,10,12,16,24,32,40,48,56,64} for light/moderate/heavy cost.
// Expected shape: lock-free scales with workers to a peak (insert-thread
// bound for light/moderate), coarse-grained beats fine-grained in most
// read-only settings, and the gap narrows as execution cost grows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/cos_models.h"
#include "workload/ds_driver.h"

namespace {

using psmr::CosKind;
using psmr::ExecCost;

const std::vector<int> kPaperWorkers = {1, 2,  4,  6,  8,  10, 12,
                                        16, 24, 32, 40, 48, 56, 64};
const std::vector<int> kRealWorkers = {1, 2, 4, 8, 16, 32, 64};

constexpr CosKind kKinds[] = {CosKind::kCoarseGrained, CosKind::kFineGrained,
                              CosKind::kLockFree};
constexpr ExecCost kCosts[] = {ExecCost::kLight, ExecCost::kModerate,
                               ExecCost::kHeavy};

void run_real(const psmr::bench::Options& options) {
  const auto workers =
      options.quick ? std::vector<int>{1, 4, 16} : kRealWorkers;
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig2", "DS throughput vs workers, 0% writes (kops/sec)",
        (std::string("real, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s %18s %18s %18s\n", "workers", "coarse-grained",
                "fine-grained", "lock-free");
    for (int w : workers) {
      std::printf("%8d", w);
      for (CosKind kind : kKinds) {
        psmr::DsDriverConfig config;
        config.cos.kind = kind;
        config.cost = cost;
        config.workers = w;
        config.write_pct = 0.0;
        config.warmup_ms = options.quick ? 50 : 100;
        config.measure_ms = options.quick ? 100 : 250;
        const auto result = psmr::run_ds_benchmark(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig2", "real", series.c_str(), w,
                             result.throughput_kops,
                             result.mean_population);
      }
      std::printf("\n");
    }
  }
}

void run_sim(const psmr::bench::Options& options) {
  const auto workers =
      options.quick ? std::vector<int>{1, 4, 16, 64} : kPaperWorkers;
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig2", "DS throughput vs workers, 0% writes (kops/sec)",
        (std::string("sim 64-core, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s %18s %18s %18s\n", "workers", "coarse-grained",
                "fine-grained", "lock-free");
    for (int w : workers) {
      std::printf("%8d", w);
      for (CosKind kind : kKinds) {
        psmr::sim::SimConfig config;
        config.kind = kind;
        config.cost = cost;
        config.workers = w;
        config.write_pct = 0.0;
        if (options.quick) config.measure_ns = 50'000'000;
        const auto result = psmr::sim::simulate_cos(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig2", "sim", series.c_str(), w,
                             result.throughput_kops,
                             result.mean_population);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  std::printf("Figure 2 — throughput for different execution costs and "
              "number of workers (0%% writes)\n");
  if (options.run_real) run_real(options);
  if (options.run_sim) run_sim(options);
  psmr::bench::csv_flush();
  return 0;
}
