// Figure 3: standalone data-structure throughput for different percentages
// of writes, at each technique's best-performing worker count.
//
// The paper first finds the best worker count per technique under 0% writes
// (its Fig. 2), then sweeps the write percentage. We do the same: in real
// mode the best count is found with a quick pre-sweep on this host; in sim
// mode we use the paper's own best counts (light: 10/1/2, moderate:
// 12/6/16, heavy: 48/32/64 for coarse/fine/lock-free).
// Expected shape: lock-free leads at low write %, fine-grained degrades
// least for light (its best config is 1 worker, already sequential), and
// everything converges as writes -> 100%.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/cos_models.h"
#include "workload/ds_driver.h"

namespace {

using psmr::CosKind;
using psmr::ExecCost;

const std::vector<double> kWritePcts = {0, 1, 5, 10, 15, 20, 25, 50, 100};

constexpr CosKind kKinds[] = {CosKind::kCoarseGrained, CosKind::kFineGrained,
                              CosKind::kLockFree};
constexpr ExecCost kCosts[] = {ExecCost::kLight, ExecCost::kModerate,
                               ExecCost::kHeavy};

// Paper's best worker counts (coarse, fine, lock-free) per cost.
int paper_best_workers(CosKind kind, ExecCost cost) {
  switch (cost) {
    case ExecCost::kLight:
      return kind == CosKind::kCoarseGrained  ? 10
             : kind == CosKind::kFineGrained ? 1
                                             : 2;
    case ExecCost::kModerate:
      return kind == CosKind::kCoarseGrained  ? 12
             : kind == CosKind::kFineGrained ? 6
                                             : 16;
    case ExecCost::kHeavy:
      return kind == CosKind::kCoarseGrained  ? 48
             : kind == CosKind::kFineGrained ? 32
                                             : 64;
  }
  return 1;
}

int find_best_workers_real(CosKind kind, ExecCost cost, bool quick) {
  int best = 1;
  double best_throughput = -1;
  for (int w : {1, 2, 4, 8, 16}) {
    psmr::DsDriverConfig config;
    config.cos.kind = kind;
    config.cost = cost;
    config.workers = w;
    config.write_pct = 0.0;
    config.warmup_ms = 30;
    config.measure_ms = quick ? 60 : 120;
    const auto result = psmr::run_ds_benchmark(config);
    if (result.throughput_kops > best_throughput) {
      best_throughput = result.throughput_kops;
      best = w;
    }
  }
  return best;
}

void run_real(const psmr::bench::Options& options) {
  const auto pcts =
      options.quick ? std::vector<double>{0, 10, 100} : kWritePcts;
  for (ExecCost cost : kCosts) {
    int best[3];
    for (int k = 0; k < 3; ++k) {
      best[k] = find_best_workers_real(kKinds[k], cost, options.quick);
    }
    psmr::bench::print_header(
        "fig3", "DS throughput vs write % (kops/sec)",
        (std::string("real, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s coarse-grained(w=%d) fine-grained(w=%d) lock-free(w=%d)\n",
                "writes%", best[0], best[1], best[2]);
    for (double pct : pcts) {
      std::printf("%8g", pct);
      for (int k = 0; k < 3; ++k) {
        psmr::DsDriverConfig config;
        config.cos.kind = kKinds[k];
        config.cost = cost;
        config.workers = best[k];
        config.write_pct = pct;
        config.warmup_ms = options.quick ? 30 : 80;
        config.measure_ms = options.quick ? 80 : 200;
        const auto result = psmr::run_ds_benchmark(config);
        std::printf(" %19.1f", result.throughput_kops);
        const std::string series =
            std::string(psmr::cos_kind_name(kKinds[k])) + "/" +
            psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig3", "real", series.c_str(), pct,
                             result.throughput_kops);
      }
      std::printf("\n");
    }
  }
}

void run_sim(const psmr::bench::Options& options) {
  const auto pcts =
      options.quick ? std::vector<double>{0, 10, 100} : kWritePcts;
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig3", "DS throughput vs write % (kops/sec)",
        (std::string("sim 64-core, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s coarse-grained(w=%d) fine-grained(w=%d) lock-free(w=%d)\n",
                "writes%",
                paper_best_workers(CosKind::kCoarseGrained, cost),
                paper_best_workers(CosKind::kFineGrained, cost),
                paper_best_workers(CosKind::kLockFree, cost));
    for (double pct : pcts) {
      std::printf("%8g", pct);
      for (CosKind kind : kKinds) {
        psmr::sim::SimConfig config;
        config.kind = kind;
        config.cost = cost;
        config.workers = paper_best_workers(kind, cost);
        config.write_pct = pct;
        if (options.quick) config.measure_ns = 50'000'000;
        const auto result = psmr::sim::simulate_cos(config);
        std::printf(" %19.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig3", "sim", series.c_str(), pct,
                             result.throughput_kops);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  std::printf("Figure 3 — throughput for different percentages of writes "
              "and execution costs\n");
  if (options.run_real) run_real(options);
  if (options.run_sim) run_sim(options);
  psmr::bench::csv_flush();
  return 0;
}
