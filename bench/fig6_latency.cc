// Figure 6: latency versus throughput for moderate execution cost, at 5%
// and 10% writes. Load is increased by adding closed-loop clients; each
// point reports (throughput, mean latency).
//
// Expected shape: all systems sit at similar, flat latency until they
// approach saturation, then latency rises abruptly; the lock-free scheduler
// saturates at the highest throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/cos_models.h"
#include "workload/smr_driver.h"

namespace {

using psmr::CosKind;
using psmr::ExecCost;

struct System {
  const char* name;
  bool sequential;
  CosKind kind;
  int workers_real;
  int workers_sim;
};

// Worker counts per system follow the paper's Fig. 6 configuration
// (sequential, fine-grained 6, coarse-grained 12, lock-free 32).
constexpr System kSystems[] = {
    {"sequential", true, CosKind::kLockFree, 0, 0},
    {"fine-grained", false, CosKind::kFineGrained, 4, 6},
    {"coarse-grained", false, CosKind::kCoarseGrained, 4, 12},
    {"lock-free", false, CosKind::kLockFree, 4, 32},
};

void run_real(const psmr::bench::Options& options, double write_pct) {
  const auto clients = options.quick ? std::vector<int>{2, 16}
                                     : std::vector<int>{1, 2, 4, 8, 16, 32};
  psmr::bench::print_header(
      "fig6", "latency vs throughput, moderate cost",
      (std::string("real, ") + std::to_string(static_cast<int>(write_pct)) +
       "% writes")
          .c_str());
  std::printf("%16s %8s %16s %14s %14s\n", "system", "clients",
              "kops/sec", "mean ms", "p95 ms");
  for (const System& system : kSystems) {
    for (int c : clients) {
      psmr::SmrDriverConfig config;
      config.policy = system.sequential ? psmr::SchedulerPolicy::kSequential
                                        : psmr::SchedulerPolicy::kCosDag;
      config.cos.kind = system.kind;
      config.workers = system.workers_real;
      config.cost = ExecCost::kModerate;
      config.write_pct = write_pct;
      config.clients = c;
      config.pipeline = 4;
      config.warmup_ms = options.quick ? 100 : 150;
      config.measure_ms = options.quick ? 150 : 400;
      const auto result = psmr::run_smr_benchmark(config);
      std::printf("%16s %8d %16.1f %14.2f %14.2f\n", system.name, c,
                  result.throughput_kops, result.mean_latency_ms,
                  result.p95_latency_ms);
      const std::string series = std::string(system.name) + "/wr" +
                                 std::to_string(static_cast<int>(write_pct));
      psmr::bench::csv_row("fig6", "real", series.c_str(),
                           result.throughput_kops, result.mean_latency_ms,
                           result.p95_latency_ms);
    }
  }
}

void run_sim(const psmr::bench::Options& options, double write_pct) {
  const auto clients =
      options.quick ? std::vector<int>{10, 100}
                    : std::vector<int>{5, 10, 25, 50, 100, 150, 200, 300};
  psmr::bench::print_header(
      "fig6", "latency vs throughput, moderate cost",
      (std::string("sim 64-core, ") +
       std::to_string(static_cast<int>(write_pct)) + "% writes")
          .c_str());
  std::printf("%16s %8s %16s %14s %14s\n", "system", "clients",
              "kops/sec", "mean ms", "p95 ms");
  for (const System& system : kSystems) {
    for (int c : clients) {
      psmr::sim::SimConfig config;
      config.smr_mode = true;
      config.sequential = system.sequential;
      config.kind = system.kind;
      config.workers = system.workers_sim;
      config.cost = ExecCost::kModerate;
      config.write_pct = write_pct;
      config.clients = c;
      if (options.quick) config.measure_ns = 50'000'000;
      const auto result = psmr::sim::simulate_cos(config);
      std::printf("%16s %8d %16.1f %14.2f %14.2f\n", system.name, c,
                  result.throughput_kops, result.mean_latency_ms,
                  result.p95_latency_ms);
      const std::string series = std::string(system.name) + "/wr" +
                                 std::to_string(static_cast<int>(write_pct));
      psmr::bench::csv_row("fig6", "sim", series.c_str(),
                           result.throughput_kops, result.mean_latency_ms,
                           result.p95_latency_ms);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  std::printf("Figure 6 — latency versus throughput for moderate cost\n");
  for (double write_pct : {5.0, 10.0}) {
    if (options.run_real) run_real(options, write_pct);
    if (options.run_sim) run_sim(options, write_pct);
  }
  psmr::bench::csv_flush();
  return 0;
}
