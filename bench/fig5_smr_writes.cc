// Figure 5: parallel-SMR throughput for different percentages of writes
// and execution costs, at each technique's best worker count, plus the
// sequential-SMR baseline.
//
// Expected shape: lock-free dominates the parallel techniques everywhere;
// sequential SMR overtakes the parallel ones beyond ~25% writes for
// light/moderate costs, while for heavy costs parallelism wins almost
// everywhere. (The paper's best counts in SMR: light 12/4/8, moderate
// 12/6/32, heavy 40/32/64 for coarse/fine/lock-free.)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/cos_models.h"
#include "workload/smr_driver.h"

namespace {

using psmr::CosKind;
using psmr::ExecCost;

const std::vector<double> kWritePcts = {0, 1, 5, 10, 15, 20, 25, 50, 100};

constexpr CosKind kKinds[] = {CosKind::kCoarseGrained, CosKind::kFineGrained,
                              CosKind::kLockFree};
constexpr ExecCost kCosts[] = {ExecCost::kLight, ExecCost::kModerate,
                               ExecCost::kHeavy};

int paper_best_workers(CosKind kind, ExecCost cost) {
  switch (cost) {
    case ExecCost::kLight:
      return kind == CosKind::kCoarseGrained  ? 12
             : kind == CosKind::kFineGrained ? 4
                                             : 8;
    case ExecCost::kModerate:
      return kind == CosKind::kCoarseGrained  ? 12
             : kind == CosKind::kFineGrained ? 6
                                             : 32;
    case ExecCost::kHeavy:
      return kind == CosKind::kCoarseGrained  ? 40
             : kind == CosKind::kFineGrained ? 32
                                             : 64;
  }
  return 1;
}

void run_real(const psmr::bench::Options& options) {
  const auto pcts =
      options.quick ? std::vector<double>{0, 10, 100} : kWritePcts;
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig5", "SMR throughput vs write % (kops/sec)",
        (std::string("real, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s %18s %18s %18s %18s\n", "writes%", "coarse-grained",
                "fine-grained", "lock-free", "sequential");
    for (double pct : pcts) {
      std::printf("%8g", pct);
      for (CosKind kind : kKinds) {
        psmr::SmrDriverConfig config;
        config.cos.kind = kind;
        config.cost = cost;
        config.workers = 4;  // representative on this host
        config.write_pct = pct;
        config.clients = 8;
        config.pipeline = 8;
        config.warmup_ms = options.quick ? 100 : 150;
        config.measure_ms = options.quick ? 150 : 400;
        const auto result = psmr::run_smr_benchmark(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig5", "real", series.c_str(), pct,
                             result.throughput_kops);
      }
      psmr::SmrDriverConfig sequential;
      sequential.policy = psmr::SchedulerPolicy::kSequential;
      sequential.cost = cost;
      sequential.write_pct = pct;
      sequential.clients = 8;
      sequential.pipeline = 8;
      sequential.warmup_ms = options.quick ? 100 : 150;
      sequential.measure_ms = options.quick ? 150 : 400;
      const auto seq_result = psmr::run_smr_benchmark(sequential);
      std::printf(" %18.1f\n", seq_result.throughput_kops);
      const std::string seq_series =
          std::string("sequential/") + psmr::exec_cost_name(cost);
      psmr::bench::csv_row("fig5", "real", seq_series.c_str(), pct,
                           seq_result.throughput_kops);
    }
  }
}

void run_sim(const psmr::bench::Options& options) {
  const auto pcts =
      options.quick ? std::vector<double>{0, 10, 100} : kWritePcts;
  for (ExecCost cost : kCosts) {
    psmr::bench::print_header(
        "fig5", "SMR throughput vs write % (kops/sec)",
        (std::string("sim 64-core, ") + psmr::exec_cost_name(cost)).c_str());
    std::printf("%8s %18s %18s %18s %18s\n", "writes%", "coarse-grained",
                "fine-grained", "lock-free", "sequential");
    for (double pct : pcts) {
      std::printf("%8g", pct);
      for (CosKind kind : kKinds) {
        psmr::sim::SimConfig config;
        config.smr_mode = true;
        config.kind = kind;
        config.cost = cost;
        config.workers = paper_best_workers(kind, cost);
        config.write_pct = pct;
        config.clients = 200;
        if (options.quick) config.measure_ns = 50'000'000;
        const auto result = psmr::sim::simulate_cos(config);
        std::printf(" %18.1f", result.throughput_kops);
        const std::string series = std::string(psmr::cos_kind_name(kind)) +
                                   "/" + psmr::exec_cost_name(cost);
        psmr::bench::csv_row("fig5", "sim", series.c_str(), pct,
                             result.throughput_kops);
      }
      psmr::sim::SimConfig sequential;
      sequential.smr_mode = true;
      sequential.sequential = true;
      sequential.cost = cost;
      sequential.write_pct = pct;
      sequential.clients = 200;
      if (options.quick) sequential.measure_ns = 50'000'000;
      const auto seq_result = psmr::sim::simulate_cos(sequential);
      std::printf(" %18.1f\n", seq_result.throughput_kops);
      const std::string seq_series =
          std::string("sequential/") + psmr::exec_cost_name(cost);
      psmr::bench::csv_row("fig5", "sim", seq_series.c_str(), pct,
                           seq_result.throughput_kops);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  std::printf("Figure 5 — SMR throughput for different percentages of "
              "writes and execution costs\n");
  if (options.run_real) run_real(options);
  if (options.run_sim) run_sim(options);
  psmr::bench::csv_flush();
  return 0;
}
