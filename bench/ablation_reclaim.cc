// Ablation: memory-reclamation strategy for the lock-free COS.
//
// The paper's algorithm delegates reclamation to the JVM garbage collector.
// This repo's port must reclaim explicitly; this bench quantifies that
// choice three ways:
//  (1) end-to-end lock-free COS throughput with EBR vs. leak-until-teardown
//      (the leak mode approximates "a GC that never runs": an upper bound
//      on how much reclamation could possibly cost on the hot path);
//  (2) the raw cost of a retire under EBR vs. hazard pointers;
//  (3) EBR bookkeeping left pending at the end of a run (bounded limbo).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "cos/lock_free.h"
#include "memory/ebr.h"
#include "memory/hazard.h"
#include "app/linked_list_service.h"

namespace {

using psmr::Command;
using psmr::CosHandle;
using psmr::LockFreeCos;
using psmr::LockFreeReclaim;

double run_lockfree(LockFreeReclaim mode, int workers, std::uint64_t ms,
                    std::uint64_t* reclaimed, std::size_t* pending) {
  LockFreeCos cos(150, psmr::rw_conflict, mode);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};

  std::thread scheduler([&] {
    std::uint64_t id = 1;
    while (!stop.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      Command c = (id % 10 == 0) ? psmr::LinkedListService::make_add(id)
                                 : psmr::LinkedListService::make_contains(id);
      c.id = id++;
      if (!cos.insert(c)) return;
    }
  });
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      while (true) {
        CosHandle h = cos.get();
        if (!h) return;
        completed.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
        cos.remove(h);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // warmup
  const std::uint64_t before = completed.load();
  psmr::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  const std::uint64_t elapsed = watch.elapsed_ns();
  const std::uint64_t after = completed.load();

  stop.store(true);
  cos.close();
  scheduler.join();
  for (auto& t : threads) t.join();

  *reclaimed = cos.nodes_reclaimed();
  *pending = cos.nodes_pending_reclaim();
  return static_cast<double>(after - before) /
         (static_cast<double>(elapsed) * 1e-9) / 1000.0;
}

void raw_retire_costs() {
  constexpr int kObjects = 200000;

  psmr::EbrDomain ebr;
  psmr::Stopwatch ebr_watch;
  for (int i = 0; i < kObjects; ++i) ebr.retire(new int(i));
  ebr.flush();
  ebr.flush();
  const double ebr_ns =
      static_cast<double>(ebr_watch.elapsed_ns()) / kObjects;

  psmr::HazardDomain<2> hp;
  psmr::Stopwatch hp_watch;
  for (int i = 0; i < kObjects; ++i) hp.retire(new int(i));
  hp.scan();
  const double hp_ns = static_cast<double>(hp_watch.elapsed_ns()) / kObjects;

  std::printf("\nraw retire+reclaim cost per object:\n");
  std::printf("  EBR:            %8.1f ns\n", ebr_ns);
  std::printf("  hazard ptrs:    %8.1f ns\n", hp_ns);
  psmr::bench::csv_row("ablation_reclaim", "real", "retire/ebr", 0, ebr_ns);
  psmr::bench::csv_row("ablation_reclaim", "real", "retire/hp", 0, hp_ns);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  const std::uint64_t ms = options.quick ? 150 : 400;
  std::printf("Ablation — reclamation strategy in the lock-free COS\n");
  std::printf("%10s %10s %16s %14s %14s\n", "mode", "workers", "kops/sec",
              "reclaimed", "pending");
  for (int workers : {1, 4, 8}) {
    for (auto mode : {LockFreeReclaim::kEpoch, LockFreeReclaim::kLeak}) {
      std::uint64_t reclaimed = 0;
      std::size_t pending = 0;
      const double kops = run_lockfree(mode, workers, ms, &reclaimed,
                                       &pending);
      const char* name = mode == LockFreeReclaim::kEpoch ? "ebr" : "leak";
      std::printf("%10s %10d %16.1f %14llu %14zu\n", name, workers, kops,
                  static_cast<unsigned long long>(reclaimed), pending);
      const std::string series = std::string("throughput/") + name;
      psmr::bench::csv_row("ablation_reclaim", "real", series.c_str(),
                           workers, kops);
    }
  }
  raw_retire_costs();
  psmr::bench::csv_flush();
  return 0;
}
