// Ablation: key-indexed dependency tracking vs the pairwise insert scan.
//
// Sweeps window size x key-space skew over all four COS implementations on
// a keyed KV workload (keyset_rw_conflict) and reports single-threaded
// insert throughput with the index enabled and disabled, plus the
// indexed/scan speedup ratio. The scan pays O(window) conflict checks per
// insert; the index pays O(k) hash probes plus one entry per actual
// dependency, so the gap widens with the window and narrows with skew
// (hot keys mean more real dependencies, which both paths must record).
//
// Series:
//   insert/<variant>/theta=<t>/{indexed,scan}  x=window  y=Minserts/s
//   speedup/<variant>/theta=<t>                x=window  y=indexed/scan
//
// The speedup series are ratios of two measurements from the same run and
// machine, so they are stable across hardware; CI gates on them against
// the committed BENCH_cos.json baseline (--compare, ±20% band).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "app/kv_service.h"
#include "bench_util.h"
#include "cos/factory.h"
#include "workload/generator.h"

namespace {

using psmr::Command;
using psmr::CosKind;

constexpr std::uint64_t kKeySpace = 16384;
constexpr double kWritePct = 20.0;

// Repeated fill-then-drain cycles; only the fill (insert) phases are timed.
// The single-threaded drain cannot block: a non-empty dependency DAG always
// has a source, and with one thread every ready permit is still pending.
double measure_insert_mops(CosKind kind, bool indexed, std::size_t window,
                           const std::vector<Command>& workload) {
  auto cos = psmr::make_cos({.kind = kind,
                             .capacity = window,
                             .conflict = psmr::keyset_rw_conflict,
                             .indexed = indexed});
  double insert_seconds = 0.0;
  std::size_t done = 0;
  while (done + window <= workload.size()) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < window; ++i) {
      cos->insert(workload[done + i]);
    }
    const auto t1 = std::chrono::steady_clock::now();
    insert_seconds += std::chrono::duration<double>(t1 - t0).count();
    for (std::size_t i = 0; i < window; ++i) {
      cos->remove(cos->get());
    }
    done += window;
  }
  cos->close();
  return static_cast<double>(done) / insert_seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const psmr::bench::Options options = psmr::bench::parse_options(argc, argv);
  if (!options.run_real) {
    std::printf("ablation_index has no simulator mode; run with "
                "--mode=real\n");
    return 0;
  }

  const std::vector<std::size_t> windows =
      options.quick ? std::vector<std::size_t>{512, 8192}
                    : std::vector<std::size_t>{512, 2048, 8192, 16384};
  const std::vector<double> thetas = {0.0, 0.99};
  const CosKind kinds[] = {CosKind::kCoarseGrained, CosKind::kStriped,
                           CosKind::kFineGrained, CosKind::kLockFree};

  psmr::bench::print_header(
      "ablation_index",
      "keyed insert throughput: pairwise scan vs key index", "real");
  std::printf("%-15s %8s %6s %12s %12s %9s\n", "variant", "window", "theta",
              "scan Mop/s", "index Mop/s", "speedup");

  psmr::KvService service(/*shard_count=*/kKeySpace);
  for (const double theta : thetas) {
    for (const std::size_t window : windows) {
      const std::size_t target = options.quick
                                     ? (window * 2 > 16384 ? window * 2 : 16384)
                                     : (window * 4 > 65536 ? window * 4 : 65536);
      // Round up to whole windows; ids are delivery order.
      const std::size_t cycles = (target + window - 1) / window;
      std::vector<Command> workload = psmr::make_kv_workload_zipf(
          service, cycles * window, kWritePct, kKeySpace, theta,
          /*seed=*/42 + static_cast<std::uint64_t>(theta * 100));
      for (std::size_t i = 0; i < workload.size(); ++i) workload[i].id = i;

      for (const CosKind kind : kinds) {
        const char* variant = psmr::cos_kind_name(kind);
        const double scan =
            measure_insert_mops(kind, /*indexed=*/false, window, workload);
        const double indexed =
            measure_insert_mops(kind, /*indexed=*/true, window, workload);
        const double speedup = indexed / scan;
        std::printf("%-15s %8zu %6.2f %12.3f %12.3f %8.2fx\n", variant,
                    window, theta, scan, indexed, speedup);

        char series[96];
        std::snprintf(series, sizeof(series), "insert/%s/theta=%.2f/scan",
                      variant, theta);
        psmr::bench::csv_row("ablation_index", "real", series,
                             static_cast<double>(window), scan);
        std::snprintf(series, sizeof(series), "insert/%s/theta=%.2f/indexed",
                      variant, theta);
        psmr::bench::csv_row("ablation_index", "real", series,
                             static_cast<double>(window), indexed);
        std::snprintf(series, sizeof(series), "speedup/%s/theta=%.2f",
                      variant, theta);
        psmr::bench::csv_row("ablation_index", "real", series,
                             static_cast<double>(window), speedup);
      }
    }
  }

  psmr::bench::csv_flush();
  if (!psmr::bench::json_flush(options)) return 1;
  const int regressions = psmr::bench::run_compare("ablation_index", options);
  return regressions == 0 ? 0 : 1;
}
