// Ablation: batched insertion into the lock-free COS.
//
// The paper identifies the (single) insert thread as the lock-free
// scheduler's throughput ceiling for light/moderate commands (§7.3.1:
// "the graph mean population is close to zero, indicating that the insert
// thread is at its performance limit"). Atomic broadcast delivers commands
// in batches anyway, so the natural extension is to insert a whole batch
// with one traversal of the graph (LockFreeCos::insert_batch), amortizing
// the walk and the helping work across the batch. This bench measures the
// insert-side ceiling for several batch sizes under a read-only workload
// with ample workers.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "app/linked_list_service.h"
#include "bench_util.h"
#include "common/padded.h"
#include "common/stopwatch.h"
#include "cos/factory.h"
#include "cos/lock_free.h"
#include "workload/generator.h"

namespace {

double run_batched(std::size_t batch_size, int workers, std::uint64_t ms) {
  psmr::LinkedListService service(1000);  // light cost
  psmr::LockFreeCos cos(psmr::kPaperGraphSize, service.conflict());
  auto commands = psmr::make_list_workload(1 << 15, 0.0, 1000, 3);

  std::atomic<bool> stop{false};
  std::vector<psmr::Padded<std::atomic<std::uint64_t>>> completed(
      static_cast<std::size_t>(workers));
  std::thread scheduler([&] {
    std::uint64_t id = 1;
    std::size_t index = 0;
    std::vector<psmr::Command> batch(batch_size);
    while (!stop.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      for (std::size_t i = 0; i < batch_size; ++i) {
        batch[i] = commands[index];
        if (++index == commands.size()) index = 0;
        batch[i].id = id++;
      }
      if (!cos.insert_batch(batch)) return;
    }
  });
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto& counter = completed[static_cast<std::size_t>(w)].value;
      while (true) {
        psmr::CosHandle h = cos.get();
        if (!h) return;
        service.execute(*h.cmd);
        cos.remove(h);
        counter.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      }
    });
  }
  auto total = [&] {
    std::uint64_t t = 0;
    for (const auto& c : completed)
      t += c.value.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    return t;
  };
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const std::uint64_t before = total();
  psmr::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  const std::uint64_t elapsed = watch.elapsed_ns();
  const std::uint64_t after = total();
  stop.store(true);
  cos.close();
  scheduler.join();
  for (auto& t : threads) t.join();
  return static_cast<double>(after - before) /
         (static_cast<double>(elapsed) * 1e-9) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = psmr::bench::parse_options(argc, argv);
  const std::uint64_t ms = options.quick ? 120 : 300;
  std::printf("Ablation — batched insertion, lock-free COS (light cost, "
              "0%% writes, 4 workers)\n");
  std::printf("%12s %16s\n", "batch size", "kops/sec");
  const std::vector<std::size_t> sizes =
      options.quick ? std::vector<std::size_t>{1, 16}
                    : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};
  for (std::size_t batch : sizes) {
    const double kops = run_batched(batch, 4, ms);
    std::printf("%12zu %16.1f\n", batch, kops);
    psmr::bench::csv_row("ablation_batch", "real", "lock-free",
                         static_cast<double>(batch), kops);
  }
  psmr::bench::csv_flush();
  return 0;
}
