// Tests of the discrete-event simulator: engine determinism, resource
// semantics, and sanity/shape properties of the calibrated COS models
// (conservation, scaling directions, saturation ceilings).
#include <gtest/gtest.h>

#include <vector>

#include "sim/cos_models.h"
#include "sim/des.h"

namespace psmr::sim {
namespace {

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(Des, EventsRunInTimeOrder) {
  Des des;
  std::vector<int> order;
  des.at(30, [&] { order.push_back(3); });
  des.at(10, [&] { order.push_back(1); });
  des.at(20, [&] { order.push_back(2); });
  des.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(des.now(), 100u);
}

TEST(Des, TiesBreakByInsertionOrder) {
  Des des;
  std::vector<int> order;
  des.at(5, [&] { order.push_back(1); });
  des.at(5, [&] { order.push_back(2); });
  des.at(5, [&] { order.push_back(3); });
  des.run_until(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Des, AfterIsRelativeToNow) {
  Des des;
  std::uint64_t fired_at = 0;
  des.at(100, [&] {
    des.after(50, [&] { fired_at = des.now(); });
  });
  des.run_until(1000);
  EXPECT_EQ(fired_at, 150u);
}

TEST(Des, RunUntilStopsAtBoundary) {
  Des des;
  int fired = 0;
  des.at(10, [&] { ++fired; });
  des.at(11, [&] { ++fired; });
  des.run_until(10);
  EXPECT_EQ(fired, 1);
  des.run_until(11);
  EXPECT_EQ(fired, 2);
}

TEST(SimSemaphore, FifoGrantOrder) {
  Des des;
  SimSemaphore sem(des, 0);
  std::vector<int> grants;
  sem.acquire([&] { grants.push_back(1); });
  sem.acquire([&] { grants.push_back(2); });
  sem.release(2);
  des.run_until(1);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST(SimSemaphore, PermitsCarryOver) {
  Des des;
  SimSemaphore sem(des, 2);
  int acquired = 0;
  sem.acquire([&] { ++acquired; });
  sem.acquire([&] { ++acquired; });
  sem.acquire([&] { ++acquired; });  // blocked
  des.run_until(1);
  EXPECT_EQ(acquired, 2);
  sem.release();
  des.run_until(2);
  EXPECT_EQ(acquired, 3);
}

TEST(SimMutex, SerializesCriticalSections) {
  Des des;
  SimMutex mutex(des);
  int inside = 0;
  int max_inside = 0;
  auto enter = [&] {
    mutex.acquire([&] {
      ++inside;
      max_inside = std::max(max_inside, inside);
      des.after(10, [&] {
        --inside;
        mutex.release();
      });
    });
  };
  enter();
  enter();
  enter();
  des.run_until(100);
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(inside, 0);
}

TEST(SimCores, LimitsParallelism) {
  Des des;
  SimCores cores(des, 2);
  // 4 bursts of 10ns on 2 cores: total makespan 20ns, not 10.
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cores.burst(10, [&] { ++done; });
  }
  des.run_until(10);
  EXPECT_EQ(done, 2);
  des.run_until(20);
  EXPECT_EQ(done, 4);
}

// ---------------------------------------------------------------------------
// COS models — sanity and shape
// ---------------------------------------------------------------------------

SimConfig base_config() {
  SimConfig config;
  config.warmup_ns = 5'000'000;
  config.measure_ns = 50'000'000;
  return config;
}

TEST(CosModel, AllKindsCompleteWork) {
  for (psmr::CosKind kind :
       {psmr::CosKind::kCoarseGrained, psmr::CosKind::kFineGrained,
        psmr::CosKind::kLockFree}) {
    SimConfig config = base_config();
    config.kind = kind;
    config.workers = 4;
    const SimResult result = simulate_cos(config);
    EXPECT_GT(result.completed, 0u);
    EXPECT_GT(result.throughput_kops, 0.0);
  }
}

TEST(CosModel, PopulationNeverExceedsGraphSize) {
  SimConfig config = base_config();
  config.graph_size = 50;
  config.workers = 2;
  const SimResult result = simulate_cos(config);
  EXPECT_LE(result.mean_population, 50.0);
}

TEST(CosModel, LockFreeScalesWithWorkersOnHeavyCost) {
  // With expensive commands, doubling workers should come close to
  // doubling throughput until the insert thread saturates.
  SimConfig config = base_config();
  config.kind = psmr::CosKind::kLockFree;
  config.cost = psmr::ExecCost::kHeavy;
  config.workers = 2;
  const double t2 = simulate_cos(config).throughput_kops;
  config.workers = 8;
  const double t8 = simulate_cos(config).throughput_kops;
  EXPECT_GT(t8, t2 * 2.5) << "lock-free model failed to scale";
}

TEST(CosModel, CoarseGrainedSaturatesEarly) {
  // The coarse-grained monitor serializes graph operations: many workers
  // must not yield large gains on light commands.
  SimConfig config = base_config();
  config.kind = psmr::CosKind::kCoarseGrained;
  config.cost = psmr::ExecCost::kLight;
  config.workers = 4;
  const double t4 = simulate_cos(config).throughput_kops;
  config.workers = 32;
  const double t32 = simulate_cos(config).throughput_kops;
  EXPECT_LT(t32, t4 * 2.0) << "coarse-grained model scaled implausibly";
}

TEST(CosModel, LockFreeBeatsBlockingAtScale) {
  SimConfig config = base_config();
  config.cost = psmr::ExecCost::kModerate;
  config.workers = 32;
  config.kind = psmr::CosKind::kLockFree;
  const double lock_free = simulate_cos(config).throughput_kops;
  config.kind = psmr::CosKind::kCoarseGrained;
  const double coarse = simulate_cos(config).throughput_kops;
  config.kind = psmr::CosKind::kFineGrained;
  const double fine = simulate_cos(config).throughput_kops;
  EXPECT_GT(lock_free, coarse);
  EXPECT_GT(lock_free, fine);
}

TEST(CosModel, StripedInterpolatesTheGranularitySpectrum) {
  // The striped model has coarse-like per-node costs but a smaller handoff
  // penalty; under contention it should at least beat the fine-grained
  // model and complete like the others.
  SimConfig config = base_config();
  config.cost = psmr::ExecCost::kModerate;
  config.workers = 32;
  config.kind = psmr::CosKind::kStriped;
  const double striped = simulate_cos(config).throughput_kops;
  config.kind = psmr::CosKind::kFineGrained;
  const double fine = simulate_cos(config).throughput_kops;
  EXPECT_GT(striped, 0.0);
  EXPECT_GT(striped, fine);
}

TEST(CosModel, FullWriteWorkloadSerializes) {
  // 100% writes: every command conflicts with every other, so workers
  // beyond the first must not help. Mean population should also stay at
  // the graph bound (commands pile up).
  SimConfig config = base_config();
  config.kind = psmr::CosKind::kLockFree;
  config.write_pct = 100.0;
  config.workers = 1;
  const double t1 = simulate_cos(config).throughput_kops;
  config.workers = 16;
  const double t16 = simulate_cos(config).throughput_kops;
  EXPECT_LT(t16, t1 * 1.3);
}

TEST(CosModel, DeterministicForSeedAndConfig) {
  SimConfig config = base_config();
  config.workers = 6;
  config.write_pct = 10.0;
  const SimResult a = simulate_cos(config);
  const SimResult b = simulate_cos(config);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput_kops, b.throughput_kops);
}

TEST(CosModel, SmrModeProducesLatencies) {
  SimConfig config = base_config();
  config.smr_mode = true;
  config.clients = 40;
  config.workers = 8;
  const SimResult result = simulate_cos(config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.mean_latency_ms, 0.0);
  EXPECT_GE(result.p95_latency_ms, result.mean_latency_ms * 0.5);
  // Closed loop: latency must at least cover the network round trip.
  EXPECT_GE(result.mean_latency_ms,
            2.0 * static_cast<double>(config.net_one_way_ns) * 1e-6);
}

TEST(CosModel, SmrSequentialBaselineRuns) {
  SimConfig config = base_config();
  config.smr_mode = true;
  config.sequential = true;
  config.clients = 40;
  const SimResult result = simulate_cos(config);
  EXPECT_GT(result.completed, 0u);
}

TEST(CosModel, SmrThroughputBoundedByClients) {
  // Closed-loop with C clients and pipeline 1: throughput can never exceed
  // C / round-trip-floor.
  SimConfig config = base_config();
  config.smr_mode = true;
  config.clients = 10;
  config.workers = 8;
  const SimResult result = simulate_cos(config);
  const double floor_s =
      2.0 * static_cast<double>(config.net_one_way_ns) * 1e-9;
  EXPECT_LT(result.throughput_kops * 1000.0,
            static_cast<double>(config.clients) / floor_s * 1.05);
}

TEST(CosModel, MoreClientsMoreThroughputUntilSaturation) {
  SimConfig config = base_config();
  config.smr_mode = true;
  config.workers = 16;
  config.clients = 5;
  const double t5 = simulate_cos(config).throughput_kops;
  config.clients = 50;
  const double t50 = simulate_cos(config).throughput_kops;
  EXPECT_GT(t50, t5 * 2.0);
}

}  // namespace
}  // namespace psmr::sim
