// Multi-process smoke test: forks 3 real `psmr_node` replica processes and
// one closed-loop client on loopback TCP, runs a KV workload, then asserts
// the client saw zero errors and every replica quiesced on the SAME state
// digest. This is the end-to-end proof that the TcpTransport + codec path
// carries the full SMR protocol between address spaces.
//
// The psmr_node binary path is injected at compile time via PSMR_NODE_BINARY
// (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

int pick_free_port() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

// fork+exec psmr_node with stdout redirected to `stdout_path`.
pid_t spawn_node(const std::vector<std::string>& args,
                 const std::string& stdout_path) {
  std::vector<const char*> argv;
  argv.push_back(PSMR_NODE_BINARY);
  for (const auto& arg : args) argv.push_back(arg.c_str());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid == 0) {
    const int fd =
        open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) _exit(120);
    dup2(fd, STDOUT_FILENO);
    dup2(fd, STDERR_FILENO);
    close(fd);
    execv(PSMR_NODE_BINARY, const_cast<char* const*>(argv.data()));
    _exit(121);  // exec failed
  }
  return pid;
}

// waitpid with a deadline; returns true and fills *status if the child
// exited in time, false (child still running) otherwise.
bool wait_exit(pid_t pid, int timeout_ms, int* status) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = waitpid(pid, status, WNOHANG);
    if (r == pid) return true;
    if (r < 0) return false;  // no such child
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Extracts `key=<token>` from a node's report line; empty if absent.
std::string extract_field(const std::string& text, const std::string& key) {
  const std::string needle = key + "=";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  auto end = start;
  while (end < text.size() && !isspace(static_cast<unsigned char>(text[end])))
    ++end;
  return text.substr(start, end - start);
}

TEST(MultiProcessSmoke, ThreeReplicasOneClientConvergeOnDigest) {
  constexpr int kReplicas = 3;
  const std::string dir = ::testing::TempDir();

  std::vector<int> ports;
  for (int i = 0; i < kReplicas; ++i) ports.push_back(pick_free_port());
  std::string peers;
  for (int i = 0; i < kReplicas; ++i) {
    if (i) peers += ",";
    peers += "127.0.0.1:" + std::to_string(ports[static_cast<size_t>(i)]);
  }

  std::vector<pid_t> replica_pids;
  std::vector<std::string> replica_logs;
  for (int i = 0; i < kReplicas; ++i) {
    const std::string log = dir + "/psmr_smoke_replica" + std::to_string(i) +
                            "_" + std::to_string(getpid()) + ".log";
    replica_logs.push_back(log);
    replica_pids.push_back(spawn_node(
        {"--role=replica", "--id=" + std::to_string(i), "--peers=" + peers,
         "--service=kv", "--workers=2"},
        log));
    ASSERT_GT(replica_pids.back(), 0);
  }

  const std::string client_log =
      dir + "/psmr_smoke_client_" + std::to_string(getpid()) + ".log";
  const pid_t client_pid = spawn_node(
      {"--role=client", "--id=" + std::to_string(kReplicas),
       "--peers=" + peers, "--service=kv", "--ops=400", "--pipeline=4",
       "--write-pct=50", "--run-ms=60000"},
      client_log);
  ASSERT_GT(client_pid, 0);

  // The client exits once all 400 ops complete (or its 60 s deadline hits).
  int client_status = -1;
  const bool client_done = wait_exit(client_pid, 90000, &client_status);
  if (!client_done) kill(client_pid, SIGKILL);

  // Stop the replicas; each quiesces, prints its report line, and exits 0.
  for (const pid_t pid : replica_pids) kill(pid, SIGTERM);
  std::vector<int> replica_status(kReplicas, -1);
  for (int i = 0; i < kReplicas; ++i) {
    if (!wait_exit(replica_pids[static_cast<size_t>(i)], 30000,
                   &replica_status[static_cast<size_t>(i)])) {
      kill(replica_pids[static_cast<size_t>(i)], SIGKILL);
      waitpid(replica_pids[static_cast<size_t>(i)], nullptr, 0);
    }
  }
  if (!client_done) waitpid(client_pid, nullptr, 0);

  ASSERT_TRUE(client_done) << "client did not finish; log:\n"
                           << slurp(client_log);
  ASSERT_TRUE(WIFEXITED(client_status));
  const std::string client_out = slurp(client_log);
  EXPECT_EQ(WEXITSTATUS(client_status), 0) << client_out;
  // Pipelined in-flight ops drain after the target is reached, so completed
  // may exceed --ops; it must never fall short.
  const std::string completed = extract_field(client_out, "completed");
  ASSERT_FALSE(completed.empty()) << client_out;
  EXPECT_GE(std::stoull(completed), 400u) << client_out;
  EXPECT_EQ(extract_field(client_out, "errors"), "0") << client_out;
  EXPECT_EQ(extract_field(client_out, "drained"), "1") << client_out;

  std::vector<std::string> digests;
  std::vector<std::string> executed;
  for (int i = 0; i < kReplicas; ++i) {
    const int status = replica_status[static_cast<size_t>(i)];
    const std::string out = slurp(replica_logs[static_cast<size_t>(i)]);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "replica " << i << " did not exit cleanly; log:\n"
        << out;
    const std::string digest = extract_field(out, "digest");
    ASSERT_FALSE(digest.empty()) << "replica " << i << " log:\n" << out;
    digests.push_back(digest);
    executed.push_back(extract_field(out, "executed"));
  }

  for (int i = 1; i < kReplicas; ++i) {
    EXPECT_EQ(digests[static_cast<size_t>(i)], digests[0])
        << "replica " << i << " diverged (executed " << executed[0] << " vs "
        << executed[static_cast<size_t>(i)] << ")";
    EXPECT_EQ(executed[static_cast<size_t>(i)], executed[0]);
  }
  // Every client op the cluster acknowledged was executed everywhere.
  ASSERT_FALSE(executed[0].empty());
  EXPECT_GE(std::stoull(executed[0]), std::stoull(completed));
}

}  // namespace
