// Tests of the key-indexed dependency tracker (cos/dep_tracker.h).
//
// Part 1 exercises the KeyIndex hash table directly: registration,
// writer/reader filtering, duplicate-key handling, callback pruning,
// tombstones and growth.
//
// Part 2 is the equivalence proof the tentpole rests on: for every COS
// implementation, an indexed instance driven through randomized keyed
// insert/get/remove traffic must expose — via debug_edges() — exactly the
// dependency set the pairwise definition prescribes: an edge (a, b) for
// every live pair with a inserted before b and keyset_rw_conflict(a, b).
// Each instance is checked against its own pairwise model (removal order is
// implementation-dependent, so the indexed and scan instances each get a
// model mirroring their own removals), and the scan instance is checked the
// same way so the test would also catch a regression in the fallback path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "cos/command.h"
#include "cos/conflict.h"
#include "cos/dep_tracker.h"
#include "cos/factory.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// Part 1: KeyIndex unit tests.
// ---------------------------------------------------------------------------

std::vector<void*> conflicting_nodes(KeyIndex& index,
                                     std::span<const std::uint64_t> keys,
                                     bool write) {
  std::vector<void*> nodes;
  index.for_each_conflicting(keys, write, [&](const KeyIndex::Entry& e) {
    nodes.push_back(e.node);
    return true;
  });
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

TEST(KeyIndex, WriterConflictsWithAllAccessorsOfItsKeys) {
  KeyIndex index;
  int a, b, c;
  const std::uint64_t k1[] = {10};
  const std::uint64_t k2[] = {20};
  index.add(k1, /*write=*/false, &a);
  index.add(k1, /*write=*/true, &b);
  index.add(k2, /*write=*/true, &c);

  EXPECT_EQ(conflicting_nodes(index, k1, true),
            (std::vector<void*>{std::min<void*>(&a, &b),
                                std::max<void*>(&a, &b)}));
  EXPECT_EQ(conflicting_nodes(index, k2, true), std::vector<void*>{&c});
  const std::uint64_t none[] = {30};
  EXPECT_TRUE(conflicting_nodes(index, none, true).empty());
}

TEST(KeyIndex, ReaderConflictsOnlyWithWriters) {
  KeyIndex index;
  int reader, writer;
  const std::uint64_t k[] = {7};
  index.add(k, /*write=*/false, &reader);
  index.add(k, /*write=*/true, &writer);

  EXPECT_EQ(conflicting_nodes(index, k, /*write=*/false),
            std::vector<void*>{&writer});
}

TEST(KeyIndex, DuplicateKeysRegisterOnce) {
  KeyIndex index;
  int node;
  const std::uint64_t dup[] = {5, 5};
  index.add(dup, /*write=*/true, &node);
  EXPECT_EQ(index.key_count(), 1u);
  EXPECT_EQ(index.entry_count(), 1u);

  // A probe over the duplicated key list still sees the entry once per
  // distinct key (the caller-side stamp handles multi-key dedup).
  EXPECT_EQ(conflicting_nodes(index, dup, true), std::vector<void*>{&node});

  index.remove(dup, &node);
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(KeyIndex, CallbackPrunesDeadEntries) {
  KeyIndex index;
  int dead, live;
  const std::uint64_t k[] = {42};
  index.add(k, true, &dead);
  index.add(k, true, &live);
  ASSERT_EQ(index.entry_count(), 2u);

  // First probe declares `dead` dead; it must be gone from later probes.
  index.for_each_conflicting(k, true, [&](const KeyIndex::Entry& e) {
    return e.node != &dead;
  });
  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_EQ(conflicting_nodes(index, k, true), std::vector<void*>{&live});

  // remove() of the already-pruned node is tolerated.
  index.remove(k, &dead);
  EXPECT_EQ(index.entry_count(), 1u);
}

TEST(KeyIndex, SlotEmptiedByPruningIsReusable) {
  KeyIndex index;
  int a, b;
  const std::uint64_t k[] = {42};
  index.add(k, true, &a);
  index.for_each_conflicting(k, true,
                             [](const KeyIndex::Entry&) { return false; });
  EXPECT_EQ(index.key_count(), 0u);

  index.add(k, true, &b);
  EXPECT_EQ(index.key_count(), 1u);
  EXPECT_EQ(conflicting_nodes(index, k, true), std::vector<void*>{&b});
}

TEST(KeyIndex, SurvivesGrowthAndChurn) {
  KeyIndex index(/*expected_keys=*/4);  // force many rehashes
  std::vector<int> nodes(4096);
  for (std::uint64_t i = 0; i < nodes.size(); ++i) {
    const std::uint64_t k[] = {i * 1315423911ull};
    index.add(k, (i % 3) == 0, &nodes[i]);
  }
  EXPECT_EQ(index.key_count(), nodes.size());
  EXPECT_EQ(index.entry_count(), nodes.size());

  // Remove the even half, then verify the odd half is intact.
  for (std::uint64_t i = 0; i < nodes.size(); i += 2) {
    const std::uint64_t k[] = {i * 1315423911ull};
    index.remove(k, &nodes[i]);
  }
  EXPECT_EQ(index.key_count(), nodes.size() / 2);
  for (std::uint64_t i = 1; i < nodes.size(); i += 2) {
    const std::uint64_t k[] = {i * 1315423911ull};
    ASSERT_EQ(conflicting_nodes(index, k, true), std::vector<void*>{&nodes[i]})
        << "key rank " << i;
  }

  index.clear();
  EXPECT_EQ(index.key_count(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(KeyIndex, ChurnOverStableLiveSetKeepsBoundedCapacity) {
  // Regression: the 70% occupancy rehash trigger counts tombstones, and
  // rehash() used to double unconditionally — so transient add/remove churn
  // over a *stable* live key-set (exactly a COS window under a large key
  // space) grew the table without bound. With the fix, a tombstone-dominated
  // trigger rebuilds at the same capacity.
  KeyIndex index(/*expected_keys=*/32);
  const std::size_t cap0 = index.slot_capacity();

  // Stable live set: 16 keys, ~25% of the initial table.
  std::vector<int> stable(16);
  for (std::uint64_t i = 0; i < stable.size(); ++i) {
    const std::uint64_t k[] = {i};
    index.add(k, /*write=*/true, &stable[i]);
  }

  // 100k distinct transient keys, each leaving a tombstone behind. Before
  // the fix this loop doubled the table past 32k slots.
  int transient = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const std::uint64_t k[] = {1000 + i};
    index.add(k, /*write=*/true, &transient);
    index.remove(k, &transient);
  }

  EXPECT_EQ(index.slot_capacity(), cap0);
  EXPECT_EQ(index.key_count(), stable.size());
  for (std::uint64_t i = 0; i < stable.size(); ++i) {
    const std::uint64_t k[] = {i};
    ASSERT_EQ(conflicting_nodes(index, k, true),
              std::vector<void*>{&stable[i]})
        << "stable key " << i << " lost in churn";
  }
}

TEST(KeyIndex, GenuinelyFullTableStillDoubles) {
  // The churn fix must not break real growth: a live key-set past the
  // occupancy threshold has to enlarge the table.
  KeyIndex index(/*expected_keys=*/32);
  const std::size_t cap0 = index.slot_capacity();
  std::vector<int> nodes(256);
  for (std::uint64_t i = 0; i < nodes.size(); ++i) {
    const std::uint64_t k[] = {i * 2654435761ull};
    index.add(k, /*write=*/true, &nodes[i]);
  }
  EXPECT_GT(index.slot_capacity(), cap0);
  EXPECT_EQ(index.key_count(), nodes.size());
  for (std::uint64_t i = 0; i < nodes.size(); ++i) {
    const std::uint64_t k[] = {i * 2654435761ull};
    ASSERT_EQ(conflicting_nodes(index, k, true), std::vector<void*>{&nodes[i]});
  }
}

// ---------------------------------------------------------------------------
// Part 2: indexed-vs-pairwise equivalence on full COS instances.
// ---------------------------------------------------------------------------

// Live commands in insertion order plus the pairwise-definition edge set.
class PairwiseModel {
 public:
  void insert(const Command& c) { live_.push_back(c); }

  void remove(std::uint64_t id) {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].id == id) {
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "removed command " << id << " not live in model";
  }

  std::size_t live_count() const { return live_.size(); }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected_edges() const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      for (std::size_t j = i + 1; j < live_.size(); ++j) {
        if (keyset_rw_conflict(live_[i], live_[j])) {
          edges.emplace_back(live_[i].id, live_[j].id);
        }
      }
    }
    std::sort(edges.begin(), edges.end());
    return edges;
  }

 private:
  std::vector<Command> live_;  // insertion order == ascending id
};

Command keyed_cmd(std::uint64_t id, std::uint64_t k0, std::uint64_t k1,
                  std::uint8_t nkeys, bool write) {
  Command c;
  c.id = id;
  c.mode = write ? AccessMode::kWrite : AccessMode::kRead;
  c.nkeys = nkeys;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  c.keys[0] = k0;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  c.keys[1] = k1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  return c;
}

// Drives one COS instance through randomized keyed traffic, mirroring every
// insert and every (implementation-chosen) removal into a pairwise model,
// and asserts debug_edges() matches the model at quiescent checkpoints.
void run_equivalence(CosKind kind, bool indexed, std::uint64_t key_space,
                     std::uint64_t seed) {
  constexpr std::size_t kWindow = 128;
  constexpr std::size_t kCommands = 10000;
  SCOPED_TRACE(std::string(cos_kind_name(kind)) +
               (indexed ? "/indexed" : "/scan") +
               " key_space=" + std::to_string(key_space));

  auto cos = make_cos({.kind = kind,
                       .capacity = kWindow,
                       .conflict = keyset_rw_conflict,
                       .indexed = indexed});
  PairwiseModel model;
  Xoshiro256 rng(seed);

  std::uint64_t next_id = 1;
  std::size_t round = 0;
  while (next_id <= kCommands) {
    ++round;
    // Insert a burst, staying within the window.
    std::size_t burst = 1 + rng.below(16);
    while (burst-- > 0 && next_id <= kCommands &&
           model.live_count() < kWindow) {
      Command c;
      const bool write = rng.uniform() < 0.3;
      if (rng.uniform() < 0.3) {  // two-key command (transfer-shaped)
        std::uint64_t a = rng.below(key_space);
        std::uint64_t b = rng.below(key_space);
        if (a == b) b = (b + 1) % key_space;
        c = keyed_cmd(next_id, std::min(a, b), std::max(a, b), 2, write);
      } else {
        c = keyed_cmd(next_id, rng.below(key_space), 0, 1, write);
      }
      ++next_id;
      ASSERT_TRUE(cos->insert(c));
      model.insert(c);
    }

    // Remove a burst; the instance picks which ready command each get()
    // returns, and the model mirrors that exact choice.
    std::size_t removals = rng.below(model.live_count() + 1);
    if (model.live_count() == kWindow && removals == 0) removals = 1;
    while (removals-- > 0) {
      CosHandle h = cos->get();
      ASSERT_TRUE(h);
      model.remove(h.cmd->id);
      cos->remove(h);
    }

    if (round % 8 == 0) {
      ASSERT_EQ(cos->debug_edges(), model.expected_edges())
          << "after " << (next_id - 1) << " inserts";
    }
  }

  // Drain to empty, checking along the way.
  while (model.live_count() > 0) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    model.remove(h.cmd->id);
    cos->remove(h);
    if (model.live_count() % 16 == 0) {
      ASSERT_EQ(cos->debug_edges(), model.expected_edges());
    }
  }
  EXPECT_TRUE(cos->debug_edges().empty());
  EXPECT_EQ(cos->approx_size(), 0u);
  cos->close();
}

class DepEquivalenceTest : public ::testing::TestWithParam<CosKind> {};

TEST_P(DepEquivalenceTest, IndexedMatchesPairwiseDefinitionSmallKeySpace) {
  // 64 keys over a 128-slot window: heavy key reuse, long per-key entry
  // lists, constant pruning.
  run_equivalence(GetParam(), /*indexed=*/true, /*key_space=*/64, /*seed=*/17);
}

TEST_P(DepEquivalenceTest, IndexedMatchesPairwiseDefinitionLargeKeySpace) {
  // 4096 keys: mostly-independent commands, tombstone churn in the table.
  run_equivalence(GetParam(), /*indexed=*/true, /*key_space=*/4096,
                  /*seed=*/23);
}

TEST_P(DepEquivalenceTest, ScanFallbackMatchesPairwiseDefinition) {
  // Same harness over the non-indexed path: proves the oracle is measuring
  // the scan's semantics too, so the two tests above compare like to like.
  run_equivalence(GetParam(), /*indexed=*/false, /*key_space=*/64,
                  /*seed=*/17);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, DepEquivalenceTest,
                         ::testing::Values(CosKind::kCoarseGrained,
                                           CosKind::kFineGrained,
                                           CosKind::kLockFree,
                                           CosKind::kStriped),
                         [](const auto& info) {
                           switch (info.param) {
                             case CosKind::kCoarseGrained:
                               return "CoarseGrained";
                             case CosKind::kFineGrained:
                               return "FineGrained";
                             case CosKind::kLockFree:
                               return "LockFree";
                             case CosKind::kStriped:
                               return "Striped";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace psmr
