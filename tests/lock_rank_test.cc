// Tests for the runtime lock-rank checker (common/ranked_mutex.h) and the
// memory-debug invariants (common/debug_poison.h, EbrDomain single-remover).
//
// The mutex tests instantiate CheckedRankedMutex directly rather than the
// RankedMutex alias, so the checking logic is exercised in every build type
// (the alias compiles down to the unchecked wrapper in Release).
#include "common/ranked_mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/debug_poison.h"
#include "memory/ebr.h"

// Death tests fork; under TSan the forked child of a multithreaded gtest
// process reports spurious races, so the death tests skip themselves there.
#if defined(__SANITIZE_THREAD__)
#define PSMR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSMR_TSAN_BUILD 1
#endif
#endif
#ifndef PSMR_TSAN_BUILD
#define PSMR_TSAN_BUILD 0
#endif

#if PSMR_TSAN_BUILD
#define PSMR_SKIP_IF_TSAN() GTEST_SKIP() << "death tests are skipped under TSan"
#else
#define PSMR_SKIP_IF_TSAN() \
  ::testing::FLAGS_gtest_death_test_style = "threadsafe"
#endif

namespace psmr {
namespace {

using OuterMutex = CheckedRankedMutex<lock_rank::kBroadcast>;
using InnerMutex = CheckedRankedMutex<lock_rank::kTransport>;
using NodeMutex = CheckedRankedMutex<lock_rank::kCosNode, /*AllowSameRank=*/true>;

TEST(LockRankDeathTest, LowerRankUnderHigherAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        InnerMutex inner;
        OuterMutex outer;
        MutexLock hold_inner(inner);  // kTransport held...
        MutexLock grab_outer(outer);  // ...kBroadcast < kTransport: abort
      },
      "lock-rank violation.*rank must exceed every held rank");
}

TEST(LockRankDeathTest, SameRankWithoutOptInAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        OuterMutex a;
        OuterMutex b;
        MutexLock hold_a(a);
        MutexLock hold_b(b);  // same rank, AllowSameRank=false: abort
      },
      "lock-rank violation.*same-rank nesting");
}

TEST(LockRankDeathTest, ReleasingUnheldRankAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(lock_rank::record_release(lock_rank::kQueue),
               "lock-rank violation.*does not hold");
}

TEST(LockRankTest, InOrderAcquisitionPasses) {
  OuterMutex outer;
  InnerMutex inner;
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);
}

TEST(LockRankTest, TryLockRecordsAndReleases) {
  OuterMutex outer;
  InnerMutex inner;
  ASSERT_TRUE(outer.try_lock());
  ASSERT_TRUE(inner.try_lock());
  inner.unlock();
  outer.unlock();
  // Ceiling is fully restored: re-acquiring the outer rank must pass.
  MutexLock again(outer);
}

TEST(LockRankTest, ReleaseRestoresCeiling) {
  CheckedRankedMutex<lock_rank::kSemaphore> high;
  OuterMutex low;
  { MutexLock hold_high(high); }
  // kBroadcast < kSemaphore, legal only because high was released.
  MutexLock hold_low(low);
}

TEST(LockRankTest, HandOverHandCouplingPasses) {
  // The fine-grained COS walk: hold node i and i+1 together, release i,
  // take i+2, ... — same-rank nesting with out-of-order release.
  NodeMutex nodes[4];
  nodes[0].lock();
  for (int i = 0; i + 1 < 4; ++i) {
    nodes[i + 1].lock();
    nodes[i].unlock();
  }
  nodes[3].unlock();
}

// Pass-through under contention: the checker must neither abort nor (in the
// TSan job, where this test still runs) introduce any reports of its own —
// the held-rank bookkeeping is thread-local by construction.
TEST(LockRankTest, MultithreadedPassThrough) {
  OuterMutex outer;
  InnerMutex inner;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock hold_outer(outer);
        MutexLock hold_inner(inner);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(DebugPoisonTest, WritesAlternatingDeadPattern) {
  unsigned char buf[5] = {0, 0, 0, 0, 0};
  poison_memory(buf, sizeof(buf));
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(buf[1], 0xAD);
  EXPECT_EQ(buf[2], 0xDE);
  EXPECT_EQ(buf[3], 0xAD);
  EXPECT_EQ(buf[4], 0xDE);
}

#if PSMR_MEMORY_DEBUG

TEST(EbrSingleRemoverTest, SameThreadRetiresPass) {
  EbrDomain dom;
  dom.debug_expect_single_remover();
  for (int i = 0; i < 10; ++i) dom.retire(new int(i));
  dom.flush();
}

TEST(EbrSingleRemoverDeathTest, SecondThreadRetireAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        EbrDomain dom;
        dom.debug_expect_single_remover();
        dom.retire(new int(1));
        std::thread second([&] { dom.retire(new int(2)); });
        second.join();
      },
      "single-remover invariant violated");
}

#endif  // PSMR_MEMORY_DEBUG

}  // namespace
}  // namespace psmr
