// Sequential-specification tests of the COS abstract data type, run against
// all four implementations (TEST_P over CosKind). Blocking behaviours are
// exercised with helper threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "app/bank_service.h"
#include "app/linked_list_service.h"
#include "cos/factory.h"

namespace psmr {
namespace {

Command read_cmd(std::uint64_t id) {
  Command c = LinkedListService::make_contains(id);
  c.id = id;
  return c;
}

Command write_cmd(std::uint64_t id) {
  Command c = LinkedListService::make_add(id);
  c.id = id;
  return c;
}

class CosSemanticsTest : public ::testing::TestWithParam<CosKind> {
 protected:
  std::unique_ptr<Cos> make(std::size_t max_size = 16,
                            ConflictFn conflict = rw_conflict) {
    return make_cos(
        {.kind = GetParam(), .capacity = max_size, .conflict = conflict});
  }
};

TEST_P(CosSemanticsTest, Name) {
  auto cos = make();
  EXPECT_STREQ(cos->name(), cos_kind_name(GetParam()));
}

TEST_P(CosSemanticsTest, InsertGetRemoveRoundTrip) {
  auto cos = make();
  ASSERT_TRUE(cos->insert(read_cmd(1)));
  CosHandle h = cos->get();
  ASSERT_TRUE(h);
  EXPECT_EQ(h.cmd->id, 1u);
  EXPECT_EQ(h.cmd->op, LinkedListService::kContains);
  cos->remove(h);
  EXPECT_EQ(cos->approx_size(), 0u);
}

TEST_P(CosSemanticsTest, IndependentReadsAllAvailableBeforeAnyRemove) {
  auto cos = make();
  for (std::uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(cos->insert(read_cmd(i)));
  std::vector<CosHandle> handles;
  for (int i = 0; i < 3; ++i) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    handles.push_back(h);
  }
  // Oldest-first handout.
  EXPECT_EQ(handles[0].cmd->id, 1u);
  EXPECT_EQ(handles[1].cmd->id, 2u);
  EXPECT_EQ(handles[2].cmd->id, 3u);
  for (CosHandle& h : handles) cos->remove(h);
}

TEST_P(CosSemanticsTest, GetNeverReturnsSameCommandTwice) {
  auto cos = make();
  for (std::uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(cos->insert(read_cmd(i)));
  std::vector<bool> seen(9, false);
  std::vector<CosHandle> handles;
  for (int i = 0; i < 8; ++i) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    EXPECT_FALSE(seen[h.cmd->id]);
    seen[h.cmd->id] = true;
    handles.push_back(h);
  }
  for (CosHandle& h : handles) cos->remove(h);
}

TEST_P(CosSemanticsTest, ReadAfterWriteWaitsForWriteRemoval) {
  auto cos = make();
  ASSERT_TRUE(cos->insert(write_cmd(1)));
  ASSERT_TRUE(cos->insert(read_cmd(2)));

  CosHandle w = cos->get();
  ASSERT_TRUE(w);
  EXPECT_EQ(w.cmd->id, 1u);

  std::atomic<bool> got_read{false};
  std::thread getter([&] {
    CosHandle r = cos->get();
    ASSERT_TRUE(r);
    EXPECT_EQ(r.cmd->id, 2u);
    got_read.store(true);
    cos->remove(r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got_read.load()) << "read handed out while conflicting write "
                                   "still in structure";
  cos->remove(w);
  getter.join();
  EXPECT_TRUE(got_read.load());
}

TEST_P(CosSemanticsTest, WriteWaitsForAllEarlierReads) {
  auto cos = make();
  ASSERT_TRUE(cos->insert(read_cmd(1)));
  ASSERT_TRUE(cos->insert(read_cmd(2)));
  ASSERT_TRUE(cos->insert(write_cmd(3)));

  CosHandle r1 = cos->get();
  CosHandle r2 = cos->get();
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);

  std::atomic<bool> got_write{false};
  std::thread getter([&] {
    CosHandle w = cos->get();
    ASSERT_TRUE(w);
    EXPECT_EQ(w.cmd->id, 3u);
    got_write.store(true);
    cos->remove(w);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got_write.load());
  cos->remove(r1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got_write.load()) << "write released after only one of two "
                                    "earlier reads was removed";
  cos->remove(r2);
  getter.join();
  EXPECT_TRUE(got_write.load());
}

TEST_P(CosSemanticsTest, WritesHandedOutInInsertionOrder) {
  auto cos = make();
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(cos->insert(write_cmd(i)));
  }
  for (std::uint64_t i = 1; i <= 4; ++i) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    EXPECT_EQ(h.cmd->id, i);
    cos->remove(h);
  }
}

TEST_P(CosSemanticsTest, InsertBlocksWhenFull) {
  auto cos = make(/*max_size=*/2);
  ASSERT_TRUE(cos->insert(read_cmd(1)));
  ASSERT_TRUE(cos->insert(read_cmd(2)));

  std::atomic<bool> third_inserted{false};
  std::thread inserter([&] {
    EXPECT_TRUE(cos->insert(read_cmd(3)));
    third_inserted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_inserted.load()) << "insert did not block on full graph";

  CosHandle h = cos->get();
  ASSERT_TRUE(h);
  cos->remove(h);
  inserter.join();
  EXPECT_TRUE(third_inserted.load());

  // Drain.
  for (int i = 0; i < 2; ++i) {
    CosHandle handle = cos->get();
    ASSERT_TRUE(handle);
    cos->remove(handle);
  }
}

TEST_P(CosSemanticsTest, CloseUnblocksGet) {
  auto cos = make();
  std::atomic<bool> returned_null{false};
  std::thread getter([&] {
    CosHandle h = cos->get();
    EXPECT_FALSE(h);
    returned_null.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(returned_null.load());
  cos->close();
  getter.join();
  EXPECT_TRUE(returned_null.load());
}

TEST_P(CosSemanticsTest, CloseUnblocksFullInsert) {
  auto cos = make(/*max_size=*/1);
  ASSERT_TRUE(cos->insert(read_cmd(1)));
  std::atomic<bool> insert_failed{false};
  std::thread inserter([&] {
    EXPECT_FALSE(cos->insert(read_cmd(2)));
    insert_failed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cos->close();
  inserter.join();
  EXPECT_TRUE(insert_failed.load());
}

TEST_P(CosSemanticsTest, InsertAfterCloseFails) {
  auto cos = make();
  cos->close();
  EXPECT_FALSE(cos->insert(read_cmd(1)));
}

TEST_P(CosSemanticsTest, CloseIsIdempotent) {
  auto cos = make();
  cos->close();
  cos->close();
  EXPECT_FALSE(cos->get());
}

TEST_P(CosSemanticsTest, ApproxSizeTracksContents) {
  auto cos = make();
  EXPECT_EQ(cos->approx_size(), 0u);
  ASSERT_TRUE(cos->insert(read_cmd(1)));
  ASSERT_TRUE(cos->insert(read_cmd(2)));
  EXPECT_EQ(cos->approx_size(), 2u);
  CosHandle h = cos->get();
  cos->remove(h);
  EXPECT_EQ(cos->approx_size(), 1u);
  h = cos->get();
  cos->remove(h);
  EXPECT_EQ(cos->approx_size(), 0u);
}

TEST_P(CosSemanticsTest, CapacityIsReported) {
  auto cos = make(37);
  EXPECT_EQ(cos->capacity(), 37u);
}

TEST_P(CosSemanticsTest, DestructorReclaimsNonEmptyStructure) {
  // Leak checkers (ASan builds) verify nodes are not leaked when the
  // structure is destroyed with commands still inside.
  auto cos = make();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cos->insert(i % 2 ? read_cmd(i) : write_cmd(i)));
  }
  cos.reset();
}

TEST_P(CosSemanticsTest, KeysetConflictsAllowDisjointWrites) {
  auto cos = make(16, keyset_rw_conflict);
  Command t1 = BankService::make_transfer(0, 1, 10);
  t1.id = 1;
  Command t2 = BankService::make_transfer(2, 3, 10);
  t2.id = 2;
  ASSERT_TRUE(cos->insert(t1));
  ASSERT_TRUE(cos->insert(t2));
  // Disjoint transfers are independent: both must be available at once.
  CosHandle a = cos->get();
  CosHandle b = cos->get();
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  cos->remove(a);
  cos->remove(b);
}

TEST_P(CosSemanticsTest, KeysetConflictsSerializeOverlappingWrites) {
  auto cos = make(16, keyset_rw_conflict);
  Command t1 = BankService::make_transfer(0, 1, 10);
  t1.id = 1;
  Command t2 = BankService::make_transfer(1, 2, 10);  // overlaps account 1
  t2.id = 2;
  ASSERT_TRUE(cos->insert(t1));
  ASSERT_TRUE(cos->insert(t2));
  CosHandle a = cos->get();
  ASSERT_TRUE(a);
  EXPECT_EQ(a.cmd->id, 1u);

  std::atomic<bool> got_second{false};
  std::thread getter([&] {
    CosHandle b = cos->get();
    ASSERT_TRUE(b);
    EXPECT_EQ(b.cmd->id, 2u);
    got_second.store(true);
    cos->remove(b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got_second.load());
  cos->remove(a);
  getter.join();
}

TEST_P(CosSemanticsTest, AlwaysConflictIsFullySequential) {
  auto cos = make(16, always_conflict);
  for (std::uint64_t i = 1; i <= 5; ++i) ASSERT_TRUE(cos->insert(read_cmd(i)));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    EXPECT_EQ(h.cmd->id, i);
    cos->remove(h);
  }
}

TEST_P(CosSemanticsTest, NeverConflictAllowsFullWindow) {
  auto cos = make(8, never_conflict);
  for (std::uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(cos->insert(write_cmd(i)));
  std::vector<CosHandle> handles;
  for (int i = 0; i < 8; ++i) {
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    handles.push_back(h);
  }
  for (CosHandle& h : handles) cos->remove(h);
}

TEST_P(CosSemanticsTest, BatchInsertMatchesSequentialSemantics) {
  auto cos = make(32);
  std::vector<Command> batch = {read_cmd(1), write_cmd(2), read_cmd(3),
                                read_cmd(4)};
  ASSERT_TRUE(cos->insert_batch(batch));
  EXPECT_EQ(cos->approx_size(), 4u);

  // Only read 1 is initially free (the intra-batch write gates 3 and 4 and
  // waits for 1 itself).
  CosHandle h = cos->get();
  ASSERT_TRUE(h);
  EXPECT_EQ(h.cmd->id, 1u);
  cos->remove(h);

  h = cos->get();
  ASSERT_TRUE(h);
  EXPECT_EQ(h.cmd->id, 2u);
  cos->remove(h);

  CosHandle r3 = cos->get();
  CosHandle r4 = cos->get();
  ASSERT_TRUE(r3);
  ASSERT_TRUE(r4);
  EXPECT_EQ(r3.cmd->id, 3u);
  EXPECT_EQ(r4.cmd->id, 4u);
  cos->remove(r3);
  cos->remove(r4);
  EXPECT_EQ(cos->approx_size(), 0u);
}

TEST_P(CosSemanticsTest, BatchLargerThanCapacityChunks) {
  auto cos = make(/*max_size=*/4);
  std::atomic<int> drained{0};
  std::thread worker([&] {
    while (true) {
      CosHandle h = cos->get();
      if (!h) return;
      drained.fetch_add(1);
      cos->remove(h);
    }
  });
  std::vector<Command> batch;
  for (std::uint64_t i = 1; i <= 12; ++i) batch.push_back(read_cmd(i));
  EXPECT_TRUE(cos->insert_batch(batch));  // must chunk, not deadlock
  while (drained.load() < 12) std::this_thread::yield();
  cos->close();
  worker.join();
  EXPECT_EQ(drained.load(), 12);
}

TEST_P(CosSemanticsTest, EmptyBatchIsNoop) {
  auto cos = make();
  EXPECT_TRUE(cos->insert_batch({}));
  EXPECT_EQ(cos->approx_size(), 0u);
}

TEST_P(CosSemanticsTest, ReuseAfterDrainManyRounds) {
  // The structure must be fully reusable across fill/drain cycles (slots,
  // semaphores and lists all return to their initial state).
  auto cos = make(4);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          cos->insert(i % 2 ? write_cmd(round * 10 + i) : read_cmd(round * 10 + i)));
    }
    for (int i = 0; i < 4; ++i) {
      CosHandle h = cos->get();
      ASSERT_TRUE(h);
      cos->remove(h);
    }
    ASSERT_EQ(cos->approx_size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, CosSemanticsTest,
                         ::testing::Values(CosKind::kCoarseGrained,
                                           CosKind::kFineGrained,
                                           CosKind::kLockFree,
                                           CosKind::kStriped),
                         [](const auto& info) {
                           switch (info.param) {
                             case CosKind::kCoarseGrained:
                               return "CoarseGrained";
                             case CosKind::kFineGrained:
                               return "FineGrained";
                             case CosKind::kLockFree:
                               return "LockFree";
                             case CosKind::kStriped:
                               return "Striped";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace psmr
