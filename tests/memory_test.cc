#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "memory/ebr.h"
#include "memory/hazard.h"

namespace psmr {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(counter) {
    alive.fetch_add(1);
  }
  ~Tracked() { alive.fetch_sub(1); }
  std::atomic<int>& alive;
  int payload = 0;
};

// ---------------------------------------------------------------------------
// EBR
// ---------------------------------------------------------------------------

TEST(Ebr, RetiredObjectsFreedAfterFlush) {
  std::atomic<int> alive{0};
  EbrDomain domain;
  for (int i = 0; i < 10; ++i) domain.retire(new Tracked(alive));
  EXPECT_EQ(alive.load(), 10);
  domain.flush();
  domain.flush();
  domain.flush();
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(domain.total_freed(), 10u);
}

TEST(Ebr, PinnedReaderBlocksReclamation) {
  std::atomic<int> alive{0};
  EbrDomain domain;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    auto guard = domain.pin();
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  domain.retire(new Tracked(alive));
  domain.flush();
  domain.flush();
  domain.flush();
  // The reader pinned an epoch <= the retire epoch, so the object must
  // still be alive.
  EXPECT_EQ(alive.load(), 1);

  release.store(true);
  reader.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, GuardReleaseUnblocksReclamation) {
  std::atomic<int> alive{0};
  EbrDomain domain;
  auto guard = domain.pin();
  domain.retire(new Tracked(alive));
  domain.flush();
  domain.flush();
  EXPECT_EQ(alive.load(), 1);  // own pin holds the epoch
  guard.release();
  domain.flush();
  domain.flush();
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, EpochAdvancesWhenNoPins) {
  EbrDomain domain;
  const std::uint64_t before = domain.current_epoch();
  domain.retire(new int(1));
  domain.flush();
  EXPECT_GT(domain.current_epoch(), before);
}

TEST(Ebr, DestructorDrainsEverything) {
  std::atomic<int> alive{0};
  {
    EbrDomain domain;
    for (int i = 0; i < 100; ++i) domain.retire(new Tracked(alive));
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, RetiredPendingReflectsLimbo) {
  EbrDomain domain;
  EXPECT_EQ(domain.retired_pending(), 0u);
  domain.retire(new int(5));
  EXPECT_EQ(domain.retired_pending(), 1u);
  domain.flush();
  domain.flush();
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(Ebr, ManyThreadsRetireAndReadConcurrently) {
  std::atomic<int> alive{0};
  {
    EbrDomain domain;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          {
            auto guard = domain.pin();
          }
          domain.retire(new Tracked(alive));
        }
        domain.flush();
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, MovedGuardKeepsPin) {
  EbrDomain domain;
  std::atomic<int> alive{0};
  {
    auto g1 = domain.pin();
    auto g2 = std::move(g1);
    domain.retire(new Tracked(alive));
    domain.flush();
    domain.flush();
    EXPECT_EQ(alive.load(), 1);  // g2 still pins
  }
  domain.flush();
  domain.flush();
  EXPECT_EQ(alive.load(), 0);
}

// ---------------------------------------------------------------------------
// Hazard pointers
// ---------------------------------------------------------------------------

TEST(Hazard, UnprotectedRetireIsFreedOnScan) {
  std::atomic<int> alive{0};
  HazardDomain<2> domain;
  domain.retire(new Tracked(alive));
  domain.scan();
  EXPECT_EQ(alive.load(), 0);
}

TEST(Hazard, ProtectedPointerSurvivesScan) {
  std::atomic<int> alive{0};
  HazardDomain<2> domain;
  auto* obj = new Tracked(alive);
  std::atomic<Tracked*> shared{obj};

  auto hazards = domain.hazards();
  Tracked* protected_ptr = hazards.protect(0, shared);
  EXPECT_EQ(protected_ptr, obj);

  shared.store(nullptr);
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(alive.load(), 1);  // hazard held

  hazards.clear();
  domain.scan();
  EXPECT_EQ(alive.load(), 0);
}

TEST(Hazard, ProtectFollowsConcurrentSwaps) {
  // protect() must return a value that was in the source at protection
  // time; under a racing writer it simply re-reads until stable.
  std::atomic<int> alive{0};
  HazardDomain<1> domain;
  auto* a = new Tracked(alive);
  auto* b = new Tracked(alive);
  std::atomic<Tracked*> shared{a};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load()) {
      shared.store(a);
      shared.store(b);
    }
  });
  auto hazards = domain.hazards();
  for (int i = 0; i < 10000; ++i) {
    Tracked* p = hazards.protect(0, shared);
    ASSERT_TRUE(p == a || p == b);
  }
  stop.store(true);
  flipper.join();
  hazards.clear();
  delete a;
  delete b;
}

TEST(Hazard, DrainFreesEverythingAtDestruction) {
  std::atomic<int> alive{0};
  {
    HazardDomain<2> domain;
    for (int i = 0; i < 50; ++i) domain.retire(new Tracked(alive));
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(Hazard, SequentialDomainsDoNotAliasRegistrations) {
  // Regression: consecutive domains often reuse the same stack address; the
  // thread-local registration cache must not hand the second domain the
  // first domain's (stale) record, or retires land in a slot the new domain
  // never drains.
  std::atomic<int> alive{0};
  for (int round = 0; round < 5; ++round) {
    HazardDomain<2> domain;
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked(alive));
    // Destructor drains; the count must return to zero every round.
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, SequentialDomainsDoNotAliasRegistrations) {
  std::atomic<int> alive{0};
  for (int round = 0; round < 5; ++round) {
    EbrDomain domain;
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked(alive));
  }
  EXPECT_EQ(alive.load(), 0);
}

// A Treiber stack exercising hazard pointers end-to-end: concurrent pushes
// and pops with reclamation, verifying no element is lost or duplicated.
class TreiberStack {
 public:
  struct Node {
    int value;
    Node* next;
  };

  explicit TreiberStack(HazardDomain<1>& domain) : domain_(domain) {}

  ~TreiberStack() {
    Node* node = head_.load();
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  void push(int value) {
    auto* node = new Node{value, head_.load(std::memory_order_relaxed)};  // NOLINT(psmr-relaxed-order-audit) CAS loop re-validates; the success CAS orders
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_seq_cst)) {
    }
  }

  bool pop(int* out) {
    auto hazards = domain_.hazards();
    while (true) {
      Node* top = hazards.protect(0, head_);
      if (top == nullptr) {
        hazards.clear();
        return false;
      }
      Node* next = top->next;
      if (head_.compare_exchange_strong(top, next,
                                        std::memory_order_seq_cst)) {
        *out = top->value;
        hazards.clear();
        domain_.retire(top);
        return true;
      }
    }
  }

 private:
  HazardDomain<1>& domain_;
  std::atomic<Node*> head_{nullptr};
};

TEST(Hazard, TreiberStackStress) {
  HazardDomain<1> domain;
  TreiberStack stack(domain);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stack.push(t * kPerThread + i);
        int v;
        if (stack.pop(&v)) {
          popped_sum.fetch_add(v);
          popped_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Drain what remains.
  int v;
  while (stack.pop(&v)) {
    popped_sum.fetch_add(v);
    popped_count.fetch_add(1);
  }
  const long long n = kThreads * kPerThread;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace psmr
