#include <gtest/gtest.h>

#include "app/kv_service.h"
#include "workload/ds_driver.h"
#include "workload/generator.h"

namespace psmr {
namespace {

TEST(Generator, ListWorkloadRespectsWritePercentage) {
  auto commands = make_list_workload(20000, 25.0, 1000, 7);
  ASSERT_EQ(commands.size(), 20000u);
  std::size_t writes = 0;
  for (const Command& c : commands) {
    if (is_write(c)) ++writes;
    EXPECT_LT(c.arg, 1000u);
  }
  EXPECT_NEAR(static_cast<double>(writes) / 20000.0, 0.25, 0.02);
}

TEST(Generator, ZeroWritesMeansAllReads) {
  auto commands = make_list_workload(5000, 0.0, 100, 1);
  for (const Command& c : commands) EXPECT_FALSE(is_write(c));
}

TEST(Generator, HundredWritesMeansAllWrites) {
  auto commands = make_list_workload(5000, 100.0, 100, 1);
  for (const Command& c : commands) EXPECT_TRUE(is_write(c));
}

TEST(Generator, DeterministicForSeed) {
  auto a = make_list_workload(1000, 10.0, 100, 5);
  auto b = make_list_workload(1000, 10.0, 100, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].arg, b[i].arg);
  }
}

TEST(Generator, KvWorkloadUsesShardKeys) {
  KvService service(16);
  auto commands = make_kv_workload(service, 1000, 50.0, 500, 3);
  for (const Command& c : commands) {
    EXPECT_EQ(c.nkeys, 1);
    EXPECT_LT(c.keys[0], 16u);   // shard id
    EXPECT_LT(c.keys[1], 500u);  // user key
  }
}

TEST(Generator, BankTransfersUseDistinctAccounts) {
  auto commands = make_bank_workload(2000, 100.0, 10, 11);
  for (const Command& c : commands) {
    ASSERT_EQ(c.nkeys, 2);
    EXPECT_NE(c.keys[0], c.keys[1]);
    EXPECT_LT(c.keys[0], 10u);
    EXPECT_LT(c.keys[1], 10u);
  }
}

// Smoke test of the standalone driver: it must complete commands and report
// a positive throughput for every implementation.
TEST(DsDriver, AllImplementationsMakeProgress) {
  for (CosKind kind : {CosKind::kCoarseGrained, CosKind::kFineGrained,
                       CosKind::kLockFree}) {
    DsDriverConfig config;
    config.cos.kind = kind;
    config.cost = ExecCost::kLight;
    config.workers = 2;
    config.warmup_ms = 20;
    config.measure_ms = 100;
    config.write_pct = 10.0;
    const DsDriverResult result = run_ds_benchmark(config);
    EXPECT_GT(result.completed_ops, 0u) << cos_kind_name(kind);
    EXPECT_GT(result.throughput_kops, 0.0) << cos_kind_name(kind);
  }
}

TEST(DsDriver, PopulationBoundedByGraphSize) {
  DsDriverConfig config;
  config.cos.kind = CosKind::kLockFree;
  config.cos.capacity = 32;
  config.workers = 1;
  config.warmup_ms = 10;
  config.measure_ms = 50;
  const DsDriverResult result = run_ds_benchmark(config);
  EXPECT_LE(result.mean_population, 32.0);
}

}  // namespace
}  // namespace psmr
