// Death tests for the runtime contract checks added alongside the
// lock-rank checker (lock_rank_test.cc):
//   - SpscRing's single-producer/single-consumer thread-identity asserts
//     (common/spsc_ring.h, PSMR_SPSC_CHECKS), and
//   - HazardDomain's single-remover discipline (memory/hazard.h), the
//     parity twin of EbrDomain::debug_expect_single_remover().
//
// Both facilities are header-only, so this TU forces the checks on before
// including them — the checking logic is exercised in every build type,
// exactly like lock_rank_test instantiating CheckedRankedMutex directly.
// No other TU in this binary includes these headers, so the forced macros
// cannot ODR-clash.
#define PSMR_MEMORY_DEBUG 1
#define PSMR_SPSC_CHECKS 1

#include "common/spsc_ring.h"
#include "memory/hazard.h"

#include <thread>

#include <gtest/gtest.h>

// Death tests fork; under TSan the forked child of a multithreaded gtest
// process reports spurious races, so the death tests skip themselves there.
#if defined(__SANITIZE_THREAD__)
#define PSMR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSMR_TSAN_BUILD 1
#endif
#endif
#ifndef PSMR_TSAN_BUILD
#define PSMR_TSAN_BUILD 0
#endif

#if PSMR_TSAN_BUILD
#define PSMR_SKIP_IF_TSAN() GTEST_SKIP() << "death tests are skipped under TSan"
#else
#define PSMR_SKIP_IF_TSAN() \
  ::testing::FLAGS_gtest_death_test_style = "threadsafe"
#endif

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// SpscRing thread-identity checks
// ---------------------------------------------------------------------------

TEST(SpscChecksDeathTest, SecondProducerThreadAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        SpscRing<int> ring(8);
        ring.try_push(1);  // main thread claims the producer role
        std::thread second([&] { ring.try_push(2); });
        second.join();
      },
      "SpscRing: single-producer.*contract violated");
}

TEST(SpscChecksDeathTest, SecondConsumerThreadAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        SpscRing<int> ring(8);
        ring.try_push(1);
        ring.try_pop();  // main thread claims the consumer role
        std::thread second([&] { ring.try_pop(); });
        second.join();
      },
      "SpscRing: single-consumer.*contract violated");
}

TEST(SpscChecks, SameThreadMayBeBothRoles) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 2);
}

TEST(SpscChecks, DistinctProducerAndConsumerThreadsPass) {
  SpscRing<int> ring(64);
  constexpr int kItems = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(SpscChecks, ResetRolesAllowsSynchronizedHandoff) {
  SpscRing<int> ring(8);
  std::thread first([&] { ring.try_push(1); });
  first.join();  // externally synchronized: old producer is gone
  ring.debug_reset_roles();
  EXPECT_TRUE(ring.try_push(2));  // this thread is the new producer
  EXPECT_EQ(ring.try_pop().value(), 1);
}

// ---------------------------------------------------------------------------
// HazardDomain single-remover discipline
// ---------------------------------------------------------------------------

TEST(HazardSingleRemoverDeathTest, RetireFromSecondThreadAborts) {
  PSMR_SKIP_IF_TSAN();
  ASSERT_DEATH(
      {
        HazardDomain<2> dom;
        dom.debug_expect_single_remover();
        dom.retire(new int(1));  // main thread claims the remover identity
        std::thread second([&] { dom.retire(new int(2)); });
        second.join();
      },
      "HazardDomain: single-remover invariant violated");
}

TEST(HazardSingleRemover, SingleThreadRetiresFreely) {
  HazardDomain<2> dom;
  dom.debug_expect_single_remover();
  for (int i = 0; i < 100; ++i) dom.retire(new int(i));
  dom.drain_all_unsafe();
  EXPECT_EQ(dom.retired_pending(), 0u);
}

TEST(HazardSingleRemover, WithoutOptInAnyThreadMayRetire) {
  HazardDomain<2> dom;
  dom.retire(new int(1));
  std::thread second([&] { dom.retire(new int(2)); });
  second.join();
  dom.drain_all_unsafe();
  EXPECT_EQ(dom.retired_pending(), 0u);
}

}  // namespace
}  // namespace psmr
