#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "net/sim_network.h"

namespace psmr {
namespace {

struct IntMsg final : Message {
  explicit IntMsg(int v) : Message(100), value(v) {}
  int value;
};

SimNetwork::Config fast_config() {
  SimNetwork::Config config;
  config.base_latency_us = 50;
  config.jitter_us = 20;
  return config;
}

TEST(SimNetwork, DeliversMessage) {
  SimNetwork net(fast_config());
  std::atomic<int> received{-1};
  std::atomic<NodeId> from_seen{-1};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b = net.add_endpoint([&](NodeId from, MessagePtr m) {
    from_seen = from;
    received = message_as<IntMsg>(m).value;
  });
  net.send(a, b, make_message<IntMsg>(42));
  for (int i = 0; i < 200 && received.load() < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(), 42);
  EXPECT_EQ(from_seen.load(), a);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(SimNetwork, SelfSendWorks) {
  SimNetwork net(fast_config());
  std::atomic<int> received{-1};
  NodeId a = net.add_endpoint(
      [&](NodeId, MessagePtr m) { received = message_as<IntMsg>(m).value; });
  net.send(a, a, make_message<IntMsg>(7));
  for (int i = 0; i < 200 && received.load() < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(), 7);
}

TEST(SimNetwork, PerLinkFifoOrderDespiteJitter) {
  SimNetwork::Config config;
  config.base_latency_us = 10;
  config.jitter_us = 500;  // heavy jitter tries to reorder
  SimNetwork net(config);
  std::vector<int> received;
  std::mutex mu;
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b = net.add_endpoint([&](NodeId, MessagePtr m) {
    std::lock_guard lock(mu);
    received.push_back(message_as<IntMsg>(m).value);
  });
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) net.send(a, b, make_message<IntMsg>(i));
  for (int i = 0; i < 400; ++i) {
    {
      std::lock_guard lock(mu);
      if (static_cast<int>(received.size()) == kMessages) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard lock(mu);
  ASSERT_EQ(static_cast<int>(received.size()), kMessages);
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(SimNetwork, CrashedEndpointReceivesNothing) {
  SimNetwork net(fast_config());
  std::atomic<int> count{0};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  net.crash(b);
  EXPECT_TRUE(net.crashed(b));
  for (int i = 0; i < 10; ++i) net.send(a, b, make_message<IntMsg>(i));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(count.load(), 0);
  EXPECT_GE(net.messages_dropped(), 10u);
}

TEST(SimNetwork, CrashedEndpointSendsNothing) {
  SimNetwork net(fast_config());
  std::atomic<int> count{0};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  net.crash(a);
  net.send(a, b, make_message<IntMsg>(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(count.load(), 0);
}

TEST(SimNetwork, CutLinkDropsTrafficBothWays) {
  SimNetwork net(fast_config());
  std::atomic<int> at_a{0}, at_b{0};
  const NodeId a =
      net.add_endpoint([&](NodeId, MessagePtr) { at_a.fetch_add(1); });
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { at_b.fetch_add(1); });
  net.set_link(a, b, false);
  net.send(a, b, make_message<IntMsg>(1));
  net.send(b, a, make_message<IntMsg>(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(at_a.load(), 0);
  EXPECT_EQ(at_b.load(), 0);

  // Healing the link restores delivery.
  net.set_link(a, b, true);
  net.send(a, b, make_message<IntMsg>(3));
  for (int i = 0; i < 100 && at_b.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(at_b.load(), 1);
}

TEST(SimNetwork, DropRateLosesRoughlyThatFraction) {
  SimNetwork::Config config;
  config.base_latency_us = 1;
  config.jitter_us = 0;
  config.drop_rate = 0.5;
  SimNetwork net(config);
  std::atomic<int> count{0};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  constexpr int kMessages = 2000;
  for (int i = 0; i < kMessages; ++i) net.send(a, b, make_message<IntMsg>(i));
  for (int i = 0; i < 200; ++i) {
    if (net.messages_delivered() + net.messages_dropped() >=
        static_cast<std::uint64_t>(kMessages)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_NEAR(count.load(), kMessages / 2, kMessages / 8);
}

TEST(SimNetwork, LatencyIsApplied) {
  SimNetwork::Config config;
  config.base_latency_us = 20'000;  // 20 ms
  config.jitter_us = 0;
  SimNetwork net(config);
  std::atomic<bool> received{false};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { received = true; });
  net.send(a, b, make_message<IntMsg>(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(received.load());  // too early
  for (int i = 0; i < 100 && !received.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(received.load());
}

TEST(SimNetwork, CrashPurgesLinkStateAndInFlightMessages) {
  // Regression test for unbounded last_delivery_ growth: long fault tests
  // crash many endpoints, and the per-link FIFO map used to keep entries
  // for dead links forever. crash() now purges them, and also drops the
  // crashed destination's queued in-flight messages eagerly instead of at
  // their (possibly far-future) delivery time.
  SimNetwork::Config config;
  config.base_latency_us = 500'000;  // 500 ms: messages stay queued
  config.jitter_us = 0;
  SimNetwork net(config);
  std::atomic<int> count{0};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  const NodeId c =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });

  for (int i = 0; i < 10; ++i) net.send(a, b, make_message<IntMsg>(i));
  net.send(a, c, make_message<IntMsg>(99));  // survivor traffic
  EXPECT_EQ(net.in_flight(), 11u);
  EXPECT_EQ(net.link_state_entries(), 2u);  // (a,b) and (a,c)

  net.crash(b);
  // Immediately — not 500 ms later — b's queued messages are dropped and
  // its link state is gone; the a->c message is untouched.
  EXPECT_EQ(net.in_flight(), 1u);
  EXPECT_EQ(net.link_state_entries(), 1u);
  EXPECT_GE(net.messages_dropped(), 10u);

  for (int i = 0; i < 200 && count.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 1);  // only the survivor delivery happened
}

TEST(SimNetwork, RepeatedCrashesDoNotAccumulateLinkState) {
  SimNetwork net(fast_config());
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  std::vector<NodeId> victims;
  for (int i = 0; i < 8; ++i) {
    victims.push_back(net.add_endpoint([](NodeId, MessagePtr) {}));
  }
  for (NodeId v : victims) {
    net.send(a, v, make_message<IntMsg>(1));
    net.crash(v);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(net.link_state_entries(), 0u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(SimNetwork, ShutdownIsIdempotentAndStopsDelivery) {
  SimNetwork net(fast_config());
  std::atomic<int> count{0};
  const NodeId a = net.add_endpoint([](NodeId, MessagePtr) {});
  const NodeId b =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  net.shutdown();
  net.shutdown();
  net.send(a, b, make_message<IntMsg>(1));  // silently ignored
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(count.load(), 0);
}

TEST(SimNetwork, ManySendersStress) {
  SimNetwork::Config config;
  config.base_latency_us = 5;
  config.jitter_us = 5;
  SimNetwork net(config);
  std::atomic<int> count{0};
  const NodeId sink =
      net.add_endpoint([&](NodeId, MessagePtr) { count.fetch_add(1); });
  std::vector<NodeId> senders;
  for (int i = 0; i < 4; ++i) {
    senders.push_back(net.add_endpoint([](NodeId, MessagePtr) {}));
  }
  constexpr int kPerSender = 2500;
  std::vector<std::thread> threads;
  for (NodeId s : senders) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        net.send(s, sink, make_message<IntMsg>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const int expected = static_cast<int>(senders.size()) * kPerSender;
  for (int i = 0; i < 1000 && count.load() < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), expected);
}

}  // namespace
}  // namespace psmr
