// Tests of the early-scheduling execution mode (cos/early_sched.h) and the
// redesigned CosOptions/SchedulerPolicy surface (cos/factory.h).
//
// Part 1 covers the static class maps (cos/class_map.h): routing rules and
// the soundness contract they promise the scheduler.
//
// Part 2 covers the factory surface: name round-trips for every CosKind and
// SchedulerPolicy value (including aliases), the deprecated positional
// make_cos overload, and reachability of the new CosOptions knobs
// (LockFreeReclaim, segment_width) through the factory.
//
// Part 3 is the equivalence proof the tentpole rests on: for randomized
// Zipf KV, bank (with cross-class transfers) and linked-list workloads, the
// early-scheduling mode must drive a service to exactly the same
// state_digest() as the COS-DAG mode — and must do so for different worker
// counts, since the class map routes by worker count but conflict order may
// not depend on it.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "common/metrics.h"
#include "cos/class_map.h"
#include "cos/early_sched.h"
#include "cos/factory.h"
#include "cos/lock_free.h"
#include "cos/striped.h"
#include "workload/ds_driver.h"
#include "workload/generator.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// Part 1: class maps.
// ---------------------------------------------------------------------------

Command keyed(std::uint64_t k0, std::uint64_t k1, std::uint8_t nkeys,
              bool write) {
  Command c;
  c.mode = write ? AccessMode::kWrite : AccessMode::kRead;
  c.nkeys = nkeys;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  c.keys[0] = k0;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  c.keys[1] = k1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  return c;
}

TEST(KeyedClassMap, SingleKeyRoutesToKeyModWorkers) {
  for (std::uint32_t workers : {1u, 2u, 4u, 7u}) {
    for (std::uint64_t key = 0; key < 32; ++key) {
      const ClassRoute r = keyed_class_map(keyed(key, 0, 1, true), workers);
      EXPECT_EQ(r.kind, ClassRoute::kWorker);
      EXPECT_EQ(r.worker, key % workers);
    }
  }
}

TEST(KeyedClassMap, SameClassPairRoutesToWorker) {
  // Keys 3 and 7 are both class 3 mod 4.
  const ClassRoute r = keyed_class_map(keyed(3, 7, 2, true), 4);
  EXPECT_EQ(r.kind, ClassRoute::kWorker);
  EXPECT_EQ(r.worker, 3u);
}

TEST(KeyedClassMap, CrossClassPairIsSync) {
  const ClassRoute r = keyed_class_map(keyed(3, 6, 2, true), 4);
  EXPECT_EQ(r.kind, ClassRoute::kSync);
}

TEST(KeyedClassMap, NoKeysIsSync) {
  EXPECT_EQ(keyed_class_map(keyed(0, 0, 0, true), 4).kind, ClassRoute::kSync);
}

TEST(KeyedClassMap, SoundForKeysetConflict) {
  // Exhaustive over small two-key commands: if two commands conflict, they
  // must share a worker or at least one must be sync.
  std::vector<Command> commands;
  std::uint64_t id = 1;
  for (std::uint64_t a = 0; a < 6; ++a) {
    for (std::uint64_t b = a; b < 6; ++b) {
      for (const bool write : {false, true}) {
        Command c = keyed(a, b, a == b ? 1 : 2, write);
        c.id = id++;
        commands.push_back(c);
      }
    }
  }
  for (const std::uint32_t workers : {1u, 2u, 3u, 4u}) {
    for (const Command& a : commands) {
      for (const Command& b : commands) {
        if (!keyset_rw_conflict(a, b)) continue;
        const ClassRoute ra = keyed_class_map(a, workers);
        const ClassRoute rb = keyed_class_map(b, workers);
        const bool ordered = ra.kind == ClassRoute::kSync ||
                             rb.kind == ClassRoute::kSync ||
                             ra.worker == rb.worker;
        ASSERT_TRUE(ordered) << "unsound at workers=" << workers;
      }
    }
  }
}

TEST(RwClassMap, WritesSyncReadsSpread) {
  Command write = LinkedListService::make_add(1);
  write.id = 5;
  EXPECT_EQ(rw_class_map(write, 4).kind, ClassRoute::kSync);

  Command read = LinkedListService::make_contains(1);
  for (std::uint64_t id = 0; id < 16; ++id) {
    read.id = id;
    const ClassRoute r = rw_class_map(read, 4);
    EXPECT_EQ(r.kind, ClassRoute::kWorker);
    EXPECT_EQ(r.worker, id % 4);
  }
}

// ---------------------------------------------------------------------------
// Part 2: factory surface.
// ---------------------------------------------------------------------------

TEST(Factory, CosKindNamesRoundTrip) {
  for (const CosKind kind :
       {CosKind::kCoarseGrained, CosKind::kFineGrained, CosKind::kLockFree,
        CosKind::kStriped}) {
    CosKind parsed{};
    ASSERT_TRUE(parse_cos_kind(cos_kind_name(kind), &parsed))
        << cos_kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(Factory, CosKindAliasesParse) {
  const struct {
    const char* name;
    CosKind kind;
  } cases[] = {
      {"coarse", CosKind::kCoarseGrained},
      {"fine", CosKind::kFineGrained},
      {"lockfree", CosKind::kLockFree},
      {"striped", CosKind::kStriped},
  };
  for (const auto& c : cases) {
    CosKind parsed{};
    ASSERT_TRUE(parse_cos_kind(c.name, &parsed)) << c.name;
    EXPECT_EQ(parsed, c.kind);
  }
  CosKind ignored{};
  EXPECT_FALSE(parse_cos_kind("hand-over-hand", &ignored));
  EXPECT_FALSE(parse_cos_kind("", &ignored));
}

TEST(Factory, SchedulerPolicyNamesRoundTrip) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::kCosDag, SchedulerPolicy::kEarlyScheduling,
        SchedulerPolicy::kSequential}) {
    SchedulerPolicy parsed{};
    ASSERT_TRUE(parse_scheduler_policy(scheduler_policy_name(policy), &parsed))
        << scheduler_policy_name(policy);
    EXPECT_EQ(parsed, policy);
  }
  SchedulerPolicy parsed{};
  EXPECT_TRUE(parse_scheduler_policy("dag", &parsed));
  EXPECT_EQ(parsed, SchedulerPolicy::kCosDag);
  EXPECT_TRUE(parse_scheduler_policy("early-scheduling", &parsed));
  EXPECT_EQ(parsed, SchedulerPolicy::kEarlyScheduling);
  EXPECT_TRUE(parse_scheduler_policy("seq", &parsed));
  EXPECT_EQ(parsed, SchedulerPolicy::kSequential);
  EXPECT_FALSE(parse_scheduler_policy("eager", &parsed));
}

TEST(Factory, DeprecatedPositionalOverloadStillWorks) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto cos = make_cos(CosKind::kLockFree, 64, rw_conflict);
#pragma GCC diagnostic pop
  ASSERT_NE(cos, nullptr);
  Command c = LinkedListService::make_contains(1);
  c.id = 1;
  ASSERT_TRUE(cos->insert(c));
  CosHandle h = cos->get();
  ASSERT_TRUE(h);
  EXPECT_EQ(h.cmd->id, 1u);
  cos->remove(h);
  cos->close();
}

TEST(Factory, ReclaimKnobReachesLockFreeCos) {
  auto cos = make_cos({.kind = CosKind::kLockFree,
                       .capacity = 32,
                       .conflict = rw_conflict,
                       .reclaim = LockFreeReclaim::kLeak});
  auto* lf = dynamic_cast<LockFreeCos*>(cos.get());
  ASSERT_NE(lf, nullptr);
  // Churn enough commands that epoch reclamation would have freed some.
  for (std::uint64_t id = 1; id <= 256; ++id) {
    Command c = LinkedListService::make_add(id);
    c.id = id;
    ASSERT_TRUE(cos->insert(c));
    CosHandle h = cos->get();
    ASSERT_TRUE(h);
    cos->remove(h);
  }
  // Leak mode parks retired nodes until destruction and frees nothing
  // (the last removal's physical unlink may still be deferred, so compare
  // against one less than the churn count).
  EXPECT_EQ(lf->nodes_reclaimed(), 0u);
  EXPECT_GE(lf->nodes_pending_reclaim(), 255u);
  cos->close();
}

TEST(Factory, SegmentWidthKnobReachesStripedCos) {
  auto cos = make_cos({.kind = CosKind::kStriped,
                       .capacity = 64,
                       .conflict = rw_conflict,
                       .segment_width = 4});
  auto* striped = dynamic_cast<StripedCos*>(cos.get());
  ASSERT_NE(striped, nullptr);
  EXPECT_EQ(striped->segment_width(), 4u);
  cos->close();
}

// ---------------------------------------------------------------------------
// Part 3: early-scheduling vs COS-DAG digest equivalence.
// ---------------------------------------------------------------------------

// Executes `commands` (ids already stamped, ascending) through `cos` with
// `workers` dedicated consumer threads, waits for full drain, and returns
// the service's digest. Inserts in batches like the replica scheduler does.
std::uint64_t run_and_digest(Service& service, std::unique_ptr<Cos> cos,
                             const std::vector<Command>& commands,
                             int workers) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&service, &cos] {
      while (CosHandle h = cos->get()) {
        service.execute(*h.cmd);
        cos->remove(h);
      }
    });
  }
  constexpr std::size_t kBatch = 64;
  for (std::size_t i = 0; i < commands.size(); i += kBatch) {
    const std::size_t n = std::min(kBatch, commands.size() - i);
    EXPECT_TRUE(cos->insert_batch(std::span(commands.data() + i, n)));
  }
  while (cos->approx_size() != 0) std::this_thread::yield();
  cos->close();
  for (std::thread& t : pool) t.join();
  return service.state_digest();
}

std::uint64_t dag_digest(std::unique_ptr<Service> service,
                         const std::vector<Command>& commands, int workers) {
  auto cos = make_cos({.kind = CosKind::kLockFree,
                       .capacity = kPaperGraphSize,
                       .conflict = service->conflict()});
  return run_and_digest(*service, std::move(cos), commands, workers);
}

std::uint64_t early_digest(std::unique_ptr<Service> service,
                           const std::vector<Command>& commands, int workers) {
  auto dag = make_cos({.kind = CosKind::kLockFree,
                       .capacity = kPaperGraphSize,
                       .conflict = service->conflict()});
  auto early = std::make_unique<EarlyCos>(std::move(dag), service->class_map(),
                                          workers, /*queue_capacity=*/128);
  return run_and_digest(*service, std::move(early), commands, workers);
}

void stamp_ids(std::vector<Command>* commands) {
  std::uint64_t id = 1;
  for (Command& c : *commands) c.id = id++;
}

TEST(EarlyEquivalence, ZipfKvMatchesDagDigest) {
  KvService key_source(64);
  auto commands = make_kv_workload_zipf(key_source, 20000, /*write_pct=*/30.0,
                                        /*key_space=*/4096, /*theta=*/0.99,
                                        /*seed=*/91);
  stamp_ids(&commands);
  const std::uint64_t reference =
      dag_digest(std::make_unique<KvService>(64), commands, 4);
  EXPECT_EQ(early_digest(std::make_unique<KvService>(64), commands, 4),
            reference);
  // Worker count changes the routing but must not change the outcome.
  EXPECT_EQ(early_digest(std::make_unique<KvService>(64), commands, 2),
            reference);
  EXPECT_EQ(early_digest(std::make_unique<KvService>(64), commands, 3),
            reference);
}

TEST(EarlyEquivalence, BankWithCrossClassTransfersMatchesDagDigest) {
  constexpr std::size_t kAccounts = 64;
  constexpr std::uint64_t kInitial = 10'000;
  // Uniform two-account transfers: most span classes and pay the barrier.
  auto commands = make_bank_workload(10000, /*write_pct=*/40.0, kAccounts,
                                     /*seed=*/7);
  stamp_ids(&commands);
  const std::uint64_t reference = dag_digest(
      std::make_unique<BankService>(kAccounts, kInitial), commands, 4);

  BankService bank(kAccounts, kInitial);
  auto dag = make_cos({.kind = CosKind::kLockFree,
                       .capacity = kPaperGraphSize,
                       .conflict = bank.conflict()});
  auto early = std::make_unique<EarlyCos>(std::move(dag), bank.class_map(), 4,
                                          /*queue_capacity=*/128);
  EXPECT_EQ(run_and_digest(bank, std::move(early), commands, 4), reference);
  // Transfers only move money; conservation is the cross-command invariant
  // a lost update or ordering violation would break.
  EXPECT_EQ(bank.total_balance(), kAccounts * kInitial);
}

TEST(EarlyEquivalence, ListReadersAndWritersMatchDagDigest) {
  constexpr std::size_t kListSize = 512;
  auto commands = make_list_workload(10000, /*write_pct=*/15.0, kListSize,
                                     /*seed=*/3);
  stamp_ids(&commands);
  const std::uint64_t reference = dag_digest(
      std::make_unique<LinkedListService>(kListSize), commands, 4);
  EXPECT_EQ(
      early_digest(std::make_unique<LinkedListService>(kListSize), commands, 4),
      reference);
}

TEST(EarlySched, AllSyncViaNullMapStillCorrect) {
  // No class map: every command takes the barrier path; the result must
  // still match the DAG (this is the always-correct degenerate routing).
  KvService key_source(16);
  auto commands = make_kv_workload(key_source, 4000, 50.0, 256, 19);
  stamp_ids(&commands);
  const std::uint64_t reference =
      dag_digest(std::make_unique<KvService>(16), commands, 2);

  auto service = std::make_unique<KvService>(16);
  auto dag = make_cos({.kind = CosKind::kLockFree,
                       .capacity = kPaperGraphSize,
                       .conflict = service->conflict()});
  auto early =
      std::make_unique<EarlyCos>(std::move(dag), nullptr, 2, 128);
  EXPECT_EQ(run_and_digest(*service, std::move(early), commands, 2),
            reference);
}

TEST(EarlySched, SchedulerCountersMove) {
  if constexpr (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  KvService key_source(64);
  auto commands = make_kv_workload_zipf(key_source, 4000, 30.0, 1024, 0.5, 5);
  stamp_ids(&commands);
  early_digest(std::make_unique<KvService>(64), commands, 2);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  EXPECT_GT(after.counter("scheduler.class_hits") -
                before.counter("scheduler.class_hits"),
            0u);
  // Zipf KV traffic is single-key; only batch-boundary effects produce
  // barriers, so only class_hits is guaranteed to move here. Bank traffic
  // exercises barrier_waits:
  auto transfers = make_bank_workload(2000, 100.0, 64, 77);
  stamp_ids(&transfers);
  early_digest(std::make_unique<BankService>(64, 1000), transfers, 2);
  const MetricsSnapshot final_snap = MetricsRegistry::global().snapshot();
  EXPECT_GT(final_snap.counter("scheduler.barrier_waits") -
                before.counter("scheduler.barrier_waits"),
            0u);
}

TEST(EarlySched, DsDriverMakesProgressUnderEarlyPolicy) {
  DsDriverConfig config;
  config.policy = SchedulerPolicy::kEarlyScheduling;
  config.cos.kind = CosKind::kLockFree;
  config.cost = ExecCost::kLight;
  config.workers = 2;
  config.warmup_ms = 20;
  config.measure_ms = 100;
  config.write_pct = 10.0;
  const DsDriverResult result = run_ds_benchmark(config);
  EXPECT_GT(result.completed_ops, 0u);
  EXPECT_GT(result.throughput_kops, 0.0);
}

}  // namespace
}  // namespace psmr
