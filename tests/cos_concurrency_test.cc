// Concurrency and property tests of the COS implementations.
//
// The central invariant (I1/I2 in DESIGN.md): under the readers/writers
// conflict relation, a write may only start executing when *every* earlier
// command has completed and nothing else is executing; a read may only
// start when every earlier write has completed. Each command is handed out
// exactly once. We run scheduler+workers at several thread counts over
// randomized workloads and check the invariants with atomic instrumentation
// inside the (simulated) execution.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "app/bank_service.h"
#include "app/linked_list_service.h"
#include "common/rng.h"
#include "cos/factory.h"
#include "cos/lock_free.h"
#include "workload/generator.h"

namespace psmr {
namespace {

struct StressParam {
  CosKind kind;
  int workers;
  double write_pct;
};

std::string param_name(const ::testing::TestParamInfo<StressParam>& info) {
  std::string name;
  switch (info.param.kind) {
    case CosKind::kCoarseGrained:
      name = "CoarseGrained";
      break;
    case CosKind::kFineGrained:
      name = "FineGrained";
      break;
    case CosKind::kLockFree:
      name = "LockFree";
      break;
    case CosKind::kStriped:
      name = "Striped";
      break;
  }
  name += "_w" + std::to_string(info.param.workers);
  name += "_wr" + std::to_string(static_cast<int>(info.param.write_pct));
  return name;
}

class CosStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(CosStressTest, ConflictOrderAndExactlyOnce) {
  const StressParam param = GetParam();
  constexpr std::size_t kCommands = 20000;
  constexpr std::size_t kGraphSize = 64;

  // Pre-generate the command stream; ids are 1..kCommands in insert order.
  auto commands = make_list_workload(kCommands, param.write_pct, 1000,
                                     /*seed=*/1234 + param.workers);
  std::vector<bool> is_write(kCommands + 1, false);
  std::vector<std::uint64_t> prev_write(kCommands + 1, 0);
  std::uint64_t last_write = 0;
  for (std::size_t i = 0; i < kCommands; ++i) {
    commands[i].id = i + 1;
    is_write[i + 1] = psmr::is_write(commands[i]);
    prev_write[i + 1] = last_write;
    if (is_write[i + 1]) last_write = i + 1;
  }

  auto cos = make_cos(
      {.kind = param.kind, .capacity = kGraphSize, .conflict = rw_conflict});

  std::atomic<std::uint64_t> completed_total{0};
  std::atomic<std::uint64_t> last_completed_write{0};
  std::atomic<int> executing_now{0};
  std::vector<std::atomic<std::uint8_t>> handed_out(kCommands + 1);
  std::atomic<int> violations{0};

  std::thread scheduler([&] {
    for (const Command& c : commands) {
      if (!cos->insert(c)) return;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < param.workers; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        const std::uint64_t id = h.cmd->id;

        if (handed_out[id].fetch_add(1) != 0) violations.fetch_add(1);

        executing_now.fetch_add(1);
        if (is_write[id]) {
          // A write must be alone and everything earlier must be done.
          if (executing_now.load() != 1) violations.fetch_add(1);
          if (completed_total.load() != id - 1) violations.fetch_add(1);
        } else {
          // A read needs every earlier write completed.
          if (last_completed_write.load() < prev_write[id]) {
            violations.fetch_add(1);
          }
        }
        // Simulated execution: enough work to overlap with other workers.
        std::atomic_signal_fence(std::memory_order_seq_cst);

        if (is_write[id]) last_completed_write.store(id);
        completed_total.fetch_add(1);
        executing_now.fetch_sub(1);

        cos->remove(h);
      }
    });
  }

  scheduler.join();
  // Wait for everything to drain, then shut down the workers.
  while (completed_total.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(completed_total.load(), kCommands);
  for (std::size_t id = 1; id <= kCommands; ++id) {
    ASSERT_EQ(handed_out[id].load(), 1u) << "command " << id;
  }
  EXPECT_EQ(cos->approx_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CosStressTest,
    ::testing::Values(
        StressParam{CosKind::kCoarseGrained, 1, 10},
        StressParam{CosKind::kCoarseGrained, 4, 0},
        StressParam{CosKind::kCoarseGrained, 4, 10},
        StressParam{CosKind::kCoarseGrained, 8, 50},
        StressParam{CosKind::kFineGrained, 1, 10},
        StressParam{CosKind::kFineGrained, 4, 0},
        StressParam{CosKind::kFineGrained, 4, 10},
        StressParam{CosKind::kFineGrained, 8, 50},
        StressParam{CosKind::kLockFree, 1, 10},
        StressParam{CosKind::kLockFree, 4, 0},
        StressParam{CosKind::kLockFree, 4, 10},
        StressParam{CosKind::kLockFree, 8, 50},
        StressParam{CosKind::kLockFree, 16, 5},
        StressParam{CosKind::kLockFree, 8, 100},
        // High thread counts: regression cover for the remove()-vs-remove()
        // successor race in the fine-grained list (use-after-free when the
        // predecessor lock was dropped before locking the successor).
        StressParam{CosKind::kFineGrained, 32, 10},
        StressParam{CosKind::kCoarseGrained, 32, 10},
        StressParam{CosKind::kLockFree, 32, 10},
        StressParam{CosKind::kStriped, 1, 10},
        StressParam{CosKind::kStriped, 4, 0},
        StressParam{CosKind::kStriped, 4, 10},
        StressParam{CosKind::kStriped, 8, 50},
        StressParam{CosKind::kStriped, 32, 10}),
    param_name);

// Executes a real service under each COS and checks that the final state
// matches a sequential reference execution — the replica-determinism
// property that parallel SMR needs from the scheduler.
class CosDeterminismTest : public ::testing::TestWithParam<CosKind> {};

TEST_P(CosDeterminismTest, StateMatchesSequentialExecution) {
  constexpr std::size_t kCommands = 5000;
  constexpr std::size_t kListSize = 200;
  auto commands =
      make_list_workload(kCommands, /*write_pct=*/30, kListSize, /*seed=*/99);
  for (std::size_t i = 0; i < kCommands; ++i) commands[i].id = i + 1;

  // Reference: sequential execution.
  LinkedListService reference(kListSize);
  for (const Command& c : commands) reference.execute(c);

  // Parallel execution through the COS.
  LinkedListService service(kListSize);
  auto cos = make_cos(
      {.kind = GetParam(), .capacity = 32, .conflict = rw_conflict});
  std::thread scheduler([&] {
    for (const Command& c : commands) {
      if (!cos->insert(c)) return;
    }
  });
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        service.execute(*h.cmd);
        done.fetch_add(1);
        cos->remove(h);
      }
    });
  }
  scheduler.join();
  while (done.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(service.state_digest(), reference.state_digest());
  EXPECT_EQ(service.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, CosDeterminismTest,
                         ::testing::Values(CosKind::kCoarseGrained,
                                           CosKind::kFineGrained,
                                           CosKind::kLockFree,
                                           CosKind::kStriped),
                         [](const auto& info) {
                           switch (info.param) {
                             case CosKind::kCoarseGrained:
                               return "CoarseGrained";
                             case CosKind::kFineGrained:
                               return "FineGrained";
                             case CosKind::kLockFree:
                               return "LockFree";
                             case CosKind::kStriped:
                               return "Striped";
                           }
                           return "Unknown";
                         });

// Keyed stress of the indexed dependency tracker under real concurrency:
// scheduler inserting bank transfers/balances while workers execute and
// remove. Exercises every variant's index-vs-removal synchronization
// (eager prune under the coarse lock, the striped segment sweep, the
// fine-grained deletion fence, lock-free lazy pruning + EBR), which the
// single-threaded equivalence test cannot. Run under TSan this is the
// data-race check for the tracker; the conserved total balance and the
// sequential-reference digest catch missed or duplicated dependencies.
class IndexedKeyedStressTest : public ::testing::TestWithParam<CosKind> {};

TEST_P(IndexedKeyedStressTest, BankStateMatchesSequentialExecution) {
  constexpr std::size_t kCommands = 20000;
  constexpr std::size_t kAccounts = 64;
  constexpr std::size_t kWindow = 64;
  constexpr std::uint64_t kInitialBalance = 1000;
  auto commands = make_bank_workload(kCommands, /*write_pct=*/40, kAccounts,
                                     /*seed=*/4242);
  for (std::size_t i = 0; i < kCommands; ++i) commands[i].id = i + 1;

  BankService reference(kAccounts, kInitialBalance);
  for (const Command& c : commands) reference.execute(c);

  BankService service(kAccounts, kInitialBalance);
  auto cos = make_cos({.kind = GetParam(),
                       .capacity = kWindow,
                       .conflict = keyset_rw_conflict,
                       .indexed = true});
  std::thread scheduler([&] {
    for (const Command& c : commands) {
      if (!cos->insert(c)) return;
    }
  });
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        service.execute(*h.cmd);
        done.fetch_add(1);
        cos->remove(h);
      }
    });
  }
  scheduler.join();
  while (done.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(service.total_balance(), kAccounts * kInitialBalance);
  EXPECT_EQ(service.state_digest(), reference.state_digest());
  EXPECT_EQ(cos->approx_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, IndexedKeyedStressTest,
                         ::testing::Values(CosKind::kCoarseGrained,
                                           CosKind::kFineGrained,
                                           CosKind::kLockFree,
                                           CosKind::kStriped),
                         [](const auto& info) {
                           switch (info.param) {
                             case CosKind::kCoarseGrained:
                               return "CoarseGrained";
                             case CosKind::kFineGrained:
                               return "FineGrained";
                             case CosKind::kLockFree:
                               return "LockFree";
                             case CosKind::kStriped:
                               return "Striped";
                           }
                           return "Unknown";
                         });

// Batch insertion must satisfy exactly the same conflict-order invariant as
// per-command insertion; this runs the lock-free single-traversal batch
// path (including intra-batch edges) under concurrency.
TEST(CosBatchStress, LockFreeBatchInsertKeepsConflictOrder) {
  constexpr std::size_t kCommands = 20000;
  constexpr std::size_t kBatch = 16;
  auto commands = make_list_workload(kCommands, 15.0, 1000, 77);
  std::vector<bool> is_write(kCommands + 1, false);
  std::vector<std::uint64_t> prev_write(kCommands + 1, 0);
  std::uint64_t last_write = 0;
  for (std::size_t i = 0; i < kCommands; ++i) {
    commands[i].id = i + 1;
    is_write[i + 1] = psmr::is_write(commands[i]);
    prev_write[i + 1] = last_write;
    if (is_write[i + 1]) last_write = i + 1;
  }

  auto cos = make_cos({.kind = CosKind::kLockFree,
                       .capacity = 64,
                       .conflict = rw_conflict});
  std::atomic<std::uint64_t> completed_total{0};
  std::atomic<std::uint64_t> last_completed_write{0};
  std::atomic<int> executing_now{0};
  std::atomic<int> violations{0};

  std::thread scheduler([&] {
    for (std::size_t i = 0; i < kCommands; i += kBatch) {
      const std::size_t take = std::min(kBatch, kCommands - i);
      if (!cos->insert_batch({commands.data() + i, take})) return;
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        const std::uint64_t id = h.cmd->id;
        executing_now.fetch_add(1);
        if (is_write[id]) {
          if (executing_now.load() != 1) violations.fetch_add(1);
          if (completed_total.load() != id - 1) violations.fetch_add(1);
        } else if (last_completed_write.load() < prev_write[id]) {
          violations.fetch_add(1);
        }
        if (is_write[id]) last_completed_write.store(id);
        completed_total.fetch_add(1);
        executing_now.fetch_sub(1);
        cos->remove(h);
      }
    });
  }
  scheduler.join();
  while (completed_total.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(completed_total.load(), kCommands);
}

// Lock-free specific: memory reclamation actually happens under churn and
// nothing pending survives destruction (ASan would flag leaks/UAF).
TEST(LockFreeReclamation, NodesAreReclaimedDuringOperation) {
  auto cos = std::make_unique<LockFreeCos>(32, rw_conflict);
  constexpr std::size_t kCommands = 30000;
  std::thread scheduler([&] {
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      Command c = (i % 10 == 0) ? LinkedListService::make_add(i)
                                : LinkedListService::make_contains(i);
      c.id = i;
      if (!cos->insert(c)) return;
    }
  });
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        done.fetch_add(1);
        cos->remove(h);
      }
    });
  }
  scheduler.join();
  while (done.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();

  // The vast majority of the 30k nodes must have been physically reclaimed
  // while running (not parked until destruction).
  EXPECT_GT(cos->nodes_reclaimed(), kCommands / 2);
}

// Regression for the fine-grained *pairwise-scan* lock-order report first
// seen in the TSan job when the key index landed (it predated the index —
// see DESIGN.md §8.3). The root cause was insert() locking the new node up
// front, before the hand-over-hand walk: a later list position's mutex
// acquired before earlier ones, inverting remove()'s phase-2 list-order
// walk. The link-time-locking fix removed it; this test pins the fix by
// maximizing the original trigger under the TSan CI job's lock-order graph:
// an opaque relation (rw_conflict — the pairwise scan, no index), a
// write-heavy mix so nearly every insert records edges against the whole
// window and nearly every remove() phase 2 walks the full suffix, a small
// window so insert scans and phase-2 walks overlap constantly, and enough
// workers that several removes run against the inserter at any moment.
TEST(FineGrainedPairwiseScan, InsertScanVsRemoveWalkLockOrder) {
  constexpr std::size_t kCommands = 30000;
  constexpr std::size_t kGraphSize = 24;
  auto cos = make_cos({.kind = CosKind::kFineGrained,
                       .capacity = kGraphSize,
                       .conflict = rw_conflict});
  ASSERT_STREQ(cos->name(), "fine-grained");

  std::thread scheduler([&] {
    Xoshiro256 rng(31337);
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      // 70% writes: writes conflict with everything, so insert scans record
      // edges on most of the window and phase-2 walks visit most of it.
      Command c = rng.uniform() < 0.7 ? LinkedListService::make_add(i)
                                      : LinkedListService::make_contains(i);
      c.id = i;
      if (!cos->insert(c)) return;
    }
  });
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;
        done.fetch_add(1);
        cos->remove(h);
      }
    });
  }
  scheduler.join();
  while (done.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(done.load(), kCommands);
}

}  // namespace
}  // namespace psmr
