// Transport conformance suite: the contract in net/transport.h, executed
// against BOTH implementations — the in-process SimNetwork and the real
// TcpTransport over loopback sockets. Whatever fabric carries the SMR
// protocol must pass all of these: per-pair FIFO, self-send, thread-safe
// concurrent senders, frames far beyond one read() chunk, and the
// guarantee that sending to a crashed peer never wedges the sender.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "broadcast/messages.h"
#include "common/stopwatch.h"
#include "net/sim_network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

namespace psmr {
namespace {

// Grabs an ephemeral loopback port. The bind/close/rebind race is
// theoretical on a loopback-only test box.
int pick_free_port() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// A fabric of n endpoints with ids 0..n-1, regardless of whether they share
// one transport object (SimNetwork) or run one per node (TcpTransport).
class Fabric {
 public:
  virtual ~Fabric() = default;
  virtual Transport& node(NodeId id) = 0;
  // Makes the node unreachable: SimNetwork crashes the endpoint, the TCP
  // fabric shuts the node's transport down (sockets close, port goes dead).
  virtual void kill(NodeId id) = 0;
};

class SimFabric final : public Fabric {
 public:
  explicit SimFabric(std::vector<Transport::Handler> handlers) {
    SimNetwork::Config config;
    config.base_latency_us = 20;
    config.jitter_us = 10;
    net_ = std::make_unique<SimNetwork>(config);
    for (auto& handler : handlers) net_->add_endpoint(std::move(handler));
  }
  Transport& node(NodeId) override { return *net_; }
  void kill(NodeId id) override { net_->crash(id); }

 private:
  std::unique_ptr<SimNetwork> net_;
};

class TcpFabric final : public Fabric {
 public:
  explicit TcpFabric(std::vector<Transport::Handler> handlers) {
    const int n = static_cast<int>(handlers.size());
    std::map<NodeId, std::string> addresses;
    for (int i = 0; i < n; ++i) {
      addresses[i] = "127.0.0.1:" + std::to_string(pick_free_port());
    }
    for (int i = 0; i < n; ++i) {
      TcpTransport::Config config;
      config.local_id = i;
      config.listen_address = addresses[i];
      config.peers = addresses;
      config.reconnect_initial_ms = 5;
      config.reconnect_max_ms = 100;
      nodes_.push_back(std::make_unique<TcpTransport>(config));
      EXPECT_EQ(nodes_.back()->add_endpoint(std::move(handlers[
                    static_cast<std::size_t>(i)])),
                i);
    }
  }
  ~TcpFabric() override {
    for (auto& node : nodes_) node->shutdown();
  }
  Transport& node(NodeId id) override {
    return *nodes_[static_cast<std::size_t>(id)];
  }
  void kill(NodeId id) override {
    nodes_[static_cast<std::size_t>(id)]->shutdown();
  }

 private:
  std::vector<std::unique_ptr<TcpTransport>> nodes_;
};

enum class FabricKind { kSim, kTcp };

std::string fabric_name(const ::testing::TestParamInfo<FabricKind>& info) {
  return info.param == FabricKind::kSim ? "SimNetwork" : "TcpTransport";
}

class TransportConformanceTest : public ::testing::TestWithParam<FabricKind> {
 protected:
  std::unique_ptr<Fabric> make_fabric(
      std::vector<Transport::Handler> handlers) {
    if (GetParam() == FabricKind::kSim) {
      return std::make_unique<SimFabric>(std::move(handlers));
    }
    return std::make_unique<TcpFabric>(std::move(handlers));
  }
};

// Messages must round-trip the codec to survive the TCP wire; ReplyMsg
// (tagged with client_seq = sequence, value = sender tag) is the smallest
// codec-registered message that carries test payload.
MessagePtr tagged(std::uint64_t seq, std::uint64_t sender) {
  return make_message<ReplyMsg>(seq, sender, true);
}

struct Inbox {
  std::mutex mu;  // NOLINT(psmr-raw-mutex) test-local inbox; lifetime confined to the fixture
  std::map<NodeId, std::vector<std::uint64_t>> by_sender;  // seq per from  // NOLINT(psmr-guarded-by-coverage) guarded by mu (test-local)
  std::atomic<std::uint64_t> count{0};

  Transport::Handler handler() {
    return [this](NodeId from, MessagePtr m) {
      if (m->type != msg::kReply) return;
      const auto& reply = message_as<ReplyMsg>(m);
      {
        std::lock_guard lock(mu);
        by_sender[from].push_back(reply.client_seq);
      }
      count.fetch_add(1);
    };
  }
};

Transport::Handler null_handler() { return [](NodeId, MessagePtr) {}; }

TEST_P(TransportConformanceTest, DeliversBetweenNodesAndToSelf) {
  Inbox inbox0;
  Inbox inbox1;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(inbox0.handler());
  handlers.push_back(inbox1.handler());
  auto fabric = make_fabric(std::move(handlers));

  fabric->node(0).send(0, 1, tagged(7, 0));
  fabric->node(1).send(1, 1, tagged(9, 1));  // self-send
  ASSERT_TRUE(wait_until([&] { return inbox1.count.load() == 2; }));
  std::lock_guard lock(inbox1.mu);
  EXPECT_EQ(inbox1.by_sender[0], std::vector<std::uint64_t>{7});
  EXPECT_EQ(inbox1.by_sender[1], std::vector<std::uint64_t>{9});
}

TEST_P(TransportConformanceTest, PerPairFifoOrdering) {
  constexpr std::uint64_t kPerSender = 400;
  Inbox sink;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back(null_handler());
  handlers.push_back(sink.handler());
  auto fabric = make_fabric(std::move(handlers));

  for (std::uint64_t i = 0; i < kPerSender; ++i) {
    fabric->node(0).send(0, 2, tagged(i, 0));
    fabric->node(1).send(1, 2, tagged(i, 1));
  }
  ASSERT_TRUE(
      wait_until([&] { return sink.count.load() == 2 * kPerSender; }));

  std::lock_guard lock(sink.mu);
  for (NodeId sender : {0, 1}) {
    const auto& seqs = sink.by_sender[sender];
    ASSERT_EQ(seqs.size(), kPerSender) << "sender " << sender;
    for (std::uint64_t i = 0; i < kPerSender; ++i) {
      ASSERT_EQ(seqs[i], i) << "sender " << sender << " position " << i;
    }
  }
}

TEST_P(TransportConformanceTest, ConcurrentSendersAllDelivered) {
  constexpr int kThreadsPerNode = 2;
  constexpr std::uint64_t kPerThread = 150;
  Inbox sink;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back(null_handler());
  handlers.push_back(null_handler());
  handlers.push_back(sink.handler());
  auto fabric = make_fabric(std::move(handlers));

  std::vector<std::thread> threads;
  for (NodeId sender = 0; sender < 3; ++sender) {
    for (int t = 0; t < kThreadsPerNode; ++t) {
      threads.emplace_back([&fabric, sender] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          fabric->node(sender).send(sender, 3, tagged(i, 0));
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t expected = 3 * kThreadsPerNode * kPerThread;
  ASSERT_TRUE(wait_until([&] { return sink.count.load() == expected; }));
  std::lock_guard lock(sink.mu);
  for (NodeId sender : {0, 1, 2}) {
    EXPECT_EQ(sink.by_sender[sender].size(), kThreadsPerNode * kPerThread);
  }
}

TEST_P(TransportConformanceTest, LargeFramesSurviveIntact) {
  // > 64 KiB forces multi-chunk reads and partial writes on the TCP path.
  constexpr std::size_t kSnapshotBytes = 256 * 1024 + 13;
  std::vector<std::uint8_t> snapshot(kSnapshotBytes);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    snapshot[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));
  }

  std::mutex mu;
  std::vector<std::uint8_t> received;
  std::atomic<int> got{0};
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back([&](NodeId, MessagePtr m) {
    if (m->type != msg::kStateResponse) return;
    std::lock_guard lock(mu);
    received = message_as<StateResponseMsg>(m).snapshot;
    got.store(1);
  });
  auto fabric = make_fabric(std::move(handlers));

  fabric->node(0).send(0, 1,
                       make_message<StateResponseMsg>(42, 1, snapshot));
  ASSERT_TRUE(wait_until([&] { return got.load() == 1; }));
  std::lock_guard lock(mu);
  EXPECT_EQ(received, snapshot);
}

TEST_P(TransportConformanceTest, SendAfterPeerCrashDoesNotWedgeSender) {
  Inbox sink;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back(null_handler());
  handlers.push_back(sink.handler());
  auto fabric = make_fabric(std::move(handlers));

  // Prove the path to node 1 works, then kill it.
  fabric->node(0).send(0, 1, tagged(0, 0));
  fabric->kill(1);

  const std::uint64_t start_ns = now_ns();
  for (std::uint64_t i = 0; i < 500; ++i) {
    fabric->node(0).send(0, 1, tagged(i, 0));
  }
  const std::uint64_t elapsed_ms = (now_ns() - start_ns) / 1'000'000ull;
  EXPECT_LT(elapsed_ms, 2000u) << "send() to a dead peer must not block";

  // The sender is still live: traffic to a healthy peer flows.
  for (std::uint64_t i = 0; i < 10; ++i) {
    fabric->node(0).send(0, 2, tagged(i, 0));
  }
  EXPECT_TRUE(wait_until([&] { return sink.count.load() == 10; }));
}

TEST_P(TransportConformanceTest, RemoveEndpointStopsHandlerInvocations) {
  Inbox sink;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back(sink.handler());
  auto fabric = make_fabric(std::move(handlers));

  // Prove delivery works, then deregister the receiver under load.
  fabric->node(0).send(0, 1, tagged(0, 0));
  ASSERT_TRUE(wait_until([&] { return sink.count.load() >= 1; }));

  std::atomic<bool> stop_flood{false};
  std::thread flooder([&] {
    std::uint64_t seq = 1;
    while (!stop_flood.load()) {
      fabric->node(0).send(0, 1, tagged(seq++, 0));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fabric->node(1).remove_endpoint(1);
  // The contract: once remove_endpoint returns, no handler invocation is
  // running or will ever start, even with a sender still flooding.
  const std::uint64_t at_removal = sink.count.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(sink.count.load(), at_removal)
      << "handler ran after remove_endpoint returned";
  stop_flood.store(true);
  flooder.join();
}

TEST_P(TransportConformanceTest, RemoveEndpointIsIdempotentAndIgnoresUnknownIds) {
  Inbox sink;
  std::vector<Transport::Handler> handlers;
  handlers.push_back(null_handler());
  handlers.push_back(null_handler());
  handlers.push_back(sink.handler());
  auto fabric = make_fabric(std::move(handlers));

  fabric->node(1).remove_endpoint(1);
  fabric->node(1).remove_endpoint(1);   // second removal: no-op
  fabric->node(1).remove_endpoint(99);  // not hosted anywhere: ignored
  fabric->node(1).remove_endpoint(-1);

  // Sends to the removed endpoint are dropped without wedging the sender...
  const std::uint64_t start_ns = now_ns();
  for (std::uint64_t i = 0; i < 200; ++i) {
    fabric->node(0).send(0, 1, tagged(i, 0));
  }
  EXPECT_LT((now_ns() - start_ns) / 1'000'000ull, 2000u);
  // ...and the rest of the fabric still delivers.
  for (std::uint64_t i = 0; i < 10; ++i) {
    fabric->node(0).send(0, 2, tagged(i, 0));
  }
  EXPECT_TRUE(wait_until([&] { return sink.count.load() == 10; }));
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformanceTest,
                         ::testing::Values(FabricKind::kSim,
                                           FabricKind::kTcp),
                         fabric_name);

}  // namespace
}  // namespace psmr
