#include <gtest/gtest.h>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// LinkedListService
// ---------------------------------------------------------------------------

TEST(LinkedList, InitializedWithRange) {
  LinkedListService service(100);
  EXPECT_EQ(service.size(), 100u);
  for (std::uint64_t v : {0ull, 1ull, 50ull, 99ull}) {
    const Response r = service.execute(LinkedListService::make_contains(v));
    EXPECT_TRUE(r.ok) << v;
  }
  EXPECT_FALSE(service.execute(LinkedListService::make_contains(100)).ok);
}

TEST(LinkedList, AddNewValue) {
  LinkedListService service(10);
  EXPECT_TRUE(service.execute(LinkedListService::make_add(500)).ok);
  EXPECT_EQ(service.size(), 11u);
  EXPECT_TRUE(service.execute(LinkedListService::make_contains(500)).ok);
}

TEST(LinkedList, AddDuplicateReturnsFalse) {
  LinkedListService service(10);
  EXPECT_FALSE(service.execute(LinkedListService::make_add(5)).ok);
  EXPECT_EQ(service.size(), 10u);
}

TEST(LinkedList, AddAtFront) {
  LinkedListService service(0);
  EXPECT_TRUE(service.execute(LinkedListService::make_add(7)).ok);
  EXPECT_TRUE(service.execute(LinkedListService::make_add(3)).ok);  // front
  EXPECT_TRUE(service.execute(LinkedListService::make_contains(3)).ok);
  EXPECT_TRUE(service.execute(LinkedListService::make_contains(7)).ok);
  EXPECT_EQ(service.size(), 2u);
}

TEST(LinkedList, SortedOrderPreservedUnderMixedAdds) {
  LinkedListService service(0);
  for (std::uint64_t v : {5ull, 1ull, 9ull, 3ull, 7ull}) {
    EXPECT_TRUE(service.execute(LinkedListService::make_add(v)).ok);
  }
  LinkedListService reference(0);
  for (std::uint64_t v : {1ull, 3ull, 5ull, 7ull, 9ull}) {
    reference.execute(LinkedListService::make_add(v));
  }
  // Sorted insertion => digests independent of insertion order.
  EXPECT_EQ(service.state_digest(), reference.state_digest());
}

TEST(LinkedList, DigestDiffersForDifferentStates) {
  LinkedListService a(10), b(10);
  b.execute(LinkedListService::make_add(1000));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(LinkedList, CommandBuildersSetModes) {
  const Command read = LinkedListService::make_contains(1);
  const Command write = LinkedListService::make_add(1);
  EXPECT_EQ(read.mode, AccessMode::kRead);
  EXPECT_EQ(write.mode, AccessMode::kWrite);
  EXPECT_FALSE(rw_conflict(read, read));
  EXPECT_TRUE(rw_conflict(read, write));
  EXPECT_TRUE(rw_conflict(write, write));
}

TEST(LinkedList, ExecCostSizesMatchPaper) {
  EXPECT_EQ(exec_cost_list_size(ExecCost::kLight), 1000u);
  EXPECT_EQ(exec_cost_list_size(ExecCost::kModerate), 10000u);
  EXPECT_EQ(exec_cost_list_size(ExecCost::kHeavy), 100000u);
}

// ---------------------------------------------------------------------------
// KvService
// ---------------------------------------------------------------------------

TEST(Kv, GetMissingReturnsNotOk) {
  KvService service;
  EXPECT_FALSE(service.execute(service.make_get(42)).ok);
}

TEST(Kv, PutThenGet) {
  KvService service;
  EXPECT_TRUE(service.execute(service.make_put(42, 7)).ok);
  const Response r = service.execute(service.make_get(42));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 7u);
}

TEST(Kv, DeleteRemoves) {
  KvService service;
  service.execute(service.make_put(1, 2));
  EXPECT_TRUE(service.execute(service.make_del(1)).ok);
  EXPECT_FALSE(service.execute(service.make_get(1)).ok);
  EXPECT_FALSE(service.execute(service.make_del(1)).ok);
}

TEST(Kv, SizeCountsEntries) {
  KvService service;
  for (std::uint64_t k = 0; k < 100; ++k) {
    service.execute(service.make_put(k, k));
  }
  EXPECT_EQ(service.size(), 100u);
}

TEST(Kv, ConflictsFollowShards) {
  KvService service(8);
  const Command get1 = service.make_get(1);
  const Command put1 = service.make_put(1, 9);
  const Command get2 = service.make_get(2);
  EXPECT_TRUE(keyset_rw_conflict(get1, put1));   // same key
  EXPECT_FALSE(keyset_rw_conflict(get1, get2));  // reads never conflict
}

TEST(Kv, DigestIsOrderIndependent) {
  KvService a, b;
  a.execute(a.make_put(1, 10));
  a.execute(a.make_put(2, 20));
  b.execute(b.make_put(2, 20));
  b.execute(b.make_put(1, 10));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

// ---------------------------------------------------------------------------
// BankService
// ---------------------------------------------------------------------------

TEST(Bank, InitialBalances) {
  BankService bank(10, 100);
  EXPECT_EQ(bank.total_balance(), 1000u);
  const Response r = bank.execute(BankService::make_balance(3));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 100u);
}

TEST(Bank, DepositIncreases) {
  BankService bank(2, 50);
  const Response r = bank.execute(BankService::make_deposit(0, 25));
  EXPECT_EQ(r.value, 75u);
  EXPECT_EQ(bank.total_balance(), 125u);
}

TEST(Bank, TransferMovesMoney) {
  BankService bank(2, 100);
  const Response r = bank.execute(BankService::make_transfer(0, 1, 30));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(bank.balance(0), 70u);
  EXPECT_EQ(bank.balance(1), 130u);
  EXPECT_EQ(bank.total_balance(), 200u);
}

TEST(Bank, TransferCapsAtBalance) {
  BankService bank(2, 10);
  const Response r = bank.execute(BankService::make_transfer(0, 1, 100));
  EXPECT_FALSE(r.ok);  // only partial amount moved
  EXPECT_EQ(r.value, 10u);
  EXPECT_EQ(bank.balance(0), 0u);
  EXPECT_EQ(bank.balance(1), 20u);
  EXPECT_EQ(bank.total_balance(), 20u);
}

TEST(Bank, ConflictSemantics) {
  const Command t01 = BankService::make_transfer(0, 1, 5);
  const Command t12 = BankService::make_transfer(1, 2, 5);
  const Command t23 = BankService::make_transfer(2, 3, 5);
  const Command bal0 = BankService::make_balance(0);
  const Command bal9 = BankService::make_balance(9);
  EXPECT_TRUE(keyset_rw_conflict(t01, t12));   // share account 1
  EXPECT_FALSE(keyset_rw_conflict(t01, t23));  // disjoint
  EXPECT_TRUE(keyset_rw_conflict(t01, bal0));  // read vs write on account 0
  EXPECT_FALSE(keyset_rw_conflict(t01, bal9));
  EXPECT_FALSE(keyset_rw_conflict(bal0, bal9));
  EXPECT_FALSE(keyset_rw_conflict(bal0, bal0));  // reads never conflict
}

TEST(Bank, DigestSensitiveToDistribution) {
  BankService a(4, 100), b(4, 100);
  a.execute(BankService::make_transfer(0, 1, 10));
  EXPECT_EQ(a.total_balance(), b.total_balance());
  EXPECT_NE(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace psmr
