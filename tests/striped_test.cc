// Striped-COS-specific tests: segment width extremes, segment reclamation,
// and the readiness handshake across the publication boundary. Generic COS
// semantics are covered by the parameterized suites in cos_test.cc /
// cos_concurrency_test.cc; these tests poke at the striping machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "app/linked_list_service.h"
#include "cos/striped.h"

namespace psmr {
namespace {

Command read_cmd(std::uint64_t id) {
  Command c = LinkedListService::make_contains(id);
  c.id = id;
  return c;
}

Command write_cmd(std::uint64_t id) {
  Command c = LinkedListService::make_add(id);
  c.id = id;
  return c;
}

class StripedWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedWidthTest, RoundTripAcrossSegmentBoundaries) {
  // Insert more commands than one segment holds, in several fill/drain
  // rounds, so slots, segment allocation and reclamation all cycle.
  const std::size_t width = GetParam();
  StripedCos cos(64, rw_conflict, width);
  EXPECT_EQ(cos.segment_width(), width == 0 ? 1u : width);

  std::uint64_t next_id = 1;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(cos.insert(i % 5 == 0 ? write_cmd(next_id) : read_cmd(next_id)));
      ++next_id;
    }
    std::uint64_t expected = next_id - 40;
    for (int i = 0; i < 40; ++i) {
      CosHandle h = cos.get();
      ASSERT_TRUE(h);
      // Mixed reads/writes drain in insertion order here because we get and
      // remove one at a time.
      EXPECT_EQ(h.cmd->id, expected++);
      cos.remove(h);
    }
    ASSERT_EQ(cos.approx_size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, StripedWidthTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{7}, std::size_t{16},
                                           std::size_t{64},
                                           std::size_t{1000}),
                         [](const auto& info) {
                           return "width" + std::to_string(info.param);
                         });

TEST(Striped, ZeroWidthIsClampedToOne) {
  StripedCos cos(8, rw_conflict, 0);
  EXPECT_EQ(cos.segment_width(), 1u);
  ASSERT_TRUE(cos.insert(read_cmd(1)));
  CosHandle h = cos.get();
  ASSERT_TRUE(h);
  cos.remove(h);
}

TEST(Striped, DependencyAcrossSegments) {
  // Width 2: a write in the first segment must gate a read landing in a
  // later segment.
  StripedCos cos(16, rw_conflict, 2);
  ASSERT_TRUE(cos.insert(write_cmd(1)));
  ASSERT_TRUE(cos.insert(read_cmd(2)));
  ASSERT_TRUE(cos.insert(read_cmd(3)));
  ASSERT_TRUE(cos.insert(read_cmd(4)));  // second segment

  CosHandle w = cos.get();
  ASSERT_TRUE(w);
  EXPECT_EQ(w.cmd->id, 1u);

  std::atomic<int> got{0};
  std::vector<std::thread> getters;
  for (int i = 0; i < 3; ++i) {
    getters.emplace_back([&] {
      CosHandle h = cos.get();
      ASSERT_TRUE(h);
      got.fetch_add(1);
      cos.remove(h);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(got.load(), 0) << "reads released before the write finished";
  cos.remove(w);
  for (auto& t : getters) t.join();
  EXPECT_EQ(got.load(), 3);
}

TEST(Striped, ManyRoundsDoNotAccumulateSegments) {
  // Churn far more commands than the capacity; dead segments must be
  // reclaimed along the way (this is a liveness/memory check — under ASan
  // it also proves reclamation is sound).
  StripedCos cos(32, rw_conflict, 4);
  std::thread worker([&] {
    while (true) {
      CosHandle h = cos.get();
      if (!h) return;
      cos.remove(h);
    }
  });
  for (std::uint64_t i = 1; i <= 50000; ++i) {
    ASSERT_TRUE(cos.insert(i % 10 == 0 ? write_cmd(i) : read_cmd(i)));
  }
  // Drain what's left.
  while (cos.approx_size() > 0) std::this_thread::yield();
  cos.close();
  worker.join();
}

TEST(Striped, ConcurrentStressAtWidthOneAndHuge) {
  // Width 1 degenerates to per-node segments (fine-grained-like); a huge
  // width degenerates to a single segment (coarse-grained-like). Both must
  // still satisfy the exactly-once handout property under concurrency.
  for (std::size_t width : {std::size_t{1}, std::size_t{4096}}) {
    StripedCos cos(64, rw_conflict, width);
    constexpr std::uint64_t kCommands = 10000;
    std::vector<std::atomic<std::uint8_t>> handed(kCommands + 1);
    std::thread scheduler([&] {
      for (std::uint64_t i = 1; i <= kCommands; ++i) {
        Command c = (i % 7 == 0) ? write_cmd(i) : read_cmd(i);
        if (!cos.insert(c)) return;
      }
    });
    std::atomic<std::uint64_t> done{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 6; ++w) {
      workers.emplace_back([&] {
        while (true) {
          CosHandle h = cos.get();
          if (!h) return;
          handed[h.cmd->id].fetch_add(1);
          done.fetch_add(1);
          cos.remove(h);
        }
      });
    }
    scheduler.join();
    while (done.load() < kCommands) std::this_thread::yield();
    cos.close();
    for (auto& t : workers) t.join();
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      ASSERT_EQ(handed[i].load(), 1u) << "width " << width << " command " << i;
    }
  }
}

}  // namespace
}  // namespace psmr
