// Tests of the sharded parallel-insert COS (cos/parallel_insert.h).
//
// Part 1 is the bit-identical-edge-set contract: randomized keyed traffic
// through ParallelInsertCos at 1-4 inserter threads and several shard
// counts must expose — via debug_edges() at quiescent checkpoints — exactly
// (a) the pairwise-definition edge set (model oracle, mirroring the
// instance's own removals) and (b) the edge set a *serial indexed* COS
// (coarse-grained monitor + KeyIndex) computes for the same live sequence.
// The traffic includes the adversarial shapes the merge/bucketing layers
// must get right: duplicate-key commands ({k, k}) and empty key sets.
//
// Part 2 runs real concurrency: scheduler batches + worker pools across
// inserter-thread counts, checking sequential-reference digests and
// conservation on the bank service. Under the TSan CI job this doubles as
// the data-race check for the shard confinement protocol.
//
// Part 3 covers the policy/factory plumbing and shutdown edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "common/rng.h"
#include "cos/command.h"
#include "cos/conflict.h"
#include "cos/factory.h"
#include "cos/parallel_insert.h"
#include "workload/generator.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// Part 1: edge-set equivalence (parallel-insert vs pairwise vs serial
// indexed).
// ---------------------------------------------------------------------------

// Live commands in insertion order plus the pairwise-definition edge set.
class PairwiseModel {
 public:
  void insert(const Command& c) { live_.push_back(c); }

  void remove(std::uint64_t id) {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].id == id) {
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "removed command " << id << " not live in model";
  }

  std::size_t live_count() const { return live_.size(); }
  const std::vector<Command>& live() const { return live_; }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected_edges() const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      for (std::size_t j = i + 1; j < live_.size(); ++j) {
        if (keyset_rw_conflict(live_[i], live_[j])) {
          edges.emplace_back(live_[i].id, live_[j].id);
        }
      }
    }
    std::sort(edges.begin(), edges.end());
    return edges;
  }

 private:
  std::vector<Command> live_;  // insertion order == ascending id
};

// The serial-indexed oracle: replays the live sequence (in delivery order)
// through a coarse-grained monitor COS with the KeyIndex on and reads its
// edge set. Inserts only — the replay never fills past the live count, so
// no window capacity is needed beyond it.
std::vector<std::pair<std::uint64_t, std::uint64_t>> serial_indexed_edges(
    const std::vector<Command>& live) {
  auto serial = make_cos({.kind = CosKind::kCoarseGrained,
                          .capacity = live.size() + 1,
                          .conflict = keyset_rw_conflict,
                          .indexed = true});
  for (const Command& c : live) {
    EXPECT_TRUE(serial->insert(c));
  }
  auto edges = serial->debug_edges();
  serial->close();
  return edges;
}

// Randomized keyed command, including the adversarial shapes: duplicate
// keys ({k, k} — must register/probe once) and empty key sets (conflict
// with nothing under a keyed relation).
Command random_cmd(std::uint64_t id, Xoshiro256& rng,
                   std::uint64_t key_space) {
  Command c;
  c.id = id;
  c.mode = rng.uniform() < 0.3 ? AccessMode::kWrite : AccessMode::kRead;
  const double shape = rng.uniform();
  if (shape < 0.08) {
    c.nkeys = 0;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  } else if (shape < 0.16) {
    const std::uint64_t k = rng.below(key_space);
    c.nkeys = 2;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[0] = k;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[1] = k;  // NOLINT(psmr-sorted-keys) duplicate-key adversarial case, still sorted
  } else if (shape < 0.45) {
    std::uint64_t a = rng.below(key_space);
    std::uint64_t b = rng.below(key_space);
    if (a == b) b = (b + 1) % key_space;
    c.nkeys = 2;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[0] = std::min(a, b);  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[1] = std::max(a, b);  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  } else {
    c.nkeys = 1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[0] = rng.below(key_space);  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  }
  return c;
}

struct EquivParam {
  std::size_t inserters;
  std::size_t shards;
  std::uint64_t key_space;
};

class ParallelInsertEquivalenceTest
    : public ::testing::TestWithParam<EquivParam> {};

TEST_P(ParallelInsertEquivalenceTest, EdgesMatchPairwiseAndSerialIndexed) {
  const EquivParam param = GetParam();
  constexpr std::size_t kWindow = 128;
  constexpr std::size_t kCommands = 6000;
  SCOPED_TRACE("inserters=" + std::to_string(param.inserters) +
               " shards=" + std::to_string(param.shards) +
               " key_space=" + std::to_string(param.key_space));

  ParallelInsertCos cos(kWindow, keyset_rw_conflict, param.shards,
                        param.inserters);
  EXPECT_EQ(cos.inserter_thread_count(),
            std::min(param.inserters, cos.shard_count()));
  PairwiseModel model;
  Xoshiro256 rng(1000 + 17 * param.inserters + param.shards);

  std::uint64_t next_id = 1;
  std::size_t round = 0;
  std::vector<Command> batch;
  while (next_id <= kCommands) {
    ++round;
    // Insert a batch (the parallel probe path), staying within the window.
    batch.clear();
    std::size_t burst = 1 + rng.below(16);
    while (burst-- > 0 && next_id <= kCommands &&
           model.live_count() + batch.size() < kWindow) {
      batch.push_back(random_cmd(next_id++, rng, param.key_space));
    }
    if (!batch.empty()) {
      ASSERT_TRUE(cos.insert_batch(batch));
      for (const Command& c : batch) model.insert(c);
    }

    // Remove a burst; the instance picks which ready command each get()
    // returns, and the model mirrors that exact choice.
    std::size_t removals = rng.below(model.live_count() + 1);
    if (model.live_count() == kWindow && removals == 0) removals = 1;
    while (removals-- > 0) {
      CosHandle h = cos.get();
      ASSERT_TRUE(h);
      model.remove(h.cmd->id);
      cos.remove(h);
    }

    if (round % 8 == 0) {
      const auto got = cos.debug_edges();
      ASSERT_EQ(got, model.expected_edges())
          << "pairwise mismatch after " << (next_id - 1) << " inserts";
      ASSERT_EQ(got, serial_indexed_edges(model.live()))
          << "serial-indexed mismatch after " << (next_id - 1) << " inserts";
    }
  }

  // Drain to empty, checking along the way.
  while (model.live_count() > 0) {
    CosHandle h = cos.get();
    ASSERT_TRUE(h);
    model.remove(h.cmd->id);
    cos.remove(h);
    if (model.live_count() % 16 == 0) {
      ASSERT_EQ(cos.debug_edges(), model.expected_edges());
    }
  }
  EXPECT_TRUE(cos.debug_edges().empty());
  EXPECT_EQ(cos.approx_size(), 0u);
  cos.close();
}

INSTANTIATE_TEST_SUITE_P(
    InsertersTimesShards, ParallelInsertEquivalenceTest,
    ::testing::Values(
        // 1-4 inserter threads; shard counts from degenerate (1: every key
        // in one shard, pure pipeline overhead) through typical (8/16).
        EquivParam{1, 1, 64}, EquivParam{1, 8, 64}, EquivParam{2, 8, 64},
        EquivParam{3, 8, 64}, EquivParam{4, 16, 64}, EquivParam{2, 1, 64},
        EquivParam{4, 16, 4096}, EquivParam{2, 8, 4096},
        // More shards than window keys: mostly-empty shards each batch.
        EquivParam{4, 64, 32}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.inserters) + "_s" +
             std::to_string(info.param.shards) + "_k" +
             std::to_string(info.param.key_space);
    });

// Determinism across inserter-thread counts: the same quiescent insert
// sequence must yield byte-identical edge sets whether probed by 1, 2, 3
// or 4 threads (the per-shard candidate streams are thread-count
// invariant; the merge is scheduler-ordered).
TEST(ParallelInsertDeterminism, EdgeSetsIndependentOfInserterCount) {
  constexpr std::size_t kWindow = 96;
  Xoshiro256 rng(777);
  std::vector<Command> batch;
  for (std::uint64_t id = 1; batch.size() < kWindow - 1; ++id) {
    batch.push_back(random_cmd(id, rng, 48));
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> reference;
  for (std::size_t inserters = 1; inserters <= 4; ++inserters) {
    ParallelInsertCos cos(kWindow, keyset_rw_conflict, /*shards=*/8,
                          inserters);
    ASSERT_TRUE(cos.insert_batch(batch));
    const auto edges = cos.debug_edges();
    if (inserters == 1) {
      reference = edges;
      EXPECT_EQ(reference, serial_indexed_edges(batch));
    } else {
      ASSERT_EQ(edges, reference) << "inserters=" << inserters;
    }
    cos.close();
  }
}

// ---------------------------------------------------------------------------
// Part 2: real concurrency — scheduler batches + worker pool.
// ---------------------------------------------------------------------------

struct StressParam {
  std::size_t inserters;
  std::size_t shards;
  int workers;
};

class ParallelInsertStressTest : public ::testing::TestWithParam<StressParam> {
};

TEST_P(ParallelInsertStressTest, BankStateMatchesSequentialExecution) {
  const StressParam param = GetParam();
  constexpr std::size_t kCommands = 20000;
  constexpr std::size_t kAccounts = 64;
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kBatch = 16;
  constexpr std::uint64_t kInitialBalance = 1000;
  auto commands = make_bank_workload(kCommands, /*write_pct=*/40, kAccounts,
                                     /*seed=*/4242 + param.workers);
  for (std::size_t i = 0; i < kCommands; ++i) commands[i].id = i + 1;

  BankService reference(kAccounts, kInitialBalance);
  for (const Command& c : commands) reference.execute(c);

  BankService service(kAccounts, kInitialBalance);
  ParallelInsertCos cos(kWindow, keyset_rw_conflict, param.shards,
                        param.inserters);
  std::thread scheduler([&] {
    for (std::size_t i = 0; i < kCommands; i += kBatch) {
      const std::size_t take = std::min(kBatch, kCommands - i);
      if (!cos.insert_batch({commands.data() + i, take})) return;
    }
  });
  std::atomic<std::uint64_t> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < param.workers; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos.get();
        if (!h) return;
        service.execute(*h.cmd);
        done.fetch_add(1);
        cos.remove(h);
      }
    });
  }
  scheduler.join();
  while (done.load() < kCommands) std::this_thread::yield();
  cos.close();
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(service.total_balance(), kAccounts * kInitialBalance);
  EXPECT_EQ(service.state_digest(), reference.state_digest());
  EXPECT_EQ(cos.approx_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelInsertStressTest,
    ::testing::Values(StressParam{1, 4, 4}, StressParam{2, 8, 4},
                      StressParam{3, 8, 8}, StressParam{4, 16, 8},
                      StressParam{4, 16, 2}, StressParam{2, 2, 16}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.inserters) + "_s" +
             std::to_string(info.param.shards) + "_w" +
             std::to_string(info.param.workers);
    });

// Zipf-skewed KV traffic (hot keys concentrate in few shards) across
// inserter counts: digest must match the 1-inserter run of the same
// stream. This is the no-static-class-map workload the policy targets.
TEST(ParallelInsertStress, ZipfDigestsMatchAcrossInserterCounts) {
  constexpr std::size_t kCommands = 12000;
  constexpr std::size_t kWindow = 64;
  constexpr std::size_t kBatch = 32;
  KvService seed_service(/*shard_count=*/64);
  auto commands = make_kv_workload_zipf(seed_service, kCommands,
                                        /*write_pct=*/30.0,
                                        /*key_space=*/256, /*theta=*/0.99,
                                        /*seed=*/99);
  for (std::size_t i = 0; i < kCommands; ++i) commands[i].id = i + 1;

  std::uint64_t reference_digest = 0;
  for (const std::size_t inserters : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
    KvService service(/*shard_count=*/64);
    ParallelInsertCos cos(kWindow, keyset_rw_conflict, /*shards=*/8,
                          inserters);
    std::thread scheduler([&] {
      for (std::size_t i = 0; i < kCommands; i += kBatch) {
        const std::size_t take = std::min(kBatch, kCommands - i);
        if (!cos.insert_batch({commands.data() + i, take})) return;
      }
    });
    std::atomic<std::uint64_t> done{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 6; ++w) {
      workers.emplace_back([&] {
        while (true) {
          CosHandle h = cos.get();
          if (!h) return;
          service.execute(*h.cmd);
          done.fetch_add(1);
          cos.remove(h);
        }
      });
    }
    scheduler.join();
    while (done.load() < kCommands) std::this_thread::yield();
    cos.close();
    for (auto& worker : workers) worker.join();

    if (inserters == 1) {
      reference_digest = service.state_digest();
    } else {
      EXPECT_EQ(service.state_digest(), reference_digest)
          << "inserters=" << inserters;
    }
  }
}

// ---------------------------------------------------------------------------
// Part 3: factory/policy plumbing and shutdown edges.
// ---------------------------------------------------------------------------

TEST(ParallelInsertFactory, PolicyNameRoundTrips) {
  SchedulerPolicy policy = SchedulerPolicy::kCosDag;
  ASSERT_TRUE(parse_scheduler_policy("parallel-insert", &policy));
  EXPECT_EQ(policy, SchedulerPolicy::kParallelInsert);
  policy = SchedulerPolicy::kCosDag;
  ASSERT_TRUE(parse_scheduler_policy("pinsert", &policy));
  EXPECT_EQ(policy, SchedulerPolicy::kParallelInsert);
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kParallelInsert),
               "parallel-insert");
}

TEST(ParallelInsertFactory, BuildsShardedCosForKeyedRelations) {
  auto cos = make_parallel_insert_cos({.capacity = 32,
                                       .conflict = keyset_rw_conflict,
                                       .insert_shards = 8,
                                       .inserter_threads = 2});
  ASSERT_NE(cos, nullptr);
  EXPECT_STREQ(cos->name(), "parallel-insert");
  auto* pins = dynamic_cast<ParallelInsertCos*>(cos.get());
  ASSERT_NE(pins, nullptr);
  EXPECT_EQ(pins->shard_count(), 8u);
  EXPECT_EQ(pins->inserter_thread_count(), 2u);
  EXPECT_EQ(pins->capacity(), 32u);
}

TEST(ParallelInsertFactory, AutoShardCountScalesWithInserters) {
  auto cos = make_parallel_insert_cos({.capacity = 32,
                                       .conflict = keyset_rw_conflict,
                                       .inserter_threads = 4});
  auto* pins = dynamic_cast<ParallelInsertCos*>(cos.get());
  ASSERT_NE(pins, nullptr);
  EXPECT_EQ(pins->shard_count(), 16u);  // 4x inserters, already a power of 2
}

TEST(ParallelInsertFactory, OpaqueRelationFallsBackToSerialDag) {
  // rw_conflict has no key extractor: no key space to shard.
  auto cos = make_parallel_insert_cos(
      {.kind = CosKind::kLockFree, .capacity = 32, .conflict = rw_conflict});
  ASSERT_NE(cos, nullptr);
  EXPECT_STREQ(cos->name(), "lock-free");
  // Still a working COS.
  Command c;
  c.id = 1;
  c.mode = AccessMode::kWrite;
  ASSERT_TRUE(cos->insert(c));
  CosHandle h = cos->get();
  ASSERT_TRUE(h);
  EXPECT_EQ(h.cmd->id, 1u);
  cos->remove(h);
  cos->close();
}

TEST(ParallelInsertFactory, IndexedOffFallsBackToSerialDag) {
  auto cos = make_parallel_insert_cos({.kind = CosKind::kCoarseGrained,
                                       .capacity = 32,
                                       .conflict = keyset_rw_conflict,
                                       .indexed = false});
  ASSERT_NE(cos, nullptr);
  EXPECT_STREQ(cos->name(), "coarse-grained");
}

TEST(ParallelInsertShutdown, CloseUnblocksFullWindowInsert) {
  ParallelInsertCos cos(/*capacity=*/4, keyset_rw_conflict, /*shards=*/4,
                        /*inserter_threads=*/2);
  Xoshiro256 rng(5);
  std::vector<Command> fill(4);
  for (std::uint64_t i = 0; i < fill.size(); ++i) {
    fill[i] = random_cmd(i + 1, rng, 8);
  }
  ASSERT_TRUE(cos.insert_batch(fill));

  std::atomic<bool> insert_returned{false};
  std::thread blocked([&] {
    Command c;
    c.id = 99;
    c.mode = AccessMode::kWrite;
    c.nkeys = 1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[0] = 1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    EXPECT_FALSE(cos.insert(c));  // window full -> parks -> close unblocks
    insert_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(insert_returned.load());
  cos.close();
  blocked.join();
  EXPECT_TRUE(insert_returned.load());
  EXPECT_FALSE(cos.get());  // closed
}

TEST(ParallelInsertShutdown, CloseUnblocksIdleWorkers) {
  ParallelInsertCos cos(/*capacity=*/8, keyset_rw_conflict, /*shards=*/4,
                        /*inserter_threads=*/2);
  std::vector<std::thread> workers;
  std::atomic<int> woke{0};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      EXPECT_FALSE(cos.get());
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cos.close();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(ParallelInsertBatch, BatchLargerThanWindowIsChunked) {
  constexpr std::size_t kWindow = 8;
  constexpr std::size_t kCommands = 64;
  ParallelInsertCos cos(kWindow, keyset_rw_conflict, /*shards=*/4,
                        /*inserter_threads=*/2);
  std::vector<Command> batch(kCommands);
  for (std::uint64_t i = 0; i < kCommands; ++i) {
    Command& c = batch[i];
    c.id = i + 1;
    c.mode = AccessMode::kWrite;
    c.nkeys = 1;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
    c.keys[0] = i % 4;  // NOLINT(psmr-sorted-keys) test builder constructs raw commands directly
  }
  // A consumer must drain concurrently or a > window batch cannot finish.
  std::thread consumer([&] {
    for (std::size_t i = 0; i < kCommands; ++i) {
      CosHandle h = cos.get();
      ASSERT_TRUE(h);
      // Same-key writes are delivery-ordered.
      cos.remove(h);
    }
  });
  EXPECT_TRUE(cos.insert_batch(batch));
  consumer.join();
  EXPECT_EQ(cos.approx_size(), 0u);
  cos.close();
}

}  // namespace
}  // namespace psmr
