// Atomic-broadcast property tests: validity, uniform agreement, uniform
// integrity, uniform total order (§2 of the paper), batching behaviour, and
// leader-failure recovery via view change.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "broadcast/sequenced_broadcast.h"
#include "net/sim_network.h"

namespace psmr {
namespace {

Command cmd(std::uint64_t tag) {
  Command c;
  c.arg = tag;
  return c;
}

// Harness: n broadcast engines over a simulated network, each recording its
// delivery sequence.
class BroadcastHarness {
 public:
  explicit BroadcastHarness(int n, SimNetwork::Config net_config = {},
                            SequencedBroadcast::Config config = {}) {
    net_ = std::make_unique<SimNetwork>(net_config);
    deliveries_.resize(static_cast<std::size_t>(n));
    mus_ = std::vector<std::mutex>(static_cast<std::size_t>(n));
    std::vector<NodeId> endpoints;
    for (int i = 0; i < n; ++i) {
      const int index = i;
      endpoints.push_back(net_->add_endpoint(
          [this, index](NodeId from, MessagePtr m) {
            if (engines_ready_.load()) {
              engines_[static_cast<std::size_t>(index)]->handle(from, m);
            }
          }));
    }
    for (int i = 0; i < n; ++i) {
      const int index = i;
      engines_.push_back(std::make_unique<SequencedBroadcast>(
          *net_, endpoints[static_cast<std::size_t>(i)], i, endpoints, config,
          [this, index](std::uint64_t seq, const std::vector<Command>& batch) {
            std::lock_guard lock(mus_[static_cast<std::size_t>(index)]);
            for (const Command& c : batch) {
              deliveries_[static_cast<std::size_t>(index)].push_back(
                  {seq, c.arg});
            }
          }));
    }
    endpoints_ = endpoints;
    engines_ready_.store(true);
    for (auto& engine : engines_) engine->start();
  }

  ~BroadcastHarness() {
    net_->shutdown();
    for (auto& engine : engines_) engine->stop();
  }

  SequencedBroadcast& engine(int i) {
    return *engines_[static_cast<std::size_t>(i)];
  }
  NodeId engine_endpoint(int i) const {
    return endpoints_[static_cast<std::size_t>(i)];
  }
  SimNetwork& net() { return *net_; }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> delivered(int i) {
    std::lock_guard lock(mus_[static_cast<std::size_t>(i)]);
    return deliveries_[static_cast<std::size_t>(i)];
  }

  // Waits until replica i delivered at least `count` commands.
  bool wait_delivered(int i, std::size_t count, int timeout_ms = 5000) {
    for (int t = 0; t < timeout_ms / 5; ++t) {
      if (delivered(i).size() >= count) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  int size() const { return static_cast<int>(engines_.size()); }

 private:
  std::unique_ptr<SimNetwork> net_;
  std::vector<NodeId> endpoints_;
  std::vector<std::unique_ptr<SequencedBroadcast>> engines_;
  std::atomic<bool> engines_ready_{false};
  std::vector<std::mutex> mus_;  // NOLINT(psmr-raw-mutex) test harness; independent per-slot locks, no nesting
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      deliveries_;  // (slot seq, command tag)
};

SimNetwork::Config fast_net() {
  SimNetwork::Config config;
  config.base_latency_us = 30;
  config.jitter_us = 20;
  return config;
}

SequencedBroadcast::Config fast_broadcast() {
  SequencedBroadcast::Config config;
  config.batch_timeout_us = 200;
  config.heartbeat_interval_ms = 5;
  // Generous relative to the heartbeat so a loaded 1-core CI host does not
  // trigger spurious view changes mid-test.
  config.leader_timeout_ms = 250;
  config.tick_interval_ms = 1;
  return config;
}

TEST(Broadcast, LeaderOfViewZeroIsReplicaZero) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  EXPECT_TRUE(h.engine(0).is_leader());
  EXPECT_FALSE(h.engine(1).is_leader());
  EXPECT_FALSE(h.engine(2).is_leader());
}

TEST(Broadcast, ValidityEveryoneDeliversSubmitted) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  EXPECT_TRUE(h.engine(0).submit({cmd(1), cmd(2), cmd(3)}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.wait_delivered(i, 3)) << "replica " << i;
  }
}

TEST(Broadcast, NonLeaderSubmitIsRejected) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  EXPECT_FALSE(h.engine(1).submit({cmd(1)}));
  EXPECT_FALSE(h.engine(2).submit({cmd(1)}));
}

TEST(Broadcast, UniformTotalOrderAcrossReplicas) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  constexpr int kCommands = 500;
  for (int i = 0; i < kCommands; ++i) {
    EXPECT_TRUE(h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))}));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.wait_delivered(i, kCommands)) << "replica " << i;
  }
  const auto reference = h.delivered(0);
  for (int i = 1; i < 3; ++i) {
    const auto other = h.delivered(i);
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(other[k], reference[k]) << "divergence at position " << k;
    }
  }
}

TEST(Broadcast, IntegrityNoDuplicateDeliveries) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  constexpr int kCommands = 300;
  for (int i = 0; i < kCommands; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  ASSERT_TRUE(h.wait_delivered(0, kCommands));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 3; ++i) {
    const auto delivered = h.delivered(i);
    std::map<std::uint64_t, int> seen;
    for (const auto& [seq, tag] : delivered) seen[tag]++;
    for (const auto& [tag, count] : seen) {
      EXPECT_EQ(count, 1) << "tag " << tag << " at replica " << i;
    }
  }
}

TEST(Broadcast, BatchingGroupsCommands) {
  auto config = fast_broadcast();
  config.batch_max = 10;
  BroadcastHarness h(3, fast_net(), config);
  std::vector<Command> burst;
  for (int i = 0; i < 25; ++i) burst.push_back(cmd(static_cast<std::uint64_t>(i)));
  h.engine(0).submit(burst);
  ASSERT_TRUE(h.wait_delivered(1, 25));
  // 25 commands with batch_max 10 -> slots of size <= 10; the slot seq of
  // the first and last commands must differ (at least 3 slots).
  const auto delivered = h.delivered(1);
  EXPECT_GE(delivered.back().first - delivered.front().first + 1, 3u);
}

TEST(Broadcast, SingleReplicaCommitsAlone) {
  BroadcastHarness h(1, fast_net(), fast_broadcast());
  EXPECT_TRUE(h.engine(0).submit({cmd(7)}));
  ASSERT_TRUE(h.wait_delivered(0, 1));
  EXPECT_EQ(h.delivered(0)[0].second, 7u);
}

TEST(Broadcast, FiveReplicasToleratesTwoSilent) {
  // n = 5, f = 2: majority = 3, so commits proceed with two replicas cut
  // off from the leader.
  BroadcastHarness h(5, fast_net(), fast_broadcast());
  h.net().set_link(0, 3, false);
  h.net().set_link(0, 4, false);
  for (int i = 0; i < 50; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  for (int i : {0, 1, 2}) {
    ASSERT_TRUE(h.wait_delivered(i, 50)) << "replica " << i;
  }
}

TEST(Broadcast, ViewChangeElectsNextLeaderAfterCrash) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  // Commit some traffic under leader 0.
  for (int i = 0; i < 20; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  ASSERT_TRUE(h.wait_delivered(2, 20));

  h.net().crash(0);
  // Followers detect the silence and elect replica 1 (view 1).
  bool leader_elected = false;
  for (int t = 0; t < 1000; ++t) {
    if (h.engine(1).is_leader()) {
      leader_elected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(leader_elected);
  EXPECT_GE(h.engine(1).view(), 1u);

  // The new leader can order fresh commands and the survivors deliver them.
  for (int i = 100; i < 120; ++i) {
    EXPECT_TRUE(h.engine(1).submit({cmd(static_cast<std::uint64_t>(i))}));
  }
  ASSERT_TRUE(h.wait_delivered(1, 40));
  ASSERT_TRUE(h.wait_delivered(2, 40));

  // Survivors agree on the whole sequence.
  const auto d1 = h.delivered(1);
  const auto d2 = h.delivered(2);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t k = 0; k < d1.size(); ++k) EXPECT_EQ(d1[k], d2[k]);
}

TEST(Broadcast, CommittedEntriesSurviveViewChange) {
  // Deliver under view 0, crash the leader, and verify nothing already
  // delivered is lost or reordered at the survivors.
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  for (int i = 0; i < 30; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  ASSERT_TRUE(h.wait_delivered(1, 30));
  const auto before = h.delivered(1);

  h.net().crash(0);
  for (int t = 0; t < 1000 && !h.engine(1).is_leader(); ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(h.engine(1).is_leader());

  const auto after = h.delivered(1);
  ASSERT_GE(after.size(), before.size());
  for (std::size_t k = 0; k < before.size(); ++k) {
    EXPECT_EQ(after[k], before[k]);
  }
}

TEST(Broadcast, InstallCheckpointAdvancesWatermarkAndPrunes) {
  BroadcastHarness h(3, fast_net(), fast_broadcast());
  for (int i = 0; i < 10; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  ASSERT_TRUE(h.wait_delivered(1, 10));
  const std::uint64_t delivered = h.engine(1).last_delivered();
  // Install a far-future checkpoint: the watermark jumps, and slots below
  // it will never be delivered again.
  h.engine(1).install_checkpoint(delivered + 500);
  EXPECT_EQ(h.engine(1).last_delivered(), delivered + 500);
  // Stale installs are no-ops.
  h.engine(1).install_checkpoint(delivered);
  EXPECT_EQ(h.engine(1).last_delivered(), delivered + 500);
}

TEST(Broadcast, GapHandlerFiresWhenPeerIsFarAhead) {
  auto config = fast_broadcast();
  config.retained_slots = 8;
  BroadcastHarness h(3, fast_net(), config);
  std::atomic<int> gap_count{0};
  std::atomic<std::uint64_t> reported_delivered{12345};
  h.engine(2).set_gap_handler(
      [&](NodeId /*peer*/, std::uint64_t our_delivered) {
        reported_delivered = our_delivered;
        gap_count.fetch_add(1);
      });
  // Forge a heartbeat showing the leader is 100 slots ahead.
  h.engine(2).handle(h.engine_endpoint(0),
                     make_message<HeartbeatMsg>(0, 100));
  EXPECT_EQ(gap_count.load(), 1);
  EXPECT_EQ(reported_delivered.load(), 0u);
  // Throttled: an immediate second report is suppressed.
  h.engine(2).handle(h.engine_endpoint(0),
                     make_message<HeartbeatMsg>(0, 101));
  EXPECT_EQ(gap_count.load(), 1);
  // Within the retention window: no report even after the throttle window.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  h.engine(2).handle(h.engine_endpoint(0), make_message<HeartbeatMsg>(0, 5));
  EXPECT_EQ(gap_count.load(), 1);
}

TEST(Broadcast, CascadedViewChangeSkipsDeadLeaders) {
  // Crash replicas 0 and 1 in a 5-replica group: view must advance past
  // view 1 (whose leader is also dead) to view 2.
  BroadcastHarness h(5, fast_net(), fast_broadcast());
  for (int i = 0; i < 10; ++i) {
    h.engine(0).submit({cmd(static_cast<std::uint64_t>(i))});
  }
  ASSERT_TRUE(h.wait_delivered(4, 10));
  h.net().crash(0);
  h.net().crash(1);
  bool elected = false;
  for (int t = 0; t < 2000; ++t) {
    if (h.engine(2).is_leader()) {
      elected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(elected);
  EXPECT_GE(h.engine(2).view(), 2u);
  EXPECT_TRUE(h.engine(2).submit({cmd(999)}));
  ASSERT_TRUE(h.wait_delivered(3, 11));
}

}  // namespace
}  // namespace psmr
