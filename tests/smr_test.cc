// End-to-end SMR integration tests: full deployments (simulated network +
// sequenced broadcast + replicas + closed-loop clients) for all scheduler
// kinds and the sequential baseline, checking liveness, replica
// convergence, at-most-once execution, the bank-conservation invariant, and
// leader-crash recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "smr/deployment.h"
#include "workload/generator.h"

namespace psmr {
namespace {

SimNetwork::Config fast_net() {
  SimNetwork::Config config;
  config.base_latency_us = 30;
  config.jitter_us = 20;
  return config;
}

SequencedBroadcast::Config fast_broadcast() {
  SequencedBroadcast::Config config;
  config.batch_timeout_us = 200;
  config.heartbeat_interval_ms = 5;
  config.leader_timeout_ms = 250;
  config.tick_interval_ms = 1;
  return config;
}

Deployment::Config make_config(SchedulerPolicy policy, CosKind kind,
                               int workers) {
  Deployment::Config config;
  config.replicas = 3;
  config.net = fast_net();
  config.replica.policy = policy;
  config.replica.cos.kind = kind;
  config.replica.workers = workers;
  config.replica.broadcast = fast_broadcast();
  return config;
}

// Waits until every running replica executed at least `count` commands.
bool wait_executed(Deployment& deployment, std::uint64_t count,
                   int timeout_ms = 10000) {
  for (int t = 0; t < timeout_ms / 5; ++t) {
    bool all = true;
    for (int i = 0; i < deployment.replica_count(); ++i) {
      if (deployment.net().crashed(deployment.replica(i).endpoint())) continue;
      if (deployment.replica(i).executed_count() < count) all = false;
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

struct SmrParam {
  SchedulerPolicy policy;
  CosKind kind;
  int workers;
};

std::string smr_param_name(const ::testing::TestParamInfo<SmrParam>& info) {
  if (info.param.policy == SchedulerPolicy::kSequential) return "Sequential";
  std::string name;
  switch (info.param.kind) {
    case CosKind::kCoarseGrained:
      name = "CoarseGrained";
      break;
    case CosKind::kFineGrained:
      name = "FineGrained";
      break;
    case CosKind::kLockFree:
      name = "LockFree";
      break;
    case CosKind::kStriped:
      name = "Striped";
      break;
  }
  if (info.param.policy == SchedulerPolicy::kEarlyScheduling) {
    name = "Early" + name;
  } else if (info.param.policy == SchedulerPolicy::kParallelInsert) {
    name = "ParallelInsert" + name;
  }
  return name + "_w" + std::to_string(info.param.workers);
}

class SmrEndToEndTest : public ::testing::TestWithParam<SmrParam> {};

TEST_P(SmrEndToEndTest, ClientsCompleteAndReplicasConverge) {
  const SmrParam param = GetParam();
  static constexpr std::size_t kListSize = 200;
  Deployment deployment(
      make_config(param.policy, param.kind, param.workers),
      [] { return std::make_unique<LinkedListService>(kListSize); });

  // 4 clients, mixed workload with writes so convergence is meaningful.
  std::vector<std::unique_ptr<Xoshiro256>> rngs;
  for (int c = 0; c < 4; ++c) {
    auto rng = std::make_unique<Xoshiro256>(100 + static_cast<unsigned>(c));
    Xoshiro256* r = rng.get();
    rngs.push_back(std::move(rng));
    SmrClient::Config client_config;
    client_config.pipeline = 4;
    deployment.add_client(client_config, [r] {
      const std::uint64_t v = r->below(kListSize);
      return r->uniform() < 0.2 ? LinkedListService::make_add(v)
                                : LinkedListService::make_contains(v);
    });
  }

  deployment.start();
  // Let the system run until clients completed a solid batch of commands.
  for (int t = 0; t < 2000 && deployment.total_client_completed() < 800; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t completed = deployment.total_client_completed();
  EXPECT_GE(completed, 800u) << "system did not make progress";

  // Quiesce: stop clients, let every replica finish executing everything
  // that was ordered, then compare state digests.
  for (SmrClient* client : deployment.clients()) client->drain(3000);
  ASSERT_TRUE(wait_executed(deployment,
                            deployment.replica(0).executed_count()));
  // Give stragglers a moment to drain their last batch.
  for (int t = 0; t < 600; ++t) {
    if (deployment.states_converged()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(deployment.states_converged());
  deployment.stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SmrEndToEndTest,
    ::testing::Values(
        SmrParam{SchedulerPolicy::kSequential, CosKind::kLockFree, 0},
        SmrParam{SchedulerPolicy::kCosDag, CosKind::kCoarseGrained, 4},
        SmrParam{SchedulerPolicy::kCosDag, CosKind::kFineGrained, 4},
        SmrParam{SchedulerPolicy::kCosDag, CosKind::kLockFree, 4},
        SmrParam{SchedulerPolicy::kCosDag, CosKind::kLockFree, 8},
        SmrParam{SchedulerPolicy::kEarlyScheduling, CosKind::kLockFree, 2},
        SmrParam{SchedulerPolicy::kEarlyScheduling, CosKind::kLockFree, 4},
        // The list relation is opaque, so parallel-insert resolves to the
        // serial-DAG fallback here; this covers the replica policy plumbing.
        // The keyed sharded path runs in SmrBank below.
        SmrParam{SchedulerPolicy::kParallelInsert, CosKind::kLockFree, 4}),
    smr_param_name);

// The deprecated `sequential` flag must keep forcing the sequential policy
// over whatever `policy` says (pre-policy callers set only the bool).
TEST(SmrConfig, DeprecatedSequentialAliasWins) {
  Replica::Config config;
  config.sequential = true;
  config.policy = SchedulerPolicy::kCosDag;
  EXPECT_EQ(config.effective_policy(), SchedulerPolicy::kSequential);
  config.sequential = false;
  EXPECT_EQ(config.effective_policy(), SchedulerPolicy::kCosDag);
  config.policy = SchedulerPolicy::kEarlyScheduling;
  EXPECT_EQ(config.effective_policy(), SchedulerPolicy::kEarlyScheduling);
}

// Runs under both the DAG and early-scheduling policies: the transfer mix
// includes cross-class transfers (accounts in different classes), which
// exercise the early scheduler's barrier path end to end.
void run_bank_conservation(SchedulerPolicy policy) {
  static constexpr std::size_t kAccounts = 32;
  static constexpr std::uint64_t kInitial = 1000;
  Deployment deployment(
      make_config(policy, CosKind::kLockFree, 4), [] {
        return std::make_unique<BankService>(kAccounts, kInitial);
      });
  Xoshiro256 rng(7);
  SmrClient::Config client_config;
  client_config.pipeline = 8;
  deployment.add_client(client_config, [&rng] {
    const std::uint64_t from = rng.below(kAccounts);
    std::uint64_t to = rng.below(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    if (rng.uniform() < 0.7) {
      return BankService::make_transfer(from, to, rng.below(50));
    }
    return BankService::make_balance(from);
  });

  deployment.start();
  for (int t = 0; t < 2000 && deployment.total_client_completed() < 500; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(deployment.total_client_completed(), 500u);
  for (SmrClient* client : deployment.clients()) client->drain(3000);

  for (int t = 0; t < 600 && !deployment.states_converged(); ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(deployment.states_converged());
  // Stop (joining every replica thread) before reading service state
  // directly, so the reads cannot race with a straggling execution.
  deployment.stop();
  for (int i = 0; i < deployment.replica_count(); ++i) {
    const auto& bank =
        static_cast<const BankService&>(deployment.replica(i).service());
    EXPECT_EQ(bank.total_balance(), kAccounts * kInitial)
        << "money not conserved at replica " << i;
  }
}

TEST(SmrBank, TransfersConserveMoneyAcrossReplicas) {
  run_bank_conservation(SchedulerPolicy::kCosDag);
}

TEST(SmrBank, TransfersConserveMoneyUnderEarlyScheduling) {
  run_bank_conservation(SchedulerPolicy::kEarlyScheduling);
}

// The bank relation is per-key-decomposable, so this runs the sharded
// parallel-insert pipeline (pooled inserter threads) end to end.
TEST(SmrBank, TransfersConserveMoneyUnderParallelInsert) {
  run_bank_conservation(SchedulerPolicy::kParallelInsert);
}

TEST(SmrKv, PerKeyConflictsStillLinearizePerKey) {
  Deployment deployment(make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 4),
                        [] { return std::make_unique<KvService>(); });
  // Single client writing an increasing counter to one key; the replicas
  // must all end with the final value.
  KvService builder;  // only for command construction
  std::atomic<std::uint64_t> next{0};
  SmrClient::Config client_config;
  client_config.pipeline = 1;  // strictly ordered per client
  deployment.add_client(client_config, [&] {
    const std::uint64_t v = next.fetch_add(1);
    return builder.make_put(42, v);
  });
  deployment.start();
  for (int t = 0; t < 2000 && deployment.total_client_completed() < 200; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), 200u);
  for (SmrClient* client : deployment.clients()) client->drain(3000);
  for (int t = 0; t < 600 && !deployment.states_converged(); ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(deployment.states_converged());
  // Stop (joining every replica thread) before touching the service
  // directly, so the probe get() cannot race with a straggling execution.
  deployment.stop();
  const auto& kv =
      static_cast<const KvService&>(deployment.replica(0).service());
  const Response r =
      const_cast<KvService&>(kv).execute(builder.make_get(42));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, deployment.total_client_completed() - 1)
      << "lost or reordered update on key 42";
}

TEST(SmrFaultTolerance, ServiceSurvivesLeaderCrash) {
  static constexpr std::size_t kListSize = 100;
  Deployment deployment(
      make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 4),
      [] { return std::make_unique<LinkedListService>(kListSize); });
  Xoshiro256 rng(3);
  SmrClient::Config client_config;
  client_config.pipeline = 2;
  client_config.resend_timeout_ms = 400;
  deployment.add_client(client_config, [&rng] {
    const std::uint64_t v = rng.below(kListSize);
    return rng.uniform() < 0.2 ? LinkedListService::make_add(v)
                               : LinkedListService::make_contains(v);
  });
  deployment.start();

  for (int t = 0; t < 2000 && deployment.total_client_completed() < 100; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), 100u);

  // Crash the leader (replica 0 in view 0).
  deployment.replica(0).crash();

  // The client stalls until the view change, then progresses again.
  const std::uint64_t before = deployment.total_client_completed();
  bool progressed = false;
  for (int t = 0; t < 4000; ++t) {
    if (deployment.total_client_completed() >= before + 100) {
      progressed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(progressed) << "no progress after leader crash";

  for (SmrClient* client : deployment.clients()) client->drain(3000);
  for (int t = 0; t < 600 && !deployment.states_converged(); ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(deployment.states_converged());  // survivors agree
  deployment.stop();
}

TEST(SmrStateTransfer, PartitionedReplicaCatchesUpViaCheckpoint) {
  // Partition replica 2 away from everyone, push the system far beyond the
  // broadcast log retention, heal the partition, and verify replica 2
  // catches up through a checkpoint (state transfer), converging to the
  // same state.
  static constexpr std::size_t kListSize = 100;
  Deployment::Config config = make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 2);
  config.replica.broadcast.retained_slots = 16;  // small window for the test
  config.replica.broadcast.batch_max = 4;        // many slots
  config.replica.broadcast.leader_timeout_ms = 100000;  // replica 2 must not
                                                        // trigger view changes
  Deployment deployment(
      config, [] { return std::make_unique<LinkedListService>(0); });
  std::atomic<std::uint64_t> next{1};
  SmrClient::Config client_config;
  client_config.pipeline = 4;
  deployment.add_client(client_config, [&] {
    return LinkedListService::make_add(next.fetch_add(1) % kListSize);
  });
  deployment.start();

  // Cut replica 2 off.
  const NodeId lagging = deployment.replica(2).endpoint();
  deployment.net().set_link(deployment.replica(0).endpoint(), lagging, false);
  deployment.net().set_link(deployment.replica(1).endpoint(), lagging, false);

  // Run well past the retention window (16 slots * batch 4 = 64 commands).
  for (int t = 0; t < 4000 && deployment.total_client_completed() < 600; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), 600u);
  EXPECT_LT(deployment.replica(2).executed_count(), 100u);

  // Heal and wait for catch-up.
  deployment.net().set_link(deployment.replica(0).endpoint(), lagging, true);
  deployment.net().set_link(deployment.replica(1).endpoint(), lagging, true);

  bool transferred = false;
  for (int t = 0; t < 2000; ++t) {
    if (deployment.replica(2).state_transfers() > 0) {
      transferred = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(transferred) << "no state transfer happened";

  for (SmrClient* client : deployment.clients()) client->drain(3000);
  bool converged = false;
  for (int t = 0; t < 1000 && !converged; ++t) {
    converged = deployment.states_converged();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(converged) << "lagging replica did not converge after "
                            "state transfer";
  deployment.stop();
}

TEST(SmrClientTeardown, DestroyWithRepliesInFlightIsSafe) {
  // Regression test for a teardown race: destroying a client while replies
  // are still in flight used to leave its transport handler registered, so
  // a reply delivered mid-destruction ran handle_message on a dying object
  // (use-after-free, caught by ASan/TSan pre-fix). The destructor now
  // deregisters the endpoint first; the transport guarantees no handler is
  // running or will run once remove_endpoint returns.
  //
  // The network is deliberately slow: with a multi-ms one-way latency,
  // replies to the 8 pipelined commands keep arriving for milliseconds
  // after the destructor returns, so a still-registered handler would run
  // on freed memory.
  Deployment::Config config = make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 4);
  config.net.base_latency_us = 3000;
  config.net.jitter_us = 2000;
  Deployment deployment(config,
                        [] { return std::make_unique<KvService>(); });
  deployment.start();

  KvService builder;
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::uint64_t> next{0};
    SmrClient::Config client_config;
    client_config.pipeline = 8;          // keep many replies in flight
    client_config.tick_interval_ms = 1;  // dtor joins the timer quickly
    std::vector<NodeId> replicas;
    for (int i = 0; i < deployment.replica_count(); ++i) {
      replicas.push_back(deployment.replica(i).endpoint());
    }
    auto client = std::make_unique<SmrClient>(
        deployment.net(), replicas, client_config,
        [&] { return builder.make_put(next.fetch_add(1) % 32, 1); });
    client->start();
    // Destroy mid-traffic — no stop(), no drain(): with 3 replicas each
    // answering 8 pipelined commands there are always replies in flight.
    for (int t = 0; t < 1000 && client->completed() < 20; ++t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(client->completed(), 20u);
    client.reset();
  }
  deployment.stop();
}

TEST(SmrClientTeardown, DestructorDoesNotWaitOutTimerTick) {
  // Regression test for shutdown latency: the timer thread used to sleep
  // for a full tick_interval_ms between resend scans, so the destructor
  // blocked on join() for up to one tick. It now waits on a condition
  // variable the destructor signals.
  Deployment deployment(make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 2),
                        [] { return std::make_unique<KvService>(); });
  deployment.start();

  KvService builder;
  std::atomic<std::uint64_t> next{0};
  SmrClient::Config client_config;
  client_config.pipeline = 2;
  client_config.tick_interval_ms = 3000;  // pre-fix: dtor stalls ~3 s
  std::vector<NodeId> replicas;
  for (int i = 0; i < deployment.replica_count(); ++i) {
    replicas.push_back(deployment.replica(i).endpoint());
  }
  auto client = std::make_unique<SmrClient>(
      deployment.net(), replicas, client_config,
      [&] { return builder.make_put(next.fetch_add(1) % 32, 1); });
  client->start();
  for (int t = 0; t < 1000 && client->completed() < 5; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(client->completed(), 5u);

  const std::uint64_t start_ns = now_ns();
  client.reset();
  const std::uint64_t elapsed_ms = (now_ns() - start_ns) / 1'000'000ull;
  EXPECT_LT(elapsed_ms, 1000u)
      << "client destructor waited out the timer tick";
  deployment.stop();
}

TEST(SmrDedup, RetransmissionsExecuteAtMostOnce) {
  // A pipeline-1 client with an aggressive resend timer: even when requests
  // are retransmitted (and re-answered from the reply cache), each add must
  // execute exactly once — otherwise the list size would drift.
  static constexpr std::size_t kListSize = 16;
  Deployment deployment(
      make_config(SchedulerPolicy::kCosDag, CosKind::kLockFree, 2),
      [] { return std::make_unique<LinkedListService>(0); });
  std::atomic<std::uint64_t> next{0};
  SmrClient::Config client_config;
  client_config.pipeline = 1;
  client_config.resend_timeout_ms = 1;  // pathological: resend every tick
  client_config.tick_interval_ms = 1;
  deployment.add_client(client_config, [&] {
    return LinkedListService::make_add(next.fetch_add(1));
  });
  deployment.start();
  for (int t = 0; t < 2000 && deployment.total_client_completed() < kListSize;
       ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), kListSize);
  for (SmrClient* client : deployment.clients()) client->drain(3000);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const std::uint64_t issued = next.load();
  // Stop (joining every replica thread) before reading service state
  // directly, so the reads cannot race with a straggling retransmission.
  deployment.stop();
  for (int i = 0; i < deployment.replica_count(); ++i) {
    const auto& list = static_cast<const LinkedListService&>(
        deployment.replica(i).service());
    // Every add was of a distinct value: size == number of distinct adds
    // executed. With at-most-once this is <= issued and >= completed.
    EXPECT_LE(list.size(), issued);
    EXPECT_EQ(list.size(), deployment.replica(i).executed_count())
        << "duplicate execution at replica " << i;
  }
}

}  // namespace
}  // namespace psmr
