// Codec tests: primitive round trips, varint edge values, command/message
// round trips for every protocol message, service snapshot/restore round
// trips, and robustness of every decoder against truncated and random
// input.
#include <algorithm>
#include <array>

#include <gtest/gtest.h>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "codec/codec.h"
#include "codec/command_codec.h"
#include "common/rng.h"
#include "net/wire.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(Codec, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, VarintEdgeValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32) - 1,
        1ull << 32, ~0ull}) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Codec, VarintCompactness) {
  ByteWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Codec, BytesAndStringsRoundTrip) {
  ByteWriter w;
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.put_string("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.ok());
}

TEST(Codec, ReaderFailsSafelyOnTruncation) {
  ByteWriter w;
  w.put_u64(1234567);
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    ByteReader r(std::span(w.bytes().data(), cut));
    r.get_u64();
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(Codec, ReaderRejectsOversizedLengthPrefix) {
  ByteWriter w;
  w.put_varint(1 << 20);  // claims 1 MiB follows
  w.put_u8(0);
  ByteReader r(w.bytes());
  r.get_bytes();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, RandomBytesNeverCrashReader) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    ByteReader r(junk);
    r.get_varint();
    r.get_bytes();
    r.get_u32();
    r.get_string();  // must not crash; ok() may be false
  }
}

// ---------------------------------------------------------------------------
// Command / message codecs
// ---------------------------------------------------------------------------

Command sample_command() {
  Command c = BankService::make_transfer(7, 9, 55);
  c.id = 1234;
  c.client = 42;
  c.client_seq = 777;
  return c;
}

void expect_commands_equal(const Command& a, const Command& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.client_seq, b.client_seq);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.nkeys, b.nkeys);
  for (std::uint8_t i = 0; i < a.nkeys; ++i) EXPECT_EQ(a.keys[i], b.keys[i]);
  EXPECT_EQ(a.arg, b.arg);
}

TEST(CommandCodec, RoundTrip) {
  const Command original = sample_command();
  ByteWriter w;
  encode_command(original, w);
  ByteReader r(w.bytes());
  Command decoded;
  ASSERT_TRUE(decode_command(r, &decoded));
  expect_commands_equal(original, decoded);
}

TEST(CommandCodec, BatchRoundTrip) {
  std::vector<Command> batch;
  for (int i = 0; i < 10; ++i) {
    Command c = i % 2 ? LinkedListService::make_add(i)
                      : LinkedListService::make_contains(i);
    c.id = static_cast<std::uint64_t>(i);
    batch.push_back(c);
  }
  ByteWriter w;
  encode_commands(batch, w);
  ByteReader r(w.bytes());
  std::vector<Command> decoded;
  ASSERT_TRUE(decode_commands(r, &decoded));
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_commands_equal(batch[i], decoded[i]);
  }
}

TEST(CommandCodec, RejectsInvalidMode) {
  ByteWriter w;
  encode_command(sample_command(), w);
  std::vector<std::uint8_t> bytes = w.take();
  // Byte layout: id(2B varint) client(1) client_seq(2) op(2) mode(1)...
  // Corrupt the mode byte to 7.
  bytes[7] = 7;
  ByteReader r(bytes);
  Command c;
  EXPECT_FALSE(decode_command(r, &c));
}

TEST(MessageCodec, AllMessageTypesRoundTrip) {
  std::vector<Command> batch{sample_command()};
  std::vector<LogEntrySummary> log{{5, 2, batch}, {6, 2, {}}};
  const std::vector<MessagePtr> originals = {
      make_message<RequestMsg>(batch),
      make_message<ReplyMsg>(9, 100, true),
      make_message<AcceptMsg>(3, 17, batch),
      make_message<AcceptedMsg>(3, 17),
      make_message<CommitMsg>(3, 17),
      make_message<HeartbeatMsg>(4, 21),
      make_message<ViewChangeMsg>(5, log, 4),
      make_message<NewViewMsg>(5, log),
      make_message<StateRequestMsg>(33),
      make_message<StateResponseMsg>(44, 5,
                                     std::vector<std::uint8_t>{9, 8, 7}),
  };
  for (const MessagePtr& original : originals) {
    ByteWriter w;
    encode_message(*original, w);
    MessagePtr decoded = decode_message(w.bytes());
    ASSERT_TRUE(decoded) << "type " << original->type;
    EXPECT_EQ(decoded->type, original->type);
  }
  // Spot-check payload fidelity on the interesting ones.
  {
    ByteWriter w;
    encode_message(*originals[2], w);
    const MessagePtr decoded = decode_message(w.bytes());
    const auto& accept = message_as<AcceptMsg>(decoded);
    EXPECT_EQ(accept.view, 3u);
    EXPECT_EQ(accept.seq, 17u);
    ASSERT_EQ(accept.batch.size(), 1u);
    expect_commands_equal(accept.batch[0], batch[0]);
  }
  {
    ByteWriter w;
    encode_message(*originals[6], w);
    const MessagePtr decoded = decode_message(w.bytes());
    const auto& vc = message_as<ViewChangeMsg>(decoded);
    EXPECT_EQ(vc.new_view, 5u);
    EXPECT_EQ(vc.last_delivered, 4u);
    ASSERT_EQ(vc.accepted_log.size(), 2u);
    EXPECT_EQ(vc.accepted_log[0].seq, 5u);
    EXPECT_EQ(vc.accepted_log[1].batch.size(), 0u);
  }
  {
    ByteWriter w;
    encode_message(*originals[9], w);
    const MessagePtr decoded = decode_message(w.bytes());
    const auto& sr = message_as<StateResponseMsg>(decoded);
    EXPECT_EQ(sr.checkpoint_seq, 44u);
    EXPECT_EQ(sr.snapshot, (std::vector<std::uint8_t>{9, 8, 7}));
  }
}

TEST(MessageCodec, UnknownTypeTagRejected) {
  std::vector<std::uint8_t> bytes{99, 0, 0};
  EXPECT_EQ(decode_message(bytes), nullptr);
}

TEST(MessageCodec, TruncatedAndRandomInputRejectedSafely) {
  ByteWriter w;
  encode_message(*make_message<AcceptMsg>(
                     1, 2, std::vector<Command>{sample_command()}),
                 w);
  const auto& bytes = w.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    decode_message(std::span(bytes.data(), cut));  // must not crash
  }
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(48) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    decode_message(junk);  // must not crash
  }
}

// ---------------------------------------------------------------------------
// Service snapshots
// ---------------------------------------------------------------------------

TEST(Snapshot, LinkedListRoundTrip) {
  LinkedListService a(100);
  a.execute(LinkedListService::make_add(5000));
  a.execute(LinkedListService::make_add(2));  // duplicate, no-op

  LinkedListService b(3);  // different initial state
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.size(), a.size());
  EXPECT_TRUE(b.execute(LinkedListService::make_contains(5000)).ok);
}

TEST(Snapshot, EmptyLinkedList) {
  LinkedListService a(0);
  LinkedListService b(10);
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.size(), 0u);
}

TEST(Snapshot, KvRoundTrip) {
  KvService a(8);
  for (std::uint64_t k = 0; k < 200; ++k) {
    a.execute(a.make_put(k, k * 3));
  }
  KvService b(8);
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.execute(b.make_get(7)).value, 21u);
}

TEST(Snapshot, BankRoundTrip) {
  BankService a(16, 500);
  a.execute(BankService::make_transfer(0, 1, 123));
  BankService b(2, 0);
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.total_balance(), a.total_balance());
  EXPECT_EQ(b.balance(1), 623u);
}

TEST(Snapshot, RestoreRejectsGarbage) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(32));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng());
    LinkedListService list(10);
    KvService kv;
    BankService bank(4, 1);
    // Must never crash; may succeed only for coincidentally valid input.
    list.restore(junk);
    kv.restore(junk);
    bank.restore(junk);
  }
}

// ---------------------------------------------------------------------------
// Golden bytes
//
// The exact on-wire byte sequences are pinned here. If any of these tests
// fails, the wire format changed: old and new binaries can no longer talk,
// and kWireVersion must be bumped. They also catch any regression to
// host-endian struct memcpy — the expectations below are little-endian
// byte-by-byte layouts and would differ on a big-endian host encoder.
// ---------------------------------------------------------------------------

TEST(GoldenBytes, FixedWidthIntegersAreLittleEndian) {
  ByteWriter w;
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  const std::vector<std::uint8_t> expected = {
      0xEF, 0xBE,                                      // u16
      0xEF, 0xBE, 0xAD, 0xDE,                          // u32
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,  // u64
  };
  EXPECT_EQ(w.bytes(), expected);
}

TEST(GoldenBytes, CommandEncoding) {
  Command c;
  c.id = 1;
  c.client = 2;
  c.client_seq = 3;
  c.op = 0x1234;
  c.mode = AccessMode::kWrite;
  c.nkeys = 2;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.keys[0] = 5;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.keys[1] = 300;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.arg = 128;
  ByteWriter w;
  encode_command(c, w);
  const std::vector<std::uint8_t> expected = {
      0x01, 0x02, 0x03,  // id, client, client_seq (varints)
      0x34, 0x12,        // op, u16 LE
      0x01,              // mode = kWrite
      0x22,              // packed keys: nkeys = 2, total encoded = 2
      0x05, 0xAC, 0x02,  // keys 5 and 300 (LEB128)
      0x80, 0x01,        // arg = 128 (LEB128)
  };
  EXPECT_EQ(w.bytes(), expected);
}

TEST(GoldenBytes, CommandEncodingCarriesPayloadKeys) {
  // KV-style command: one conflict key (the shard) plus a payload key slot
  // (the user key) that is not conflict-checked but must survive the wire.
  Command c;
  c.id = 1;
  c.op = 7;
  c.mode = AccessMode::kWrite;
  c.nkeys = 1;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.keys[0] = 4;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.keys[1] = 300;  // NOLINT(psmr-sorted-keys) hand-built command for byte-exact golden encoding
  c.arg = 9;
  ByteWriter w;
  encode_command(c, w);
  const std::vector<std::uint8_t> expected = {
      0x01, 0x00, 0x00,  // id, client, client_seq
      0x07, 0x00,        // op
      0x01,              // mode = kWrite
      0x21,              // packed keys: nkeys = 1, total encoded = 2
      0x04, 0xAC, 0x02,  // shard 4, payload key 300
      0x09,              // arg
  };
  EXPECT_EQ(w.bytes(), expected);

  ByteReader r(w.bytes());
  Command decoded;
  ASSERT_TRUE(decode_command(r, &decoded));
  EXPECT_EQ(decoded.keys[1], 300u);  // payload slot round-trips
}

TEST(CommandCodec, DecodeSortsConflictKeys) {
  // Decoders re-establish the sorted-keys invariant instead of trusting the
  // peer. Hand-craft an encoding with unsorted conflict keys.
  ByteWriter w;
  w.put_varint(1);  // id
  w.put_varint(0);  // client
  w.put_varint(0);  // client_seq
  w.put_u16(3);     // op
  w.put_u8(1);      // mode = kWrite
  w.put_u8(static_cast<std::uint8_t>(2 | (2 << 4)));  // nkeys=2, total=2
  w.put_varint(9);  // keys out of order
  w.put_varint(7);
  w.put_varint(0);  // arg
  ByteReader r(w.bytes());
  Command decoded;
  ASSERT_TRUE(decode_command(r, &decoded));
  EXPECT_EQ(decoded.keys[0], 7u);
  EXPECT_EQ(decoded.keys[1], 9u);
}

TEST(CommandCodec, AdversarialUnsortedKeysetsRoundTripSorted) {
  // Randomized version of the above, through the full encode/decode round
  // trip: a peer that violates the sorted-keys Command invariant (built here
  // by writing the fields directly, bypassing the sanctioned builders) must
  // come out of decode with the invariant re-established — same key
  // multiset, sorted ascending, payload slots untouched.
  Xoshiro256 rng(0xC0DEC0DEu);
  for (int trial = 0; trial < 500; ++trial) {
    Command c;
    c.id = trial;
    c.op = static_cast<std::uint16_t>(rng.below(1 << 16));
    c.mode = rng.below(2) == 0 ? AccessMode::kRead : AccessMode::kWrite;
    const std::uint8_t nkeys = static_cast<std::uint8_t>(rng.below(5));
    // Adversarial on purpose: unsorted conflict keys, never via a builder.
    c.nkeys = nkeys;  // NOLINT(psmr-sorted-keys) fuzz feeds unsorted keys on purpose
    for (std::size_t i = 0; i < c.keys.size(); ++i) {
      c.keys[i] = rng.below(64);  // NOLINT(psmr-sorted-keys) fuzz feeds unsorted keys on purpose
    }
    c.arg = rng();

    ByteWriter w;
    encode_command(c, w);
    ByteReader r(w.bytes());
    Command decoded;
    ASSERT_TRUE(decode_command(r, &decoded));

    ASSERT_EQ(decoded.nkeys, nkeys);
    std::array<std::uint64_t, 4> want = c.keys;
    std::sort(want.begin(), want.begin() + nkeys);
    for (std::uint8_t i = 0; i < nkeys; ++i) {
      EXPECT_EQ(decoded.keys[i], want[i]) << "trial " << trial;
    }
    for (std::size_t i = nkeys; i < c.keys.size(); ++i) {
      EXPECT_EQ(decoded.keys[i], c.keys[i])
          << "payload slot clobbered, trial " << trial;
    }
    debug_assert_sorted_keys(decoded);
    EXPECT_EQ(decoded.arg, c.arg);
    EXPECT_EQ(decoded.op, c.op);
    EXPECT_EQ(decoded.mode, c.mode);
  }
}

TEST(GoldenBytes, ReplyMessageEncoding) {
  ByteWriter w;
  encode_message(ReplyMsg(1, 300, true), w);
  const std::vector<std::uint8_t> expected = {
      0x02,        // type tag kReply
      0x01,        // client_seq
      0xAC, 0x02,  // value = 300
      0x01,        // ok
  };
  EXPECT_EQ(w.bytes(), expected);
}

TEST(GoldenBytes, TcpHelloLayout) {
  const std::vector<std::uint8_t> hello = wire::encode_hello(7);
  const std::vector<std::uint8_t> expected = {
      0x50, 0x53, 0x4D, 0x52,  // magic "PSMR"
      0x02, 0x00,              // wire version 2 (packed command key byte)
      0x07, 0x00, 0x00, 0x00,  // node id
  };
  EXPECT_EQ(hello, expected);

  wire::Hello parsed;
  ASSERT_TRUE(wire::decode_hello(hello.data(), &parsed));
  EXPECT_EQ(parsed.node_id, 7u);

  std::vector<std::uint8_t> bad = hello;
  bad[0] ^= 0xFF;  // corrupt magic
  EXPECT_FALSE(wire::decode_hello(bad.data(), &parsed));
  bad = hello;
  bad[4] = 0x03;  // future wire version
  EXPECT_FALSE(wire::decode_hello(bad.data(), &parsed));
}

}  // namespace
}  // namespace psmr
