// Unit tests for the unified metrics layer (common/metrics.h) plus
// end-to-end checks that a running deployment actually moves the counters
// every layer registers. Every assertion on metric values is gated on
// kMetricsEnabled so this binary also compiles and passes in a
// PSMR_METRICS=OFF build, where the same tests prove the no-op contract
// (all reads are zero, snapshots are empty).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_service.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "smr/deployment.h"

namespace psmr {
namespace {

TEST(MetricsCounter, SumsIncrementsAcrossManyThreads) {
  Counter& counter =
      MetricsRegistry::global().counter("test.counter.threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  if constexpr (kMetricsEnabled) {
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
  } else {
    EXPECT_EQ(counter.value(), 0u);
  }
}

TEST(MetricsCounter, DeltaIncrements) {
  Counter& counter = MetricsRegistry::global().counter("test.counter.delta");
  counter.inc(5);
  counter.inc(37);
  EXPECT_EQ(counter.value(), kMetricsEnabled ? 42u : 0u);
}

TEST(MetricsGauge, TracksAddSubSet) {
  Gauge& gauge = MetricsRegistry::global().gauge("test.gauge");
  gauge.set(10);
  gauge.add(5);
  gauge.sub(7);
  EXPECT_EQ(gauge.value(), kMetricsEnabled ? 8 : 0);
}

TEST(MetricsRegistryTest, SameNameYieldsSameMetric) {
  Counter& a = MetricsRegistry::global().counter("test.registry.same");
  Counter& b = MetricsRegistry::global().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), kMetricsEnabled ? 1u : 0u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &done] {
      for (int i = 0; i < 50; ++i) {
        const std::string name =
            "test.registry.race." + std::to_string(i % 10);
        MetricsRegistry::global().counter(name).inc();
        MetricsRegistry::global().gauge(name + ".g").add(t);
      }
      done.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(done.load(), 8);
  if constexpr (kMetricsEnabled) {
    // 8 threads x 5 hits per distinct name.
    EXPECT_EQ(MetricsRegistry::global().snapshot().counter(
                  "test.registry.race.0"),
              40u);
  }
}

TEST(MetricsSnapshotTest, ReflectsRegisteredValues) {
  MetricsRegistry::global().counter("test.snap.counter").inc(123);
  MetricsRegistry::global().gauge("test.snap.gauge").set(-4);
  HistogramMetric& hist =
      MetricsRegistry::global().histogram("test.snap.hist");
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  if constexpr (kMetricsEnabled) {
    EXPECT_EQ(snap.counter("test.snap.counter"), 123u);
    EXPECT_EQ(snap.gauge("test.snap.gauge"), -4);
    ASSERT_TRUE(snap.histograms.contains("test.snap.hist"));
    const MetricsSnapshot::HistStats& stats =
        snap.histograms.at("test.snap.hist");
    EXPECT_EQ(stats.count, 100u);
    EXPECT_GT(stats.mean, 0.0);
    EXPECT_GE(stats.max, stats.p50);
  } else {
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.counter("test.snap.counter"), 0u);
    EXPECT_EQ(snap.gauge("test.snap.gauge"), 0);
  }
}

TEST(MetricsSnapshotTest, JsonAndPrometheusRenderRegisteredNames) {
  MetricsRegistry::global().counter("test.render.counter").inc(7);
  MetricsRegistry::global().gauge("test.render.gauge").set(3);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();

  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  const std::string prom = snap.to_prometheus();
  if constexpr (kMetricsEnabled) {
    EXPECT_NE(json.find("\"test.render.counter\":"), std::string::npos);
    EXPECT_NE(json.find("\"test.render.gauge\":"), std::string::npos);
    // Prometheus names are psmr_-prefixed with dots flattened.
    EXPECT_NE(prom.find("psmr_test_render_counter 7"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE psmr_test_render_counter counter"),
              std::string::npos);
  } else {
    EXPECT_EQ(json, "{}");
    EXPECT_TRUE(prom.empty());
  }
}

// In the OFF build the metric types must carry no state: inc/add/record all
// compile to nothing (the header additionally static_asserts sizeof == 1).
TEST(MetricsOffContract, DisabledBuildReadsZero) {
  if constexpr (kMetricsEnabled) {
    GTEST_SKIP() << "metrics are compiled in";
  } else {
    Counter& counter = MetricsRegistry::global().counter("test.off");
    counter.inc(1000);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_TRUE(MetricsRegistry::global().snapshot().empty());
  }
}

// --------------------------------------------------------------------------
// End-to-end: a live deployment must move the per-layer counters. The
// registry is process-global and accumulates across tests, so everything is
// asserted on before/after snapshot deltas.
// --------------------------------------------------------------------------

std::uint64_t delta(const MetricsSnapshot& before,
                    const MetricsSnapshot& after, std::string_view name) {
  return after.counter(name) - before.counter(name);
}

Deployment::Config deployment_config() {
  Deployment::Config config;
  config.replicas = 3;
  config.net.base_latency_us = 30;
  config.net.jitter_us = 20;
  config.replica.cos.kind = CosKind::kLockFree;
  config.replica.workers = 4;
  config.replica.broadcast.batch_timeout_us = 200;
  config.replica.broadcast.heartbeat_interval_ms = 5;
  config.replica.broadcast.leader_timeout_ms = 250;
  config.replica.broadcast.tick_interval_ms = 1;
  return config;
}

TEST(MetricsEndToEnd, DeploymentMovesEveryLayersCounters) {
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();

  Deployment deployment(deployment_config(),
                        [] { return std::make_unique<KvService>(); });
  KvService builder;
  Xoshiro256 rng(11);
  SmrClient::Config client_config;
  client_config.pipeline = 4;
  deployment.add_client(client_config, [&] {
    const std::uint64_t key = rng.below(64);
    return rng.uniform() < 0.5 ? builder.make_put(key, rng.below(1000))
                               : builder.make_get(key);
  });
  deployment.start();
  for (int t = 0; t < 2000 && deployment.total_client_completed() < 200; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), 200u);
  for (SmrClient* client : deployment.clients()) client->drain(3000);
  deployment.stop();

  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  if constexpr (!kMetricsEnabled) {
    EXPECT_TRUE(after.empty());
    return;
  }
  // COS: every ordered command is inserted, fetched by a worker, removed.
  EXPECT_GT(delta(before, after, "cos.inserts"), 0u);
  EXPECT_GT(delta(before, after, "cos.gets"), 0u);
  EXPECT_GT(delta(before, after, "cos.removes"), 0u);
  EXPECT_GT(delta(before, after, "cos.ready_enq"), 0u);
  // Conservation: nothing fetched that was never inserted, and the window
  // drained on shutdown (inserts == removes across the quiesced run).
  EXPECT_GE(delta(before, after, "cos.inserts"),
            delta(before, after, "cos.gets"));
  // Scheduler and broadcast moved batches.
  EXPECT_GT(delta(before, after, "scheduler.batches"), 0u);
  EXPECT_GT(delta(before, after, "scheduler.batch_commands"), 0u);
  EXPECT_GT(delta(before, after, "broadcast.proposals"), 0u);
  EXPECT_GT(delta(before, after, "broadcast.delivered_commands"), 0u);
  // Transport carried traffic; client issued and completed.
  EXPECT_GT(delta(before, after, "net.sim.delivered"), 0u);
  EXPECT_GT(delta(before, after, "client.issued"), 0u);
  EXPECT_GE(delta(before, after, "client.issued"),
            delta(before, after, "client.completed"));
  // Worker time attribution only accumulates when the scheduler path ran.
  EXPECT_GT(delta(before, after, "worker.exec_ns"), 0u);
}

TEST(MetricsEndToEnd, ResendAndDuplicateCountersMoveUnderMessageLoss) {
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();

  Deployment::Config config = deployment_config();
  config.net.drop_rate = 0.02;
  Deployment deployment(config,
                        [] { return std::make_unique<KvService>(); });
  KvService builder;
  std::atomic<std::uint64_t> next{0};
  SmrClient::Config client_config;
  client_config.pipeline = 4;
  client_config.resend_timeout_ms = 50;
  client_config.tick_interval_ms = 5;
  deployment.add_client(client_config, [&] {
    return builder.make_put(next.fetch_add(1) % 64, 1);
  });
  deployment.start();
  for (int t = 0; t < 4000 && deployment.total_client_completed() < 100; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(deployment.total_client_completed(), 100u);
  for (SmrClient* client : deployment.clients()) client->drain(5000);
  deployment.stop();

  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  if constexpr (!kMetricsEnabled) return;
  // At 2% loss over >= 100 commands, each sent to 3 replicas which each
  // reply, some request or reply is lost (P[no loss] < 1e-5), so the
  // resend timer fired; and with 3 replicas answering every request, later
  // replies find the command already completed.
  EXPECT_GT(delta(before, after, "client.resends"), 0u);
  EXPECT_GT(delta(before, after, "client.duplicate_replies"), 0u);
  EXPECT_GT(delta(before, after, "net.sim.dropped"), 0u);
  // The replica answered retransmissions from its reply cache.
  EXPECT_GT(delta(before, after, "scheduler.dedup_hits") +
                delta(before, after, "replica.reply_cache_hits"),
            0u);
}

}  // namespace
}  // namespace psmr
