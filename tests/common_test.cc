#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/semaphore.h"
#include "common/spsc_ring.h"

namespace psmr {
namespace {

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

TEST(Semaphore, InitialPermitsAreConsumable) {
  Semaphore sem(3);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(Semaphore, ReleaseAddsPermits) {
  Semaphore sem(0);
  EXPECT_FALSE(sem.try_acquire());
  sem.release(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(Semaphore, ReleaseZeroOrNegativeIsNoop) {
  Semaphore sem(0);
  sem.release(0);
  sem.release(-5);
  EXPECT_FALSE(sem.try_acquire());
  EXPECT_EQ(sem.available(), 0);
}

TEST(Semaphore, AcquireBlocksUntilRelease) {
  Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    EXPECT_TRUE(sem.acquire());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  sem.release();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Semaphore, CloseWakesBlockedAcquirers) {
  Semaphore sem(0);
  std::atomic<int> woken{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      EXPECT_FALSE(sem.acquire());
      woken.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sem.close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(woken.load(), 4);
}

TEST(Semaphore, CloseIsImmediateEvenWithPermits) {
  // Close is a shutdown signal, not a drain: COS implementations rely on
  // insert()/get() failing immediately after close() regardless of how many
  // space/ready permits are left.
  Semaphore sem(2);
  sem.close();
  EXPECT_FALSE(sem.acquire());
  EXPECT_FALSE(sem.try_acquire());
  EXPECT_TRUE(sem.closed());
}

TEST(Semaphore, ManyProducersManyConsumersConserved) {
  Semaphore sem(0);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) sem.release();
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (sem.acquire()) consumed.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  // All permits must eventually be consumable.
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  sem.close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

// ---------------------------------------------------------------------------
// BlockingQueue
// ---------------------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueue, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  t.join();
}

TEST(BlockingQueue, ConcurrentProducersConsumersLoseNothing) {
  BlockingQueue<int> q;
  constexpr int kProducers = 3;
  constexpr int kItems = 5000;
  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i) q.push(p * kItems + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  while (count.load() < kProducers * kItems) std::this_thread::yield();
  q.close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  const long long n = kProducers * kItems;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundedToPowerOfTwo) {
  SpscRing<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
}

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRing, ProducerConsumerTransfersInOrder) {
  SpscRing<int> ring(64);
  constexpr int kItems = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // Small values (< 64) are exact.
  EXPECT_EQ(h.percentile(50), 31u);
}

TEST(Histogram, PercentileWithinRelativePrecision) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.record(1'000'000);  // 1 ms
  const std::uint64_t p99 = h.percentile(99);
  EXPECT_NEAR(static_cast<double>(p99), 1e6, 1e6 * 0.02);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, PercentilesMonotone) {
  Histogram h;
  Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) h.record(rng.below(10'000'000));
  std::uint64_t last = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const std::uint64_t v = h.percentile(p);
    EXPECT_GE(v, last) << "p=" << p;
    last = v;
  }
}

// ---------------------------------------------------------------------------
// Xoshiro256
// ---------------------------------------------------------------------------

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, BelowRoughlyUniform) {
  Xoshiro256 rng(99);
  std::vector<int> buckets(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) buckets[rng.below(10)]++;
  for (int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 10 * 0.1);
  }
}

}  // namespace
}  // namespace psmr
