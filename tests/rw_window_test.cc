// Tests of the simulator's exact readers/writers window (sim/rw_window.h),
// including a differential test that uses it as an oracle for the real COS
// implementations: for randomized command streams executed single-threaded,
// every implementation must hand out exactly the command the reference
// model says is the oldest ready one.
#include <gtest/gtest.h>

#include "app/linked_list_service.h"
#include "common/rng.h"
#include "cos/factory.h"
#include "sim/rw_window.h"

namespace psmr::sim {
namespace {

RwWindow::Cmd read_cmd() { return {false, -1, 0}; }
RwWindow::Cmd write_cmd() { return {true, -1, 0}; }

TEST(RwWindow, ReadsAreImmediatelyReadyWithoutWrites) {
  RwWindow window;
  EXPECT_EQ(window.insert(read_cmd()), 1);
  EXPECT_EQ(window.insert(read_cmd()), 1);
  EXPECT_EQ(window.population(), 2u);
  EXPECT_EQ(window.pop_oldest_ready(), 0u);
  EXPECT_EQ(window.pop_oldest_ready(), 1u);
  EXPECT_FALSE(window.has_ready());
}

TEST(RwWindow, WriteReadyOnlyWhenOldest) {
  RwWindow window;
  window.insert(read_cmd());         // 0, ready
  EXPECT_EQ(window.insert(write_cmd()), 0);  // 1, blocked by read 0
  const std::size_t r = window.pop_oldest_ready();
  EXPECT_EQ(r, 0u);
  EXPECT_EQ(window.remove(r), 1);    // write becomes ready
  EXPECT_EQ(window.pop_oldest_ready(), 1u);
}

TEST(RwWindow, ReadsBehindWriteWait) {
  RwWindow window;
  window.insert(write_cmd());  // 0
  EXPECT_EQ(window.insert(read_cmd()), 0);  // 1
  EXPECT_EQ(window.insert(read_cmd()), 0);  // 2
  const std::size_t w = window.pop_oldest_ready();
  EXPECT_EQ(w, 0u);
  EXPECT_FALSE(window.has_ready());
  EXPECT_EQ(window.remove(w), 2);  // both reads freed at once
}

TEST(RwWindow, SecondWriteWaitsForFirst) {
  RwWindow window;
  window.insert(write_cmd());
  window.insert(write_cmd());
  const std::size_t first = window.pop_oldest_ready();
  EXPECT_FALSE(window.has_ready());
  EXPECT_EQ(window.remove(first), 1);
  EXPECT_EQ(window.pop_oldest_ready(), 1u);
}

TEST(RwWindow, RemoveFromMiddleKeepsIndicesStable) {
  RwWindow window;
  window.insert(read_cmd());  // 0
  window.insert(read_cmd());  // 1
  window.insert(read_cmd());  // 2
  const std::size_t a = window.pop_oldest_ready();
  const std::size_t b = window.pop_oldest_ready();
  const std::size_t c = window.pop_oldest_ready();
  window.remove(b);  // middle first
  window.remove(a);
  window.remove(c);
  EXPECT_EQ(window.population(), 0u);
  // Indices continue monotonically after the base shifted.
  EXPECT_EQ(window.insert(read_cmd()), 1);
  EXPECT_EQ(window.pop_oldest_ready(), 3u);
}

TEST(RwWindow, ReadsBetweenWritesStayBlocked) {
  RwWindow window;
  window.insert(write_cmd());  // 0
  window.insert(read_cmd());   // 1
  window.insert(write_cmd());  // 2
  window.insert(read_cmd());   // 3 — behind write 2
  const std::size_t w0 = window.pop_oldest_ready();
  EXPECT_EQ(window.remove(w0), 1);  // frees read 1 only (write 2 blocks 3)
  EXPECT_EQ(window.pop_oldest_ready(), 1u);
  EXPECT_FALSE(window.has_ready());  // write 2 still waits on read 1
  EXPECT_EQ(window.remove(1), 1);    // now write 2 is ready
  EXPECT_EQ(window.pop_oldest_ready(), 2u);
  EXPECT_EQ(window.remove(2), 1);    // read 3 freed
  EXPECT_EQ(window.pop_oldest_ready(), 3u);
}

TEST(RwWindow, PopulationAndWriteCountsTrack) {
  RwWindow window;
  window.insert(write_cmd());
  window.insert(read_cmd());
  EXPECT_EQ(window.population(), 2u);
  EXPECT_EQ(window.present_writes(), 1u);
  const std::size_t w = window.pop_oldest_ready();
  window.remove(w);
  EXPECT_EQ(window.population(), 1u);
  EXPECT_EQ(window.present_writes(), 0u);
}

// ---------------------------------------------------------------------------
// Differential oracle: real COS vs RwWindow, randomized single-threaded runs
// ---------------------------------------------------------------------------

class CosOracleTest : public ::testing::TestWithParam<psmr::CosKind> {};

TEST_P(CosOracleTest, HandoutOrderMatchesReferenceModel) {
  psmr::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    auto cos = psmr::make_cos(
        {.kind = GetParam(), .capacity = 32, .conflict = psmr::rw_conflict});
    RwWindow window;
    std::vector<std::size_t> outstanding_real;  // handles by insertion index
    std::vector<psmr::CosHandle> handles(4096);

    std::uint64_t next_id = 1;
    int in_structure = 0;
    std::vector<std::size_t> executing;  // indices currently handed out

    for (int step = 0; step < 2000; ++step) {
      const double dice = rng.uniform();
      if ((dice < 0.45 && in_structure < 30) || in_structure == 0) {
        // Insert.
        const bool is_write = rng.uniform() < 0.25;
        psmr::Command c =
            is_write ? psmr::LinkedListService::make_add(next_id)
                     : psmr::LinkedListService::make_contains(next_id);
        c.id = next_id;
        ASSERT_TRUE(cos->insert(c));
        window.insert({is_write, -1, 0});
        ++next_id;
        ++in_structure;
      } else if (dice < 0.75 && window.has_ready()) {
        // Get: the real COS must return exactly the model's oldest ready.
        const std::size_t expected_index = window.pop_oldest_ready();
        psmr::CosHandle h = cos->get();
        ASSERT_TRUE(h);
        ASSERT_EQ(h.cmd->id, expected_index + 1)
            << cos->name() << " handed out a different command";
        handles[expected_index] = h;
        executing.push_back(expected_index);
      } else if (!executing.empty()) {
        // Remove a random in-flight command.
        const std::size_t pick = rng.below(executing.size());
        const std::size_t index = executing[pick];
        executing.erase(executing.begin() + static_cast<long>(pick));
        cos->remove(handles[index]);
        window.remove(index);
        --in_structure;
      }
    }
    // Drain.
    while (window.has_ready()) {
      const std::size_t expected_index = window.pop_oldest_ready();
      psmr::CosHandle h = cos->get();
      ASSERT_TRUE(h);
      ASSERT_EQ(h.cmd->id, expected_index + 1);
      cos->remove(h);
      window.remove(expected_index);
      --in_structure;
    }
    for (std::size_t index : executing) {
      cos->remove(handles[index]);
      window.remove(index);
      --in_structure;
    }
    ASSERT_EQ(cos->approx_size(), static_cast<std::size_t>(in_structure));
  }
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, CosOracleTest,
                         ::testing::Values(psmr::CosKind::kCoarseGrained,
                                           psmr::CosKind::kFineGrained,
                                           psmr::CosKind::kLockFree,
                                           psmr::CosKind::kStriped),
                         [](const auto& info) {
                           switch (info.param) {
                             case psmr::CosKind::kCoarseGrained:
                               return "CoarseGrained";
                             case psmr::CosKind::kFineGrained:
                               return "FineGrained";
                             case psmr::CosKind::kLockFree:
                               return "LockFree";
                             case psmr::CosKind::kStriped:
                               return "Striped";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace psmr::sim
