// psmr-guarded-by-coverage: a class that owns a mutex must say, per field,
// what that mutex protects.
//
// When a record has a mutex-like member, every other data member is either
// atomic, itself a synchronization primitive, const, or annotated with
// GUARDED_BY/PT_GUARDED_BY. An unannotated plain field next to a mutex is
// how TSA coverage silently decays: the analysis passes vacuously because
// nothing ties the field to the lock. Fields protected by something other
// than a mutex (thread confinement, init-before-share) carry a NOLINT
// naming that discipline.
#ifndef PSMR_TOOLS_LINT_GUARDED_BY_COVERAGE_CHECK_H
#define PSMR_TOOLS_LINT_GUARDED_BY_COVERAGE_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class GuardedByCoverageCheck : public ClangTidyCheck {
 public:
  GuardedByCoverageCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions:
  //   .MutexTypes    — class names that count as "owning a lock".
  //   .SelfSyncTypes — member types that synchronize internally and need
  //                    no annotation (semaphores, queues, metrics...).
  std::vector<std::string> MutexTypes;
  std::vector<std::string> SelfSyncTypes;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_GUARDED_BY_COVERAGE_CHECK_H
