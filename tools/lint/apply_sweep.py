#!/usr/bin/env python3
"""One-shot sweep applying NOLINT justifications + guarded-by fixes for
psmr-tidy. Kept in-tree for archaeology; safe to re-run (idempotent)."""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
ALLOWLIST = ("common/metrics", "common/spsc_ring", "memory/ebr", "tools/lint")

# ---- psmr-relaxed-order-audit: classify every site, append a justification.
RULES = [
    (r"single_remover_", "debug-mode hint; set before sharing"),
    (r"debug_retirer_", "debug identity check; RMW atomicity suffices"),
    (r"high_water_", "stat high-water mark"),
    (r"delivered_|dropped_|completed|executed_|state_transfers_"
     r"|population_samples|population_sum|total_freed_", "stat counter"),
    (r"population_\.|queued_\.", "approximate occupancy gauge"),
    (r"dead_segments_|rmd_pending_",
     "sweep-trigger heuristic; threshold is approximate"),
    (r"stop\.|stop_\.|closed_\.|running_\.|crashed|endpoint_removed_",
     "control flag; re-checked in loop or fenced by joins/locks"),
    (r"next_consumer_", "round-robin assignment; any order acceptable"),
    (r"claimed\.fetch_add", "atomic ticket; RMW uniqueness is all that matters"),
    (r"counter\.fetch_add|counter\.load|c\.value\.load|total \+=|t \+=",
     "stat counter"),
    (r"dep_me|dep_on|bigger\[|arr\[|dependent",
     "remover-side edge maintenance; publication ordered by the insert CAS"),
    (r"head_\.load", "CAS loop re-validates; the success CAS orders"),
    (r"tail_\.load", "shortcut hint; re-validated under the node locks"),
]
OVERRIDES = {
    ("src/cos/early_sched.cc", 15): "monotonic id; uniqueness from RMW",
    ("src/cos/lock_free.cc", 10): "destructor; node unreachable by now",
}


def classify(path, lineno, line, prev):
    key = OVERRIDES.get((path, lineno))
    if key:
        return key
    for pat, reason in RULES:
        if re.search(pat, line):
            return reason
    for pat, reason in RULES:
        if re.search(pat, prev + line):
            return reason
    return None


def sweep_relaxed():
    unmatched = []
    for path in sorted(ROOT.glob("**/*.cc")) + sorted(ROOT.glob("**/*.h")):
        rel = path.relative_to(ROOT).as_posix()
        if not rel.startswith(("src/", "tests/", "bench/", "tools/")):
            continue
        if any(a in rel for a in ALLOWLIST):
            continue
        lines = path.read_text().splitlines(keepends=False)
        changed = False
        for i, line in enumerate(lines):
            if "memory_order_relaxed" not in line or "NOLINT" in line:
                continue
            reason = classify(rel, i + 1, line, lines[i - 1] if i else "")
            if reason is None:
                unmatched.append(f"{rel}:{i + 1}: {line.strip()}")
                continue
            lines[i] = f"{line}  // NOLINT(psmr-relaxed-order-audit) {reason}"
            changed = True
        if changed:
            path.write_text("\n".join(lines) + "\n")
    if unmatched:
        sys.exit("unclassified relaxed sites:\n" + "\n".join(unmatched))


# ---- Explicit NOLINT table: (file, line, must-contain, check, reason).
EXPLICIT = [
    ("src/common/metrics.h", 145, "std::mutex mu_;", "psmr-raw-mutex",
     "leaf lock below the rank hierarchy; metrics are callable under any lock"),
    ("src/common/metrics.h", 165, "std::mutex mu_;", "psmr-raw-mutex",
     "leaf lock below the rank hierarchy; metrics are callable under any lock"),
    ("src/net/tcp_transport.h", 207, "std::mutex dispatch_mu_;",
     "psmr-raw-mutex", "deliberately unranked; see the gate comment above"),
    ("tests/transport_conformance_test.cc", 147, "std::mutex mu;",
     "psmr-raw-mutex", "test-local inbox; lifetime confined to the fixture"),
    ("tests/broadcast_test.cc", 95, "std::vector<std::mutex> mus_;",
     "psmr-raw-mutex", "test harness; independent per-slot locks, no nesting"),
    ("src/net/tcp_transport.cc", 534, "epoll_wait(", "psmr-blocking-under-lock",
     "lock released across the wait (unlock/lock pair)"),
    ("src/net/tcp_transport.cc", 582, "epoll_wait(", "psmr-blocking-under-lock",
     "lock released across the wait (unlock/lock pair)"),
    # guarded-by-coverage: fields with a documented non-lock protocol.
    ("src/common/metrics.h", 146, "Histogram hist_;",
     "psmr-guarded-by-coverage", "all access through record(), under mu_"),
    ("src/common/metrics.h", 166, "counters_;", "psmr-guarded-by-coverage",
     "guarded by mu_; node stability lets callers hold refs lock-free"),
    ("src/common/metrics.h", 167, "gauges_;", "psmr-guarded-by-coverage",
     "guarded by mu_; node stability lets callers hold refs lock-free"),
    ("src/common/metrics.h", 169, "histograms_;", "psmr-guarded-by-coverage",
     "guarded by mu_; node stability lets callers hold refs lock-free"),
    ("src/common/semaphore.h", 108, "Counter* blocks_metric_",
     "psmr-guarded-by-coverage", "set once via instrument() before sharing"),
    ("src/common/semaphore.h", 109, "Counter* blocked_ns_metric_",
     "psmr-guarded-by-coverage", "set once via instrument() before sharing"),
    ("src/net/tcp_transport.h", 180, "Handler handler_;",
     "psmr-guarded-by-coverage", "set once in start(), const thereafter"),
    ("src/net/tcp_transport.h", 190, "int epoll_fd_",
     "psmr-guarded-by-coverage", "owned by the I/O thread after start()"),
    ("src/net/tcp_transport.h", 191, "int listen_fd_",
     "psmr-guarded-by-coverage", "owned by the I/O thread after start()"),
    ("src/net/tcp_transport.h", 192, "int wake_fd_",
     "psmr-guarded-by-coverage",
     "set in start(); benign shutdown race documented above"),
    ("src/smr/replica.h", 145, "std::unique_ptr<Service> service_;",
     "psmr-guarded-by-coverage", "set in ctor, before any thread starts"),
    ("src/smr/replica.h", 146, "NodeId endpoint_",
     "psmr-guarded-by-coverage", "written in connect() before threads start"),
    ("src/smr/replica.h", 152, "broadcast_owner_;",
     "psmr-guarded-by-coverage",
     "ownership only; access goes through the atomic broadcast_"),
    ("src/smr/replica.h", 156, "std::unique_ptr<Cos> cos_;",
     "psmr-guarded-by-coverage",
     "created in connect() before worker threads start"),
    ("src/smr/replica.h", 158, "workers_;", "psmr-guarded-by-coverage",
     "created/joined by the owner thread only"),
    ("src/smr/replica.h", 173, "scheduled_count_",
     "psmr-guarded-by-coverage", "scheduler thread only"),
    ("src/smr/replica.h", 176, "next_command_id_",
     "psmr-guarded-by-coverage", "scheduler thread only"),
    ("src/smr/replica.h", 177, "last_processed_seq_",
     "psmr-guarded-by-coverage", "scheduler thread only"),
    ("tests/transport_conformance_test.cc", 148, "by_sender;",
     "psmr-guarded-by-coverage", "guarded by mu (test-local)"),
    # sorted-keys: tests that build raw commands on purpose.
    ("tests/early_sched_test.cc", 48, "c.nkeys = nkeys;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/early_sched_test.cc", 49, "c.keys[0] = k0;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/early_sched_test.cc", 50, "c.keys[1] = k1;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/dep_tracker_test.cc", 199, "c.nkeys = nkeys;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/dep_tracker_test.cc", 200, "c.keys[0] = k0;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/dep_tracker_test.cc", 201, "c.keys[1] = k1;", "psmr-sorted-keys",
     "test builder constructs raw commands directly"),
    ("tests/codec_test.cc", 334, "c.nkeys = 2;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
    ("tests/codec_test.cc", 335, "c.keys[0] = 5;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
    ("tests/codec_test.cc", 336, "c.keys[1] = 300;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
    ("tests/codec_test.cc", 358, "c.nkeys = 1;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
    ("tests/codec_test.cc", 359, "c.keys[0] = 4;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
    ("tests/codec_test.cc", 360, "c.keys[1] = 300;", "psmr-sorted-keys",
     "hand-built command for byte-exact golden encoding"),
]

# ---- In-place replacements (guarded-by fix: reference-only metrics structs
# are immutable after construction — const removes the coverage obligation).
REPLACEMENTS = [
    ("src/net/sim_network.h", 150, "  Metrics metrics_;",
     "  const Metrics metrics_;"),
    ("src/net/tcp_transport.h", 212, "  Metrics metrics_;",
     "  const Metrics metrics_;"),
    ("src/smr/client.h", 105, "  Metrics metrics_;",
     "  const Metrics metrics_;"),
    ("src/smr/replica.h", 179, "  Metrics metrics_;",
     "  const Metrics metrics_;"),
    ("src/broadcast/sequenced_broadcast.h", 197, "  Metrics metrics_;",
     "  const Metrics metrics_;"),
    ("tests/codec_test.cc", 414, "// NOLINT(psmr-sorted-keys)",
     "// NOLINT(psmr-sorted-keys) fuzz feeds unsorted keys on purpose"),
    ("tests/codec_test.cc", 416, "// NOLINT(psmr-sorted-keys)",
     "// NOLINT(psmr-sorted-keys) fuzz feeds unsorted keys on purpose"),
]


def patch_line(rel, lineno, expect, mutate):
    path = ROOT / rel
    lines = path.read_text().splitlines(keepends=False)
    line = lines[lineno - 1]
    if expect not in line:
        sys.exit(f"{rel}:{lineno}: expected {expect!r}, found {line!r}")
    new = mutate(line)
    if new != line:
        lines[lineno - 1] = new
        path.write_text("\n".join(lines) + "\n")


def main():
    sweep_relaxed()
    for rel, lineno, expect, check, reason in EXPLICIT:
        patch_line(
            rel, lineno, expect,
            lambda l, c=check, r=reason:
                l if "NOLINT" in l else f"{l}  // NOLINT({c}) {r}")
    for rel, lineno, old, new in REPLACEMENTS:
        patch_line(
            rel, lineno, old,
            lambda l, o=old, n=new: l.replace(o, n) if n not in l else l)
    print("sweep applied")


if __name__ == "__main__":
    main()
