#include "RawMutexCheck.h"

#include <algorithm>

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/Type.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

bool isRawPrimitiveName(const std::string &QN) {
  static const char *kNames[] = {
      "std::mutex",          "std::recursive_mutex",
      "std::timed_mutex",    "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any"};
  return std::find(std::begin(kNames), std::end(kNames), QN) !=
         std::end(kNames);
}

// Returns the raw primitive record behind `T`, looking through arrays and
// one level of standard containers/smart pointers (std::vector<std::mutex>
// members are just as much a bypass as a bare member). Depth-limited so a
// pathological nesting cannot recurse unboundedly.
const CXXRecordDecl *primitiveBehind(ASTContext &Ctx, QualType T, int Depth) {
  if (T.isNull() || Depth > 2)
    return nullptr;
  while (const ArrayType *AT = Ctx.getAsArrayType(T))
    T = AT->getElementType();
  const CXXRecordDecl *RD = T.getNonReferenceType()->getAsCXXRecordDecl();
  if (RD == nullptr)
    return nullptr;
  const std::string QN = RD->getQualifiedNameAsString();
  if (isRawPrimitiveName(QN))
    return RD;
  if (QN == "std::vector" || QN == "std::array" || QN == "std::deque" ||
      QN == "std::list" || QN == "std::unique_ptr" ||
      QN == "std::shared_ptr" || QN == "std::optional") {
    if (const auto *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RD)) {
      const TemplateArgumentList &Args = Spec->getTemplateArgs();
      if (Args.size() > 0 && Args[0].getKind() == TemplateArgument::Type)
        return primitiveBehind(Ctx, Args[0].getAsType(), Depth + 1);
    }
  }
  return nullptr;
}

}  // namespace

RawMutexCheck::RawMutexCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFiles(
          splitList(Options.get("AllowedFiles", "common/ranked_mutex.h"))) {}

void RawMutexCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFiles", joinList(AllowedFiles));
}

void RawMutexCheck::registerMatchers(MatchFinder *Finder) {
  // Classification (including the look-through into containers) happens in
  // check(); matching every user-code field is cheap enough for a lint tier.
  Finder->addMatcher(
      fieldDecl(unless(isExpansionInSystemHeader())).bind("field"), this);
}

void RawMutexCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *FD = Result.Nodes.getNodeAs<FieldDecl>("field");
  if (FD == nullptr)
    return;
  const CXXRecordDecl *Prim =
      primitiveBehind(*Result.Context, FD->getType(), 0);
  if (Prim == nullptr)
    return;
  if (locationInFiles(*Result.SourceManager, FD->getBeginLoc(), AllowedFiles))
    return;
  diag(FD->getLocation(),
       "raw %0 member %1 — use RankedMutex/CondVar from "
       "common/ranked_mutex.h so the lock participates in rank checking and "
       "thread-safety analysis, or NOLINT with the reason this member must "
       "stay outside the hierarchy")
      << Prim->getQualifiedNameAsString() << FD->getName();
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
