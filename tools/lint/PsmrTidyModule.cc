// psmr-tidy: clang-tidy plugin module compiling PSMR's concurrency and
// determinism invariants into CI (DESIGN.md §8, "layer 4: domain lint").
//
// Loaded out-of-tree via `clang-tidy --load=libpsmr_tidy_module.so`, which
// keeps the full clang-tidy driver in charge: .clang-tidy configuration,
// CheckOptions, NOLINT/NOLINTNEXTLINE suppression and -warnings-as-errors
// all apply to these checks exactly as to the builtin ones.
#include "BlockingUnderLockCheck.h"
#include "GuardedByCoverageCheck.h"
#include "RawMutexCheck.h"
#include "ReclaimDisciplineCheck.h"
#include "RelaxedOrderAuditCheck.h"
#include "SortedKeysCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace psmr {

class PsmrTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<SortedKeysCheck>("psmr-sorted-keys");
    CheckFactories.registerCheck<RawMutexCheck>("psmr-raw-mutex");
    CheckFactories.registerCheck<ReclaimDisciplineCheck>(
        "psmr-reclaim-discipline");
    CheckFactories.registerCheck<RelaxedOrderAuditCheck>(
        "psmr-relaxed-order-audit");
    CheckFactories.registerCheck<BlockingUnderLockCheck>(
        "psmr-blocking-under-lock");
    CheckFactories.registerCheck<GuardedByCoverageCheck>(
        "psmr-guarded-by-coverage");
  }
};

}  // namespace psmr

// Register at dlopen time; the "psmr-module" name only has to be unique
// within the hosting clang-tidy process.
static ClangTidyModuleRegistry::Add<psmr::PsmrTidyModule> PsmrTidyModuleInit(
    "psmr-module", "Checks for PSMR concurrency/determinism invariants.");

}  // namespace tidy
}  // namespace clang
