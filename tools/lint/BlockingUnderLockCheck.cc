#include "BlockingUnderLockCheck.h"

#include <algorithm>
#include <string>

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/Stmt.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

// BlockingQueue::push is deliberately absent: the queue is unbounded, so
// push never blocks — it is called under the owner's lock by design in the
// sim network and both transports.
constexpr char kDefaultMethods[] =
    "psmr::Semaphore::acquire;psmr::BlockingQueue::pop";
constexpr char kDefaultFunctions[] =
    "connect;accept;poll;select;epoll_wait;recv;recvfrom;recvmsg;send;"
    "sendto;sendmsg;nanosleep;usleep;sleep;std::this_thread::sleep_for;"
    "std::this_thread::sleep_until";
constexpr char kDefaultGuards[] =
    "psmr::MutexLock;std::lock_guard;std::unique_lock;std::scoped_lock;"
    "std::shared_lock";
constexpr char kDefaultAllowed[] =
    "common/semaphore.h;common/blocking_queue.h;common/ranked_mutex.h";

bool contains(const std::vector<std::string> &Haystack,
              const std::string &Needle) {
  return std::find(Haystack.begin(), Haystack.end(), Needle) != Haystack.end();
}

// True when `T` is (a sugared spelling of) one of the guard classes.
bool isGuardType(QualType T, const std::vector<std::string> &GuardTypes) {
  if (T.isNull())
    return false;
  const CXXRecordDecl *RD = T.getNonReferenceType()->getAsCXXRecordDecl();
  // printQualifiedName on a template specialization yields the template
  // name without arguments ("std::lock_guard"), which is what the option
  // list spells.
  return RD != nullptr && contains(GuardTypes, RD->getQualifiedNameAsString());
}

// Is `Callee` a condition-variable wait? Those atomically release one lock,
// so one live guard is the monitor pattern, not a bug.
bool isCondVarWait(const FunctionDecl *Callee) {
  const auto *MD = dyn_cast<CXXMethodDecl>(Callee);
  if (MD == nullptr)
    return false;
  const StringRef Name = MD->getName();
  if (Name != "wait" && Name != "wait_for" && Name != "wait_until")
    return false;
  const std::string Cls = MD->getParent()->getQualifiedNameAsString();
  return Cls == "psmr::CondVar" || Cls == "std::condition_variable" ||
         Cls == "std::condition_variable_any";
}

// Counts guard objects declared lexically before `Call` in every enclosing
// block, walking the parent map up to the function boundary. Lambdas stop
// the walk (a lambda body's runtime locking context is its call site, not
// its lexical site).
unsigned countLiveGuards(ASTContext &Ctx, const Stmt *Call,
                         const std::vector<std::string> &GuardTypes) {
  unsigned Live = 0;
  const Stmt *Child = Call;
  while (true) {
    const auto &Parents = Ctx.getParents(*Child);
    if (Parents.empty())
      break;
    const Stmt *Parent = Parents[0].get<Stmt>();
    if (Parent == nullptr)
      break;  // reached the owning Decl (function / lambda operator())
    if (const auto *CS = dyn_cast<CompoundStmt>(Parent)) {
      for (const Stmt *Sub : CS->body()) {
        if (Sub == Child)
          break;  // only declarations preceding the call are live at it
        const auto *DS = dyn_cast<DeclStmt>(Sub);
        if (DS == nullptr)
          continue;
        for (const Decl *D : DS->decls()) {
          const auto *VD = dyn_cast<VarDecl>(D);
          if (VD != nullptr && isGuardType(VD->getType(), GuardTypes))
            ++Live;
        }
      }
    }
    Child = Parent;
  }
  return Live;
}

}  // namespace

BlockingUnderLockCheck::BlockingUnderLockCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      BlockingMethods(
          splitList(Options.get("BlockingMethods", kDefaultMethods))),
      BlockingFunctions(
          splitList(Options.get("BlockingFunctions", kDefaultFunctions))),
      GuardTypes(splitList(Options.get("GuardTypes", kDefaultGuards))),
      AllowedFiles(splitList(Options.get("AllowedFiles", kDefaultAllowed))) {}

void BlockingUnderLockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "BlockingMethods", joinList(BlockingMethods));
  Options.store(Opts, "BlockingFunctions", joinList(BlockingFunctions));
  Options.store(Opts, "GuardTypes", joinList(GuardTypes));
  Options.store(Opts, "AllowedFiles", joinList(AllowedFiles));
}

void BlockingUnderLockCheck::registerMatchers(MatchFinder *Finder) {
  // Classification happens in check(): the blocking sets are user options,
  // and hasAnyName cannot be built from a runtime list portably.
  Finder->addMatcher(callExpr(callee(functionDecl())).bind("call"), this);
}

void BlockingUnderLockCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr)
    return;
  const FunctionDecl *Callee = Call->getDirectCallee();
  if (Callee == nullptr)
    return;

  const std::string Qualified = Callee->getQualifiedNameAsString();
  const bool Method = isa<CXXMethodDecl>(Callee);
  bool Blocking = false;
  bool CvWait = false;
  if (Method && contains(BlockingMethods, Qualified)) {
    Blocking = true;
  } else if (!Method && contains(BlockingFunctions, Qualified)) {
    Blocking = true;
  } else if (isCondVarWait(Callee)) {
    CvWait = true;
  }
  if (!Blocking && !CvWait)
    return;

  const SourceLocation Loc = Call->getBeginLoc();
  if (Result.SourceManager->isInSystemHeader(
          Result.SourceManager->getExpansionLoc(Loc)))
    return;
  if (locationInFiles(*Result.SourceManager, Loc, AllowedFiles))
    return;

  const unsigned Guards =
      countLiveGuards(*Result.Context, Call, GuardTypes);
  // A CV wait releases exactly one lock; it only over-holds with >= 2.
  const unsigned Threshold = CvWait ? 2 : 1;
  if (Guards < Threshold)
    return;
  diag(Loc,
       "blocking call %0 with %1 scope lock(s) held — blocking under a "
       "mutex serializes its contenders and invites deadlock; release the "
       "lock first, or NOLINT with the invariant that bounds the wait")
      << Qualified << Guards;
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
