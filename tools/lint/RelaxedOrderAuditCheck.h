// psmr-relaxed-order-audit: flags explicit std::memory_order_relaxed
// outside a small audited allowlist.
//
// Relaxed atomics are correct only under a named invariant (pure statistic,
// single-writer counter, value re-validated under a stronger fence). The
// audited files — metrics, the EBR epoch machinery, SpscRing's cached
// indices — document those invariants in place; everywhere else a relaxed
// access needs a NOLINT naming the invariant, or a stronger order.
#ifndef PSMR_TOOLS_LINT_RELAXED_ORDER_AUDIT_CHECK_H
#define PSMR_TOOLS_LINT_RELAXED_ORDER_AUDIT_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class RelaxedOrderAuditCheck : public ClangTidyCheck {
 public:
  RelaxedOrderAuditCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions: psmr-relaxed-order-audit.AllowedFiles — files whose
  // relaxed accesses are audited as a set, in place.
  std::vector<std::string> AllowedFiles;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_RELAXED_ORDER_AUDIT_CHECK_H
