// Fixture for psmr-blocking-under-lock: must produce zero diagnostics.
namespace std {
class mutex {};
template <class M>
class lock_guard {
 public:
  explicit lock_guard(M &);
};
}  // namespace std

namespace psmr {
class Semaphore {
 public:
  void acquire();
  void release();
};
class CondVar {
 public:
  void wait();
};
}  // namespace psmr

extern "C" int recv(int, void *, unsigned long, int);

// Blocking with no lock held is the normal case.
void plain_wait(psmr::Semaphore &s) { s.acquire(); }

// Non-blocking work under a lock is fine.
void release_under_lock(std::mutex &m, psmr::Semaphore &s) {
  std::lock_guard<std::mutex> g(m);
  s.release();
}

// A guard in an inner block is dead by the time the call runs.
void lock_then_drop_then_block(std::mutex &m, int fd, char *buf) {
  {
    std::lock_guard<std::mutex> g(m);
  }
  recv(fd, buf, 16, 0);
}

// One guard + CV wait is the monitor pattern the CV releases atomically.
void monitor_wait(std::mutex &m, psmr::CondVar &cv) {
  std::lock_guard<std::mutex> g(m);
  cv.wait();
}
