// Fixture for psmr-guarded-by-coverage: must produce at least one
// diagnostic.
namespace std {
class mutex {};
template <class T>
class atomic {};
}  // namespace std

#define GUARDED_BY(m) __attribute__((guarded_by(m)))

namespace psmr {

// flagged: `backlog_` and `name_` sit next to a mutex with no annotation
// and no atomicity — nothing ties them to the lock.
class Dispatcher {
  std::mutex mu_;
  int inflight_ GUARDED_BY(mu_);
  int backlog_;
  const char *name_;
};

}  // namespace psmr
