// Fixture for psmr-blocking-under-lock: must produce at least one
// diagnostic. Stubs for the guard types and blocking primitives the check
// recognizes by qualified name.
namespace std {
class mutex {};
template <class M>
class lock_guard {
 public:
  explicit lock_guard(M &);
};
}  // namespace std

namespace psmr {
class Semaphore {
 public:
  void acquire();
  void release();
};
class CondVar {
 public:
  void wait();
};
}  // namespace psmr

extern "C" int recv(int, void *, unsigned long, int);

void semaphore_under_lock(std::mutex &m, psmr::Semaphore &s) {
  std::lock_guard<std::mutex> g(m);
  s.acquire();  // flagged: semaphore wait with a mutex held
}

void syscall_under_nested_lock(std::mutex &m, int fd, char *buf) {
  std::lock_guard<std::mutex> g(m);
  {
    recv(fd, buf, 16, 0);  // flagged: guard lives in an enclosing block
  }
}

void cv_wait_with_two_guards(std::mutex &a, std::mutex &b, psmr::CondVar &cv) {
  std::lock_guard<std::mutex> outer(a);
  std::lock_guard<std::mutex> inner(b);
  cv.wait();  // flagged: the wait releases one lock but still holds the other
}
