// Fixture for psmr-raw-mutex: must produce zero diagnostics.
namespace std {
class mutex {};
}  // namespace std

namespace psmr {

// The ranked wrapper (what real code should hold) is not a raw primitive.
template <int Rank>
class PlainRankedMutex {
  std::mutex mu_;  // NOLINT(psmr-raw-mutex) this IS the sanctioned wrapper
};

class Scheduler {
  PlainRankedMutex<100> mu_;
  int pending_ = 0;
};

// Locals and parameters are not members; only fields are policed.
void with_local() {
  std::mutex scratch;
  (void)scratch;
}

}  // namespace psmr
