// Fixture for psmr-sorted-keys: must produce zero diagnostics.
namespace psmr {
struct Command {
  unsigned long keys[4];
  unsigned nkeys;
  unsigned arg;
};
}  // namespace psmr

// Reads of the key set are always fine.
unsigned long first_key(const psmr::Command &c) {
  return c.nkeys > 0 ? c.keys[0] : 0;
}

// Writes to non-key fields are fine.
void set_arg(psmr::Command &c, unsigned v) { c.arg = v; }

// A `keys` member on an unrelated type is not psmr::Command's key set.
struct Keyring {
  unsigned long keys[4];
  unsigned nkeys;
};
void fill(Keyring &r) {
  r.keys[0] = 7;
  r.nkeys = 1;
}

// NOLINT plumbing must work through --load: a real violation, suppressed
// with a justification, counts as clean.
void resort_later(psmr::Command &c) {
  c.nkeys = 0;  // NOLINT(psmr-sorted-keys) builder-local; sorted before publish
}
