// Fixture for psmr-raw-mutex: must produce at least one diagnostic.
// Stub std synchronization primitives; the check matches by qualified name.
namespace std {
class mutex {};
class shared_mutex {};
class condition_variable {};
template <class T>
class vector {};
}  // namespace std

namespace psmr {

// flagged: raw primitives as members, outside common/ranked_mutex.h
class Registry {
  std::mutex mu_;
  std::condition_variable cv_;
  int entries_ = 0;
};

struct Cache {
  std::shared_mutex lock;
};

// flagged: arrays and standard containers of raw primitives are the same
// bypass as a bare member — the check looks through one wrapper level.
struct Pool {
  std::mutex banks[4];
  std::vector<std::mutex> slots;
};

}  // namespace psmr
