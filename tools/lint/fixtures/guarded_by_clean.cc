// Fixture for psmr-guarded-by-coverage: must produce zero diagnostics.
namespace std {
class mutex {};
template <class T>
class atomic {};
class condition_variable {};
}  // namespace std

#define GUARDED_BY(m) __attribute__((guarded_by(m)))

namespace psmr {

// Every non-lock field is annotated, atomic, const, or a sync primitive.
class Dispatcher {
  std::mutex mu_;
  int inflight_ GUARDED_BY(mu_);
  std::atomic<int> backlog_;
  std::condition_variable cv_;
  const int capacity_ = 64;
  // A justified escape hatch still counts as covered:
  void *owner_thread_;  // NOLINT(psmr-guarded-by-coverage) set once before sharing
};

// No mutex member -> no coverage obligation.
struct Plain {
  int a;
  int b;
};

}  // namespace psmr
