// Fixture for psmr-reclaim-discipline: must produce at least one
// diagnostic. Stub the COS node types the option list names by default.
namespace psmr {
class LockFreeCos {
 public:
  struct Node {
    unsigned long key;
    Node *next;
  };
};
class StripedCos {
 public:
  struct Segment {
    int used;
  };
};
}  // namespace psmr

// This file is not one of the owning COS implementations, so direct
// allocation and freeing of node types must be flagged.
psmr::LockFreeCos::Node *steal_a_node() {
  return new psmr::LockFreeCos::Node{0, nullptr};  // flagged
}

void drop_a_node(psmr::LockFreeCos::Node *n) {
  delete n;  // flagged: bypasses the EBR retire path
}

void churn_segment() {
  auto *s = new psmr::StripedCos::Segment{};  // flagged
  delete s;                                   // flagged
}
