// Fixture for psmr-reclaim-discipline: must produce zero diagnostics.
namespace psmr {
class LockFreeCos {
 public:
  struct Node {
    unsigned long key;
    Node *next;
  };
};
}  // namespace psmr

// Types outside the managed set allocate freely.
struct Widget {
  int x;
};
Widget *make_widget() { return new Widget{1}; }
void drop_widget(Widget *w) { delete w; }

// Holding or traversing node pointers without owning their lifetime is fine.
unsigned long sum_keys(const psmr::LockFreeCos::Node *head) {
  unsigned long total = 0;
  for (const auto *n = head; n != nullptr; n = n->next) total += n->key;
  return total;
}
