// Fixture for psmr-relaxed-order-audit: must produce zero diagnostics.
namespace std {
enum memory_order { memory_order_relaxed, memory_order_seq_cst };
}  // namespace std

// Stronger orderings pass without comment.
std::memory_order pick_order() { return std::memory_order_seq_cst; }

// A justified relaxed access is suppressed the standard way.
std::memory_order stat_order() {
  return std::memory_order_relaxed;  // NOLINT(psmr-relaxed-order-audit) stat counter, no ordering needed
}
