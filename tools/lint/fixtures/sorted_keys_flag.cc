// Fixture for psmr-sorted-keys: must produce at least one diagnostic.
// Self-contained stub mirroring the real psmr::Command field layout.
namespace psmr {
struct Command {
  unsigned long keys[4];
  unsigned nkeys;
  unsigned arg;
};
}  // namespace psmr

// This file is not on the SanctionedFiles list, so every key-set write
// below must be flagged.
psmr::Command make_bad(unsigned long a, unsigned long b) {
  psmr::Command c{};
  c.keys[0] = b;  // flagged: raw keys write outside a builder
  c.keys[1] = a;  // flagged: and in descending order, at that
  c.nkeys = 2;    // flagged: nkeys write outside a builder
  return c;
}

void grow(psmr::Command &c, unsigned long k) {
  c.keys[c.nkeys] = k;  // flagged
  ++c.nkeys;            // flagged: increment is a write too
}
