// Fixture for psmr-relaxed-order-audit: must produce at least one
// diagnostic. Stub the pre-C++20 enum spelling; the check also recognizes
// the C++20 inline-variable spelling by qualified name.
namespace std {
enum memory_order { memory_order_relaxed, memory_order_seq_cst };
}  // namespace std

// This file is not on the audited allowlist, so the bare relaxed reference
// must be flagged.
std::memory_order pick_order() {
  return std::memory_order_relaxed;  // flagged
}
