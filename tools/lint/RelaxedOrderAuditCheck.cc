#include "RelaxedOrderAuditCheck.h"

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

constexpr char kDefaultAllowed[] =
    "common/metrics.h;common/metrics.cc;common/spsc_ring.h;"
    "memory/ebr.h;memory/ebr.cc";

}  // namespace

RelaxedOrderAuditCheck::RelaxedOrderAuditCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFiles(splitList(Options.get("AllowedFiles", kDefaultAllowed))) {}

void RelaxedOrderAuditCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFiles", joinList(AllowedFiles));
}

void RelaxedOrderAuditCheck::registerMatchers(MatchFinder *Finder) {
  // Depending on the standard-library mode, std::memory_order_relaxed is an
  // enumerator (pre-C++20 libstdc++) or an inline constexpr variable
  // aliasing std::memory_order::relaxed (C++20). Match any reference to
  // either name; the scoped-enum enumerator covers explicit
  // std::memory_order::relaxed spellings too.
  Finder->addMatcher(
      declRefExpr(to(namedDecl(hasAnyName("::std::memory_order_relaxed",
                                          "::std::memory_order::relaxed"))))
          .bind("ref"),
      this);
}

void RelaxedOrderAuditCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("ref");
  if (Ref == nullptr)
    return;
  const SourceLocation Loc = Ref->getBeginLoc();
  // References inside system headers (libstdc++'s own atomic internals
  // forward the order) are not user code.
  if (Result.SourceManager->isInSystemHeader(
          Result.SourceManager->getExpansionLoc(Loc)))
    return;
  if (locationInFiles(*Result.SourceManager, Loc, AllowedFiles))
    return;
  diag(Loc,
       "explicit memory_order_relaxed outside the audited allowlist — "
       "justify it with a NOLINT comment naming the invariant that makes "
       "relaxed safe (pure statistic, single-writer, re-validated), or use "
       "a stronger ordering");
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
