#include "SortedKeysCheck.h"

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

constexpr char kDefaultSanctioned[] = "src/app/;src/codec/;src/workload/";

// True when `ME` names a field of psmr::Command. The matcher below only
// constrains the field *name*; the owning record is verified here so that
// unrelated structs with a `keys` member do not trip the check.
bool isCommandKeyField(const MemberExpr *ME) {
  const auto *FD = dyn_cast<FieldDecl>(ME->getMemberDecl());
  if (FD == nullptr)
    return false;
  const auto *RD = dyn_cast<CXXRecordDecl>(FD->getParent());
  return RD != nullptr && RD->getQualifiedNameAsString() == "psmr::Command";
}

}  // namespace

SortedKeysCheck::SortedKeysCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SanctionedFiles(
          splitList(Options.get("SanctionedFiles", kDefaultSanctioned))) {}

void SortedKeysCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SanctionedFiles", joinList(SanctionedFiles));
}

void SortedKeysCheck::registerMatchers(MatchFinder *Finder) {
  auto NKeys = memberExpr(member(fieldDecl(hasName("nkeys")))).bind("member");
  auto KeysElem = anyOf(
      // keys[i] on a C array / raw pointer.
      arraySubscriptExpr(hasBase(ignoringParenImpCasts(
          memberExpr(member(fieldDecl(hasName("keys")))).bind("member")))),
      // keys[i] via std::array::operator[].
      cxxOperatorCallExpr(
          hasOverloadedOperatorName("[]"),
          hasArgument(0, ignoringParenImpCasts(
                             memberExpr(member(fieldDecl(hasName("keys"))))
                                 .bind("member")))));

  // nkeys = ..., nkeys += ..., keys[i] = ... (plain and compound).
  Finder->addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(ignoringParenImpCasts(anyOf(NKeys, KeysElem))))
          .bind("write"),
      this);
  // ++nkeys / nkeys-- style mutation.
  Finder->addMatcher(
      unaryOperator(hasAnyOperatorName("++", "--"),
                    hasUnaryOperand(ignoringParenImpCasts(NKeys)))
          .bind("write"),
      this);
  // Mutating member calls on the array itself: c.keys.fill(...), swap(...).
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("fill", "swap"))),
          on(ignoringParenImpCasts(
              memberExpr(member(fieldDecl(hasName("keys")))).bind("member"))))
          .bind("write"),
      this);
}

void SortedKeysCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *ME = Result.Nodes.getNodeAs<MemberExpr>("member");
  const auto *Write = Result.Nodes.getNodeAs<Expr>("write");
  if (ME == nullptr || Write == nullptr || !isCommandKeyField(ME))
    return;
  if (locationInFiles(*Result.SourceManager, Write->getBeginLoc(),
                      SanctionedFiles))
    return;
  diag(Write->getBeginLoc(),
       "write to psmr::Command::%0 outside a sanctioned builder — the "
       "sorted-keys invariant (command.h) must hold before the command is "
       "published; build through a service builder or the codec, sort before "
       "publishing, or NOLINT with the re-establishing step named")
      << cast<FieldDecl>(ME->getMemberDecl())->getName();
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
