#include "ReclaimDisciplineCheck.h"

#include <algorithm>

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

constexpr char kDefaultNodeClasses[] =
    "psmr::LockFreeCos::Node;psmr::FineGrainedCos::Node;"
    "psmr::StripedCos::Node;psmr::StripedCos::Segment";
constexpr char kDefaultAllowed[] =
    "src/cos/lock_free.cc;src/cos/fine_grained.cc;src/cos/striped.cc;"
    "src/memory/";

// Qualified name of the record behind `T`, or empty when `T` is not a
// (possibly sugared) record type.
std::string recordNameOf(QualType T) {
  if (T.isNull())
    return std::string();
  const CXXRecordDecl *RD = T->getAsCXXRecordDecl();
  return RD != nullptr ? RD->getQualifiedNameAsString() : std::string();
}

}  // namespace

ReclaimDisciplineCheck::ReclaimDisciplineCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      NodeClasses(splitList(Options.get("NodeClasses", kDefaultNodeClasses))),
      AllowedFiles(splitList(Options.get("AllowedFiles", kDefaultAllowed))) {}

void ReclaimDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "NodeClasses", joinList(NodeClasses));
  Options.store(Opts, "AllowedFiles", joinList(AllowedFiles));
}

void ReclaimDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxNewExpr().bind("new"), this);
  Finder->addMatcher(cxxDeleteExpr().bind("delete"), this);
}

void ReclaimDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  QualType Alloc;
  const Expr *Site = nullptr;
  const char *Verb = nullptr;
  if (const auto *NE = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    Alloc = NE->getAllocatedType();
    Site = NE;
    Verb = "allocated";
  } else if (const auto *DE = Result.Nodes.getNodeAs<CXXDeleteExpr>("delete")) {
    Alloc = DE->getDestroyedType();
    Site = DE;
    Verb = "freed";
  }
  if (Site == nullptr)
    return;
  const std::string Name = recordNameOf(Alloc);
  if (Name.empty() ||
      std::find(NodeClasses.begin(), NodeClasses.end(), Name) ==
          NodeClasses.end())
    return;
  if (locationInFiles(*Result.SourceManager, Site->getBeginLoc(),
                      AllowedFiles))
    return;
  diag(Site->getBeginLoc(),
       "%0 %1 outside its COS implementation — node lifetime must flow "
       "through the owning factory and the EBR/hazard retire path (reclaim "
       "discipline, DESIGN.md §8); freeing here races lock-free readers")
      << Name << Verb;
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
