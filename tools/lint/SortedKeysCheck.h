// psmr-sorted-keys: flags writes to psmr::Command's key-set fields
// (`keys`, `nkeys`) outside the sanctioned builder/codec paths.
//
// The whole pipeline — dep_tracker's sorted-merge conflict walk, the COS
// insert path, the early scheduler — assumes keys[0..nkeys) is sorted
// ascending (see command.h). Any code that writes those fields must either
// live in a sanctioned file (the service builders, the codec decode path,
// workload generators) or carry a NOLINT with the justification for why the
// invariant is re-established before the command is published.
#ifndef PSMR_TOOLS_LINT_SORTED_KEYS_CHECK_H
#define PSMR_TOOLS_LINT_SORTED_KEYS_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class SortedKeysCheck : public ClangTidyCheck {
 public:
  SortedKeysCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions: psmr-sorted-keys.SanctionedFiles — path substrings where
  // key-set writes are allowed (builders and the decode trust boundary).
  std::vector<std::string> SanctionedFiles;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_SORTED_KEYS_CHECK_H
