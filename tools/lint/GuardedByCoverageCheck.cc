#include "GuardedByCoverageCheck.h"

#include <algorithm>
#include <string>

#include "PsmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace psmr {

namespace {

constexpr char kDefaultMutexTypes[] =
    "std::mutex;std::recursive_mutex;std::timed_mutex;std::shared_mutex;"
    "psmr::PlainRankedMutex;psmr::CheckedRankedMutex";
constexpr char kDefaultSelfSync[] =
    "psmr::CondVar;std::condition_variable;std::condition_variable_any;"
    "psmr::Semaphore;psmr::BlockingQueue;psmr::SpscRing;psmr::Counter;"
    "psmr::Gauge;psmr::Histogram;psmr::EbrDomain;psmr::HazardDomain;"
    "std::thread;std::jthread";

bool contains(const std::vector<std::string> &Haystack,
              const std::string &Needle) {
  return std::find(Haystack.begin(), Haystack.end(), Needle) != Haystack.end();
}

// Qualified record name behind `T` (template args stripped by
// printQualifiedName), or empty for non-record types.
std::string recordNameOf(QualType T) {
  if (T.isNull())
    return std::string();
  const CXXRecordDecl *RD = T.getNonReferenceType()->getAsCXXRecordDecl();
  return RD != nullptr ? RD->getQualifiedNameAsString() : std::string();
}

}  // namespace

GuardedByCoverageCheck::GuardedByCoverageCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      MutexTypes(splitList(Options.get("MutexTypes", kDefaultMutexTypes))),
      SelfSyncTypes(splitList(Options.get("SelfSyncTypes", kDefaultSelfSync))) {
}

void GuardedByCoverageCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "MutexTypes", joinList(MutexTypes));
  Options.store(Opts, "SelfSyncTypes", joinList(SelfSyncTypes));
}

void GuardedByCoverageCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxRecordDecl(isDefinition(), unless(isImplicit()),
                                   unless(isExpansionInSystemHeader()))
                         .bind("record"),
                     this);
}

void GuardedByCoverageCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *RD = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (RD == nullptr || RD->isUnion())
    return;

  const FieldDecl *MutexField = nullptr;
  for (const FieldDecl *FD : RD->fields()) {
    if (contains(MutexTypes, recordNameOf(FD->getType()))) {
      MutexField = FD;
      break;
    }
  }
  if (MutexField == nullptr)
    return;

  for (const FieldDecl *FD : RD->fields()) {
    const QualType T = FD->getType();
    if (contains(MutexTypes, recordNameOf(T)))
      continue;  // the lock itself
    if (FD->hasAttr<GuardedByAttr>() || FD->hasAttr<PtGuardedByAttr>())
      continue;
    if (T.isConstQualified() || T->isReferenceType())
      continue;
    if (contains(SelfSyncTypes, recordNameOf(T)))
      continue;
    // Atomics in any wrapping (std::atomic<T>, Padded<std::atomic<T>>,
    // arrays thereof) show up in the printed type.
    if (T.getAsString().find("atomic") != std::string::npos)
      continue;
    diag(FD->getLocation(),
         "field %0 shares %1 with mutex %2 but is neither atomic, "
         "GUARDED_BY-annotated, nor a synchronization primitive — annotate "
         "which lock protects it, or NOLINT naming the confinement "
         "discipline (set-once-before-share, single-thread-owned, ...) "
         "that does")
        << FD->getName() << RD->getName() << MutexField->getName();
  }
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang
