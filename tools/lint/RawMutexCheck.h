// psmr-raw-mutex: flags bare std::mutex / std::condition_variable (and
// friends) data members outside common/ranked_mutex.h.
//
// The repo's locking discipline lives in RankedMutex/MutexLock/CondVar
// (lock-rank checking + TSA capability annotations, DESIGN.md §8). A raw
// standard-library primitive as a member bypasses both layers silently.
// Deliberate exceptions (e.g. metrics' rank-exempt mutex) carry a NOLINT
// with the justification.
#ifndef PSMR_TOOLS_LINT_RAW_MUTEX_CHECK_H
#define PSMR_TOOLS_LINT_RAW_MUTEX_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class RawMutexCheck : public ClangTidyCheck {
 public:
  RawMutexCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions: psmr-raw-mutex.AllowedFiles — path substrings where raw
  // primitives are expected (the ranked-mutex implementation itself).
  std::vector<std::string> AllowedFiles;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_RAW_MUTEX_CHECK_H
