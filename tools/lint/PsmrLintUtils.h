// Shared helpers for the psmr-tidy checks: option-list parsing and
// path-allowlist matching.
//
// Every check that sanctions specific files takes a semicolon-separated
// list of path *substrings* (CheckOptions key documented per check). A
// diagnostic location is allowlisted when its presumed file path, with
// backslashes normalized, contains any of the substrings — coarse on
// purpose: the lists name directories ("src/app/") or single files
// ("src/codec/command_codec.cc") and must keep working from any build
// directory layout.
#ifndef PSMR_TOOLS_LINT_PSMR_LINT_UTILS_H
#define PSMR_TOOLS_LINT_PSMR_LINT_UTILS_H

#include <string>
#include <vector>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace psmr {

// Splits a semicolon-separated option value into trimmed, non-empty parts.
inline std::vector<std::string> splitList(llvm::StringRef Value) {
  std::vector<std::string> Parts;
  while (!Value.empty()) {
    auto Split = Value.split(';');
    llvm::StringRef Part = Split.first.trim();
    if (!Part.empty())
      Parts.push_back(Part.str());
    Value = Split.second;
  }
  return Parts;
}

// True when the expansion location of `Loc` lies in a file whose path
// contains any of `Substrings`.
inline bool locationInFiles(const SourceManager &SM, SourceLocation Loc,
                            const std::vector<std::string> &Substrings) {
  if (Loc.isInvalid())
    return false;
  std::string Path = SM.getFilename(SM.getExpansionLoc(Loc)).str();
  for (char &C : Path)
    if (C == '\\')
      C = '/';
  for (const std::string &S : Substrings)
    if (Path.find(S) != std::string::npos)
      return true;
  return false;
}

// Joins parts back into the canonical stored form.
inline std::string joinList(const std::vector<std::string> &Parts) {
  std::string Out;
  for (const std::string &P : Parts) {
    if (!Out.empty())
      Out += ';';
    Out += P;
  }
  return Out;
}

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_PSMR_LINT_UTILS_H
