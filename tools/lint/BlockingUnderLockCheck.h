// psmr-blocking-under-lock: flags blocking calls made while a scope lock
// guard is live in an enclosing scope.
//
// Blocking on a semaphore, a queue pop, or a socket syscall while holding a
// mutex serializes every thread that contends the mutex for the duration of
// the block, and composes into deadlock when the unblocking party needs the
// same mutex. The lint walks lexically: a call is "under a lock" when a
// guard object (MutexLock / std::lock_guard / unique_lock / scoped_lock)
// is declared earlier in any enclosing block of the same function.
//
// Condition-variable waits are special-cased: waiting with exactly the one
// guard the CV atomically releases is the normal monitor pattern; a wait
// with two or more live guards still blocks on the outer one and is
// flagged.
#ifndef PSMR_TOOLS_LINT_BLOCKING_UNDER_LOCK_CHECK_H
#define PSMR_TOOLS_LINT_BLOCKING_UNDER_LOCK_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class BlockingUnderLockCheck : public ClangTidyCheck {
 public:
  BlockingUnderLockCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions:
  //   .BlockingMethods   — qualified member functions that block.
  //   .BlockingFunctions — free functions / syscalls that block.
  //   .GuardTypes        — scope-guard class names (sans template args).
  //   .AllowedFiles      — the blocking primitives' own implementations.
  std::vector<std::string> BlockingMethods;
  std::vector<std::string> BlockingFunctions;
  std::vector<std::string> GuardTypes;
  std::vector<std::string> AllowedFiles;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_BLOCKING_UNDER_LOCK_CHECK_H
