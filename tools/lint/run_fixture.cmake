# Runs one psmr-tidy check over one fixture file and asserts the expected
# outcome. Invoked by ctest (see CMakeLists.txt in this directory):
#
#   cmake -DCLANG_TIDY=... -DPLUGIN=<libpsmr_tidy_module.so> \
#         -DCHECK=psmr-<name> -DSRC=<fixture.cc> -DEXPECT=flag|clean \
#         -P run_fixture.cmake
#
# EXPECT=flag  -> the fixture must produce at least one [psmr-<name>] hit.
# EXPECT=clean -> the fixture must produce none and clang-tidy must exit 0.
# Either way the fixture has to actually compile (see the
# clang-diagnostic-error gate below).

foreach(_v CLANG_TIDY PLUGIN CHECK SRC EXPECT)
  if(NOT DEFINED ${_v})
    message(FATAL_ERROR "run_fixture.cmake: missing -D${_v}")
  endif()
endforeach()

# --warnings-as-errors=-* pins the exit-code contract even if the repo
# .clang-tidy ever promotes psmr-* to errors: fixture outcomes are judged
# on diagnostics, not exit codes (except the clean-fixture rc==0 gate).
execute_process(
  COMMAND ${CLANG_TIDY}
    --load=${PLUGIN}
    --checks=-*,${CHECK}
    --warnings-as-errors=-*
    --quiet
    ${SRC}
    --
    -std=c++20
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err
  RESULT_VARIABLE _rc)

set(_all "${_out}\n${_err}")

# Compiler errors surface as [clang-diagnostic-error]; a fixture that does
# not parse would make every matcher vacuously quiet.
string(FIND "${_all}" "clang-diagnostic-error" _compile_error)
if(NOT _compile_error EQUAL -1)
  message(FATAL_ERROR
    "fixture ${SRC} did not compile under ${CLANG_TIDY}:\n${_all}")
endif()

string(FIND "${_all}" "[${CHECK}]" _hit)

if(EXPECT STREQUAL "flag")
  if(_hit EQUAL -1)
    message(FATAL_ERROR
      "check ${CHECK} produced NO diagnostic on ${SRC} — the check has "
      "stopped matching its target pattern.\nclang-tidy output:\n${_all}")
  endif()
elseif(EXPECT STREQUAL "clean")
  if(NOT _hit EQUAL -1)
    message(FATAL_ERROR
      "check ${CHECK} fired on the clean fixture ${SRC} — it overfires or "
      "no longer honors NOLINT.\nclang-tidy output:\n${_all}")
  endif()
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
      "clang-tidy exited ${_rc} on clean fixture ${SRC}:\n${_all}")
  endif()
else()
  message(FATAL_ERROR "run_fixture.cmake: EXPECT must be flag or clean")
endif()
