// psmr-reclaim-discipline: flags `new`/`delete` of COS node types outside
// the COS implementations and the memory library.
//
// Concurrent readers traverse COS nodes without locks; a node freed outside
// the EBR/hazard retire paths is a use-after-free waiting for the right
// interleaving. Node lifetime must flow through the owning COS .cc file
// (which hands frees to EbrDomain/HazardDomain) — nothing else allocates or
// frees them.
#ifndef PSMR_TOOLS_LINT_RECLAIM_DISCIPLINE_CHECK_H
#define PSMR_TOOLS_LINT_RECLAIM_DISCIPLINE_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace psmr {

class ReclaimDisciplineCheck : public ClangTidyCheck {
 public:
  ReclaimDisciplineCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  // CheckOptions: psmr-reclaim-discipline.NodeClasses — qualified names of
  // reclamation-managed types; .AllowedFiles — the owning implementations.
  std::vector<std::string> NodeClasses;
  std::vector<std::string> AllowedFiles;
};

}  // namespace psmr
}  // namespace tidy
}  // namespace clang

#endif  // PSMR_TOOLS_LINT_RECLAIM_DISCIPLINE_CHECK_H
