// Shared CLI parsing for the psmr binaries (tools/psmr_node and the bench
// harnesses).
//
// FlagSet is a tiny registry of `--name=value` and bare `--name` flags.
// Binaries register the flags they understand (typed helpers below cover
// the common scalar kinds), then call parse(); any flag that was not
// registered is an error — parse() prints "unknown flag: ..." to stderr
// and returns false, and every caller exits with code 2, the contract the
// multiprocess smoke test and the CI scripts rely on.
//
// On top of FlagSet sit two reusable bundles so the scheduler and metrics
// knobs are spelled identically everywhere:
//   SchedulerFlags  --cos, --policy (--sequential as a deprecated alias),
//                   --graph-size, --workers
//   MetricsFlags    --metrics-dump-ms, --metrics-format
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cos/factory.h"

namespace psmr::tools {

class FlagSet {
 public:
  // Handler for a value flag; returns false to reject the value (parse()
  // then fails with a message naming the flag).
  using ValueHandler = std::function<bool(const char* value)>;

  // `--name=value` flag.
  void add_value(std::string name, ValueHandler handler) {
    flags_.push_back({std::move(name), std::move(handler), nullptr});
  }

  // Bare `--name` flag (no value).
  void add_switch(std::string name, std::function<void()> handler) {
    flags_.push_back({std::move(name), nullptr, std::move(handler)});
  }

  // Typed conveniences -----------------------------------------------------

  void add_string(std::string name, std::string* out) {
    add_value(std::move(name), [out](const char* v) {
      *out = v;
      return true;
    });
  }

  void add_flag(std::string name, bool* out) {
    add_switch(std::move(name), [out] { *out = true; });
  }

  void add_int(std::string name, int* out) {
    add_value(std::move(name), [out](const char* v) {
      *out = std::atoi(v);
      return true;
    });
  }

  void add_uint64(std::string name, std::uint64_t* out) {
    add_value(std::move(name), [out](const char* v) {
      *out = std::strtoull(v, nullptr, 10);
      return true;
    });
  }

  void add_size(std::string name, std::size_t* out) {
    add_value(std::move(name), [out](const char* v) {
      *out = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      return true;
    });
  }

  void add_double(std::string name, double* out) {
    add_value(std::move(name), [out](const char* v) {
      *out = std::atof(v);
      return true;
    });
  }

  // Parses argv[1..argc). Returns false (after a message on stderr) on an
  // unknown flag, a value flag missing its `=value`, or a handler
  // rejecting its value. Callers exit 2 on failure.
  bool parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (!parse_one(arg)) return false;
    }
    return true;
  }

 private:
  struct Flag {
    std::string name;                    // including the leading "--"
    ValueHandler on_value;               // non-null for --name=value flags
    std::function<void()> on_switch;     // non-null for bare --name flags
  };

  bool parse_one(std::string_view arg) const {
    const std::size_t eq = arg.find('=');
    const std::string_view name = arg.substr(0, eq);
    for (const Flag& flag : flags_) {
      if (flag.name != name) continue;
      if (flag.on_switch != nullptr) {
        if (eq != std::string_view::npos) {
          std::fprintf(stderr, "flag %s takes no value\n", flag.name.c_str());
          return false;
        }
        flag.on_switch();
        return true;
      }
      if (eq == std::string_view::npos) {
        std::fprintf(stderr, "flag %s requires =<value>\n", flag.name.c_str());
        return false;
      }
      const std::string value(arg.substr(eq + 1));
      if (!flag.on_value(value.c_str())) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag.name.c_str(),
                     value.c_str());
        return false;
      }
      return true;
    }
    std::fprintf(stderr, "unknown flag: %.*s\n", static_cast<int>(arg.size()),
                 arg.data());
    return false;
  }

  std::vector<Flag> flags_;
};

// ---------------------------------------------------------------------------
// Scheduler knobs: COS kind, scheduler policy, graph size, worker count.
// ---------------------------------------------------------------------------

struct SchedulerFlags {
  std::string cos = "lock-free";   // parse_cos_kind spelling
  std::string policy = "cos-dag";  // parse_scheduler_policy spelling
  bool sequential = false;         // deprecated alias for --policy=sequential
  std::size_t graph_size = kPaperGraphSize;
  int workers = 4;
  std::size_t insert_shards = 0;     // --policy=parallel-insert: 0 = auto
  std::size_t inserter_threads = 2;  // --policy=parallel-insert probe pool

  void register_with(FlagSet* flags) {
    flags->add_string("--cos", &cos);
    flags->add_string("--policy", &policy);
    flags->add_flag("--sequential", &sequential);
    flags->add_size("--graph-size", &graph_size);
    flags->add_int("--workers", &workers);
    flags->add_size("--insert-shards", &insert_shards);
    flags->add_size("--inserter-threads", &inserter_threads);
  }

  // Resolves the textual spellings; prints to stderr and returns false on
  // an unrecognized name. --sequential (deprecated) forces kSequential,
  // matching Replica::Config::effective_policy().
  bool resolve(CosKind* kind, SchedulerPolicy* out_policy) const {
    if (!parse_cos_kind(cos, kind)) {
      std::fprintf(stderr, "unknown --cos=%s\n", cos.c_str());
      return false;
    }
    if (!parse_scheduler_policy(policy, out_policy)) {
      std::fprintf(stderr, "unknown --policy=%s\n", policy.c_str());
      return false;
    }
    if (sequential) *out_policy = SchedulerPolicy::kSequential;
    return true;
  }

  // The CosOptions these flags describe (conflict is the service's to set).
  CosOptions cos_options(CosKind kind) const {
    CosOptions options;
    options.kind = kind;
    options.capacity = graph_size;
    options.insert_shards = insert_shards;
    options.inserter_threads = inserter_threads;
    return options;
  }
};

// ---------------------------------------------------------------------------
// Metrics knobs: periodic dump interval and exposition format.
// ---------------------------------------------------------------------------

struct MetricsFlags {
  std::uint64_t dump_ms = 0;     // 0 = off
  std::string format = "json";   // or "prom"

  void register_with(FlagSet* flags) {
    flags->add_uint64("--metrics-dump-ms", &dump_ms);
    flags->add_string("--metrics-format", &format);
  }

  bool validate() const {
    if (format != "json" && format != "prom") {
      std::fprintf(stderr, "--metrics-format must be json or prom\n");
      return false;
    }
    return true;
  }

  bool prometheus() const { return format == "prom"; }
};

}  // namespace psmr::tools
