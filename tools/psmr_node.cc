// Single-node launcher for multi-process deployments over TcpTransport.
//
// Starts ONE replica or ONE closed-loop client as its own OS process; a
// cluster is n replica processes + any number of client processes on a
// shared address list. Node ids are positional: replica i (0-based) is
// peers[i] in --peers, clients use ids >= the replica count.
//
//   # 3 replicas + 1 client on loopback:
//   P="127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103"
//   psmr_node --role=replica --id=0 --peers=$P &
//   psmr_node --role=replica --id=1 --peers=$P &
//   psmr_node --role=replica --id=2 --peers=$P &
//   psmr_node --role=client  --id=3 --peers=$P --ops=1000
//
// A replica serves until --run-ms elapses or SIGTERM/SIGINT arrives, then
// quiesces (waits for the executed count to go stable), and prints one
// machine-parseable line:
//   replica id=0 executed=N digest=0x... view=V state_transfers=K
// A client completes --ops commands (or hits --run-ms), drains, and prints:
//   client id=3 completed=N errors=E drained=0|1
// exiting nonzero if any command never completed. The multi-process smoke
// test (tests/multiprocess_smoke_test.cc) forks this binary and asserts
// the replica digests match.
//
// With --metrics-dump-ms=N (> 0) the process also emits a
// MetricsRegistry::snapshot() every N ms to stderr, one line per dump,
// prefixed "METRICS " (JSON by default; --metrics-format=prom switches to
// Prometheus exposition text, where the prefix is omitted and the dump is
// multi-line). A final dump is always emitted at shutdown.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "cos/factory.h"
#include "net/tcp_transport.h"
#include "smr/client.h"
#include "smr/replica.h"
#include "tools/options.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

struct Options {
  std::string role;
  int id = -1;
  std::vector<std::string> peers;  // replica addresses, in id order
  std::string listen;              // replica only; defaults to peers[id]
  std::string service = "kv";
  psmr::tools::SchedulerFlags sched;    // --cos/--policy/--graph-size/...
  psmr::tools::MetricsFlags metrics;    // --metrics-dump-ms/--metrics-format
  std::uint64_t run_ms = 60000;
  std::uint64_t ops = 1000;       // client
  int pipeline = 4;               // client
  double write_pct = 50.0;        // client
  std::uint64_t keys = 1024;      // key/account/value space
  std::uint64_t shards = 64;      // kv shard count (must match cluster-wide)
  std::uint64_t seed = 1;
};

// Periodically dumps the global metrics registry to stderr. stderr, not
// stdout: the one machine-parseable result line must stay alone on stdout.
class MetricsDumper {
 public:
  MetricsDumper(std::uint64_t interval_ms, bool prometheus)
      : interval_ms_(interval_ms), prometheus_(prometheus) {
    if (interval_ms_ == 0) return;
    thread_ = std::thread([this] { loop(); });
  }

  ~MetricsDumper() { stop(); }

  void stop() {  // idempotent: the destructor calls it too
    if (interval_ms_ == 0) return;
    if (stop_.exchange(true, std::memory_order_relaxed)) return;  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
    if (thread_.joinable()) thread_.join();
    dump();  // final snapshot so short runs still produce one
  }

  void dump() const {
    const psmr::MetricsSnapshot snap = psmr::MetricsRegistry::global().snapshot();
    if (prometheus_) {
      std::fprintf(stderr, "%s", snap.to_prometheus().c_str());
    } else {
      std::fprintf(stderr, "METRICS %s\n", snap.to_json().c_str());
    }
    std::fflush(stderr);
  }

 private:
  void loop() {
    std::uint64_t next = psmr::now_ns() + interval_ms_ * 1'000'000ull;
    while (!stop_.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      // Poll in short slices so stop() is prompt even for long intervals.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (psmr::now_ns() < next) continue;
      dump();
      next = psmr::now_ns() + interval_ms_ * 1'000'000ull;
    }
  }

  const std::uint64_t interval_ms_;
  const bool prometheus_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options* opt) {
  psmr::tools::FlagSet flags;
  flags.add_string("--role", &opt->role);
  flags.add_int("--id", &opt->id);
  flags.add_value("--peers", [opt](const char* v) {
    opt->peers = split_csv(v);
    return true;
  });
  flags.add_string("--listen", &opt->listen);
  flags.add_string("--service", &opt->service);
  opt->sched.register_with(&flags);    // --cos/--policy/--sequential/...
  opt->metrics.register_with(&flags);  // --metrics-dump-ms/--metrics-format
  flags.add_uint64("--run-ms", &opt->run_ms);
  flags.add_uint64("--ops", &opt->ops);
  flags.add_int("--pipeline", &opt->pipeline);
  flags.add_double("--write-pct", &opt->write_pct);
  flags.add_uint64("--keys", &opt->keys);
  flags.add_uint64("--shards", &opt->shards);
  flags.add_uint64("--seed", &opt->seed);
  if (!flags.parse(argc, argv)) return false;
  if (opt->role != "replica" && opt->role != "client") {
    std::fprintf(stderr, "--role must be replica or client\n");
    return false;
  }
  if (opt->id < 0 || opt->peers.empty()) {
    std::fprintf(stderr, "--id and --peers are required\n");
    return false;
  }
  return opt->metrics.validate();
}

std::unique_ptr<psmr::Service> make_service(const Options& opt) {
  if (opt.service == "kv") {
    return std::make_unique<psmr::KvService>(opt.shards);
  }
  if (opt.service == "bank") {
    return std::make_unique<psmr::BankService>(opt.keys, 1000);
  }
  if (opt.service == "list") {
    return std::make_unique<psmr::LinkedListService>(1000);
  }
  return nullptr;
}

// Closed-loop workload: write_pct% writes over a `keys`-sized space.
std::function<psmr::Command()> make_workload(const Options& opt) {
  auto rng = std::make_shared<psmr::Xoshiro256>(opt.seed + 0x9E37u *
                                                    static_cast<unsigned>(opt.id));
  const double write_p = opt.write_pct / 100.0;
  const std::uint64_t keys = opt.keys == 0 ? 1 : opt.keys;
  if (opt.service == "bank") {
    return [rng, write_p, keys] {
      const std::uint64_t a = rng->below(keys);
      if (rng->uniform() < write_p) {
        return rng->uniform() < 0.5
                   ? psmr::BankService::make_deposit(a, 1 + rng->below(100))
                   : psmr::BankService::make_transfer(a, rng->below(keys), 1);
      }
      return psmr::BankService::make_balance(a);
    };
  }
  if (opt.service == "list") {
    return [rng, write_p, keys] {
      const std::uint64_t v = rng->below(keys);
      return rng->uniform() < write_p
                 ? psmr::LinkedListService::make_add(v)
                 : psmr::LinkedListService::make_contains(v);
    };
  }
  auto kv = std::make_shared<psmr::KvService>(opt.shards);
  return [rng, write_p, keys, kv] {
    const std::uint64_t key = rng->below(keys);
    return rng->uniform() < write_p ? kv->make_put(key, rng->below(1 << 20))
                                    : kv->make_get(key);
  };
}

psmr::TcpTransport::Config transport_config(const Options& opt,
                                            bool with_listener) {
  psmr::TcpTransport::Config cfg;
  cfg.local_id = opt.id;
  if (with_listener) {
    cfg.listen_address = opt.listen.empty()
                             ? opt.peers[static_cast<std::size_t>(opt.id)]
                             : opt.listen;
  }
  for (std::size_t i = 0; i < opt.peers.size(); ++i) {
    cfg.peers[static_cast<psmr::NodeId>(i)] = opt.peers[i];
  }
  // Cluster startup is racy by construction (peers come up in any order);
  // be patient before declaring a peer dead.
  cfg.reconnect_max_attempts = 100;
  return cfg;
}

int run_replica(const Options& opt) {
  const int n = static_cast<int>(opt.peers.size());
  if (opt.id >= n) {
    std::fprintf(stderr, "replica --id must be < number of peers\n");
    return 2;
  }
  auto service = make_service(opt);
  if (!service) {
    std::fprintf(stderr, "unknown --service=%s\n", opt.service.c_str());
    return 2;
  }
  psmr::CosKind kind = psmr::CosKind::kLockFree;
  psmr::SchedulerPolicy policy = psmr::SchedulerPolicy::kCosDag;
  if (!opt.sched.resolve(&kind, &policy)) return 2;

  psmr::TcpTransport transport(transport_config(opt, /*with_listener=*/true));
  psmr::Replica::Config rcfg;
  rcfg.policy = policy;
  rcfg.cos = opt.sched.cos_options(kind);
  rcfg.workers = opt.sched.workers;
  psmr::Replica replica(transport, opt.id, std::move(service), rcfg);
  if (replica.endpoint() != opt.id) {
    std::fprintf(stderr, "failed to start transport (bind %s?)\n",
                 opt.peers[static_cast<std::size_t>(opt.id)].c_str());
    return 2;
  }
  std::vector<psmr::NodeId> endpoints;
  for (int i = 0; i < n; ++i) endpoints.push_back(i);
  replica.connect(endpoints);
  replica.start();
  MetricsDumper dumper(opt.metrics.dump_ms, opt.metrics.prometheus());

  const std::uint64_t deadline_ns =
      psmr::now_ns() + opt.run_ms * 1'000'000ull;
  while (!g_stop && psmr::now_ns() < deadline_ns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Quiesce: wait for the executed count to go stable so every replica
  // digests the same prefix (clients are done and retransmissions absorbed
  // by the time this fires).
  std::uint64_t last = replica.executed_count();
  std::uint64_t stable_since = psmr::now_ns();
  const std::uint64_t quiesce_deadline = psmr::now_ns() + 5'000'000'000ull;
  while (psmr::now_ns() < quiesce_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const std::uint64_t cur = replica.executed_count();
    if (cur != last) {
      last = cur;
      stable_since = psmr::now_ns();
    } else if (psmr::now_ns() - stable_since > 300'000'000ull) {
      break;
    }
  }

  transport.shutdown();  // freeze inputs, then join replica threads
  replica.stop();
  dumper.stop();  // final metrics dump covers the whole run
  std::printf("replica id=%d executed=%llu digest=0x%016llx view=%llu "
              "state_transfers=%llu\n",
              opt.id,
              static_cast<unsigned long long>(replica.executed_count()),
              static_cast<unsigned long long>(replica.state_digest()),
              static_cast<unsigned long long>(replica.view()),
              static_cast<unsigned long long>(replica.state_transfers()));
  std::fflush(stdout);
  return 0;
}

int run_client(const Options& opt) {
  const int n = static_cast<int>(opt.peers.size());
  if (opt.id < n) {
    std::fprintf(stderr, "client --id must be >= number of replicas\n");
    return 2;
  }
  psmr::TcpTransport transport(transport_config(opt, /*with_listener=*/false));
  std::vector<psmr::NodeId> replicas;
  for (int i = 0; i < n; ++i) replicas.push_back(i);

  psmr::SmrClient::Config ccfg;
  ccfg.pipeline = opt.pipeline;
  ccfg.resend_timeout_ms = 500;
  psmr::SmrClient client(transport, replicas, ccfg, make_workload(opt));
  if (client.endpoint() != opt.id) {
    std::fprintf(stderr, "failed to start transport\n");
    return 2;
  }
  client.start();
  MetricsDumper dumper(opt.metrics.dump_ms, opt.metrics.prometheus());

  const std::uint64_t deadline_ns =
      psmr::now_ns() + opt.run_ms * 1'000'000ull;
  while (!g_stop && client.completed() < opt.ops &&
         psmr::now_ns() < deadline_ns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  client.stop();
  dumper.stop();
  const bool drained = client.drain(3000);
  const std::uint64_t completed = client.completed();
  const std::uint64_t errors = completed >= opt.ops ? 0 : opt.ops - completed;
  std::printf("client id=%d completed=%llu errors=%llu drained=%d\n", opt.id,
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(errors), drained ? 1 : 0);
  std::fflush(stdout);
  transport.shutdown();
  return (errors == 0 && drained) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);
  return opt.role == "replica" ? run_replica(opt) : run_client(opt);
}
