// Pluggable message transport: the seam between the SMR stack and the
// fabric that carries its messages.
//
// Two implementations exist:
//   - SimNetwork (net/sim_network.h): in-process actor fabric with seeded
//     latency/jitter and full fault injection — the unit/property-test and
//     benchmark substrate.
//   - TcpTransport (net/tcp_transport.h): epoll-based non-blocking TCP for
//     multi-process deployments; one transport instance hosts one node.
//
// Contract every implementation must satisfy (checked by
// tests/transport_conformance_test.cc):
//   - send() is asynchronous, thread-safe, and never blocks the caller
//     indefinitely — not even when the destination is down (messages are
//     dropped instead; the SMR layer retransmits).
//   - Delivery is at-most-once and FIFO per (from, to) pair. Loss is
//     allowed (crashes, cut links, queue overflow) but reordering is not.
//   - Self-sends are delivered like any other message.
//   - Handlers run one message at a time per endpoint (a socket-read-loop
//     discipline); distinct endpoints dispatch concurrently.
//
// Wire transports serialize through codec/command_codec.h, so only message
// types that codec knows survive the wire; SimNetwork ships pointers and
// carries arbitrary Message subclasses. Protocol code must stick to codec-
// registered messages to stay transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.h"

namespace psmr {

class Transport {
 public:
  using Handler = std::function<void(NodeId from, MessagePtr msg)>;

  virtual ~Transport() = default;

  // Registers the handler for an endpoint hosted by this transport and
  // returns its node id. SimNetwork assigns ids sequentially and hosts any
  // number of endpoints; TcpTransport hosts exactly one, with the id fixed
  // by its config. Must be called before traffic flows to the endpoint.
  virtual NodeId add_endpoint(Handler handler) = 0;

  // Asynchronous, thread-safe, non-blocking send. `from` must be an
  // endpoint hosted by this transport. Undeliverable messages are dropped
  // (counted in messages_dropped()), never an error.
  virtual void send(NodeId from, NodeId to, MessagePtr msg) = 0;

  // Deregisters an endpoint's handler. Blocks until any in-progress handler
  // invocation for the endpoint has returned; after this returns, no
  // handler for `node` is running or will ever run again, so the handler's
  // owner can be destroyed (the SmrClient/Replica destructors rely on
  // this). Messages addressed to the endpoint are dropped from then on.
  // Safe on crashed and already-removed endpoints; ids not hosted by this
  // transport are ignored. Callers must not hold locks that the endpoint's
  // handler also takes.
  virtual void remove_endpoint(NodeId node) = 0;

  // Stops all transport threads and closes connections; idempotent. After
  // shutdown() returns no handler is running or will run, so handler
  // owners can safely be destroyed.
  virtual void shutdown() = 0;

  // Statistics.
  virtual std::uint64_t messages_delivered() const = 0;
  virtual std::uint64_t messages_dropped() const = 0;

  // Fault-injection hooks. Only simulated transports implement these; on a
  // real network they are no-ops (you cannot cut a physical link from
  // process code). Callers that need them should check
  // supports_fault_injection() first.
  virtual bool supports_fault_injection() const { return false; }
  virtual void set_link(NodeId /*a*/, NodeId /*b*/, bool /*up*/) {}
  virtual void crash(NodeId /*node*/) {}
  virtual bool crashed(NodeId /*node*/) const { return false; }
};

}  // namespace psmr
