#include "net/sim_network.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace psmr {

SimNetwork::SimNetwork(Config config)
    : config_(config),
      rng_(config.seed),
      metrics_{MetricsRegistry::global().counter("net.sim.delivered"),
               MetricsRegistry::global().counter("net.sim.dropped"),
               MetricsRegistry::global().gauge("net.sim.inflight")} {
  delivery_thread_ = std::thread([this] { delivery_loop(); });
}

SimNetwork::~SimNetwork() { shutdown(); }

NodeId SimNetwork::add_endpoint(Handler handler) {
  MutexLock lock(mu_);
  const NodeId id = static_cast<NodeId>(endpoints_.size());
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->handler = std::move(handler);
  Endpoint* raw = endpoint.get();
  endpoint->dispatcher = std::thread([this, raw] {
    while (auto item = raw->inbox.pop()) {
      // remove_endpoint closes the inbox and joins this thread; drop (do
      // not dispatch) whatever the close left behind — the handler's owner
      // is being destroyed.
      if (raw->removed.load(std::memory_order_acquire)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
        metrics_.dropped.inc();
        continue;
      }
      raw->handler(item->first, std::move(item->second));
    }
  });
  endpoints_.push_back(std::move(endpoint));
  return id;
}

void SimNetwork::send(NodeId from, NodeId to, MessagePtr msg) {
  MutexLock lock(mu_);
  if (stopping_) return;
  const auto n = static_cast<NodeId>(endpoints_.size());
  if (to < 0 || to >= n || from < 0 || from >= n) return;
  if (endpoints_[static_cast<std::size_t>(from)]->crashed.load(
          std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
    dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    metrics_.dropped.inc();
    return;
  }
  if (config_.drop_rate > 0.0 && rng_.uniform() < config_.drop_rate) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    metrics_.dropped.inc();
    return;
  }
  const std::uint64_t latency_ns =
      (config_.base_latency_us +
       (config_.jitter_us > 0 ? rng_.below(config_.jitter_us) : 0)) *
      1000ull;
  std::uint64_t deliver_at = now_ns() + latency_ns;
  // Enforce per-link FIFO: never schedule before an earlier message on the
  // same link.
  auto& last = last_delivery_[{from, to}];
  deliver_at = std::max(deliver_at, last + 1);
  last = deliver_at;
  queue_.push({deliver_at, next_sequence_++, from, to, std::move(msg)});
  metrics_.inflight.add(1);
  cv_.notify_one();
}

bool SimNetwork::link_up_locked(NodeId a, NodeId b) const {
  const auto key = std::minmax(a, b);
  return !cut_links_.contains({key.first, key.second});
}

void SimNetwork::set_link(NodeId a, NodeId b, bool up) {
  MutexLock lock(mu_);
  const auto key = std::minmax(a, b);
  if (up) {
    cut_links_.erase({key.first, key.second});
  } else {
    cut_links_.insert({key.first, key.second});
  }
}

void SimNetwork::crash(NodeId node) {
  Endpoint* endpoint = nullptr;
  {
    MutexLock lock(mu_);
    if (node < 0 || node >= static_cast<NodeId>(endpoints_.size())) return;
    endpoint = endpoints_[static_cast<std::size_t>(node)].get();
    endpoint->crashed.store(true, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
    // Drop its queued traffic now and forget its per-link FIFO state:
    // long-running fault tests crash many endpoints, and dead links must
    // not accumulate.
    purge_node_locked(node);
  }
  endpoint->inbox.close();
}

void SimNetwork::remove_endpoint(NodeId node) {
  Endpoint* endpoint = nullptr;
  {
    MutexLock lock(mu_);
    if (node < 0 || node >= static_cast<NodeId>(endpoints_.size())) return;
    endpoint = endpoints_[static_cast<std::size_t>(node)].get();
    if (endpoint->removed.exchange(true, std::memory_order_acq_rel)) {
      endpoint = nullptr;  // another remover owns the join
    } else {
      purge_node_locked(node);
    }
  }
  if (endpoint == nullptr) return;
  // Close and join outside mu_: the handler may be inside send() right now.
  endpoint->inbox.close();
  if (endpoint->dispatcher.joinable()) endpoint->dispatcher.join();
}

void SimNetwork::purge_node_locked(NodeId node) {
  for (auto it = last_delivery_.begin(); it != last_delivery_.end();) {
    if (it->first.first == node || it->first.second == node) {
      it = last_delivery_.erase(it);
    } else {
      ++it;
    }
  }
  if (queue_.empty()) return;
  std::vector<InFlight> survivors;
  survivors.reserve(queue_.size());
  while (!queue_.empty()) {
    // priority_queue::top is const; the copy is cheap (shared_ptr payload).
    InFlight item = queue_.top();
    queue_.pop();
    if (item.to == node || item.from == node) {
      dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      metrics_.dropped.inc();
      metrics_.inflight.sub(1);
    } else {
      survivors.push_back(std::move(item));
    }
  }
  for (InFlight& item : survivors) queue_.push(std::move(item));
}

std::size_t SimNetwork::link_state_entries() const {
  MutexLock lock(mu_);
  return last_delivery_.size();
}

std::size_t SimNetwork::in_flight() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool SimNetwork::crashed(NodeId node) const {
  MutexLock lock(mu_);
  if (node < 0 || node >= static_cast<NodeId>(endpoints_.size())) return true;
  return endpoints_[static_cast<std::size_t>(node)]->crashed.load(
      std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
}

void SimNetwork::delivery_loop() {
  MutexLock lock(mu_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(mu_);
      continue;
    }
    const std::uint64_t now = now_ns();
    const InFlight& next = queue_.top();
    if (next.deliver_at_ns > now) {
      cv_.wait_for(mu_,
                   std::chrono::nanoseconds(next.deliver_at_ns - now));
      continue;
    }
    InFlight item = queue_.top();
    queue_.pop();
    metrics_.inflight.sub(1);
    Endpoint& to = *endpoints_[static_cast<std::size_t>(item.to)];
    const bool deliverable =
        !to.crashed.load(std::memory_order_relaxed) &&  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
        !endpoints_[static_cast<std::size_t>(item.from)]->crashed.load(
            std::memory_order_relaxed) &&  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
        link_up_locked(item.from, item.to);
    // Push outside the lock would be nicer, but the inbox push never
    // blocks (unbounded queue), so holding mu_ here is bounded. A push to
    // a closed inbox (removed endpoint) reports the message as dropped.
    if (deliverable && to.inbox.push({item.from, std::move(item.msg)})) {
      delivered_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      metrics_.delivered.inc();
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      metrics_.dropped.inc();
    }
  }
}

void SimNetwork::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  // Snapshot the endpoints under mu_, then close/join outside it: a
  // dispatcher handler may call send(), which takes mu_.
  std::vector<Endpoint*> endpoints;
  {
    MutexLock lock(mu_);
    endpoints.reserve(endpoints_.size());
    for (auto& endpoint : endpoints_) endpoints.push_back(endpoint.get());
  }
  for (Endpoint* endpoint : endpoints) {
    endpoint->inbox.close();
  }
  for (Endpoint* endpoint : endpoints) {
    if (endpoint->dispatcher.joinable()) endpoint->dispatcher.join();
  }
}

}  // namespace psmr
