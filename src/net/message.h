// Base message type carried by the simulated network.
//
// Concrete protocol messages (broadcast/messages.h, smr/client.h) derive
// from Message and are routed by the integer type tag — the in-process
// equivalent of a wire-format discriminator, without serialization cost.
#pragma once

#include <memory>

namespace psmr {

using NodeId = int;

struct Message {
  explicit Message(int type_tag) : type(type_tag) {}
  virtual ~Message() = default;

  Message(const Message&) = default;
  Message& operator=(const Message&) = delete;

  const int type;
};

using MessagePtr = std::shared_ptr<const Message>;

template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

// Downcast helper; callers must have checked `type` first.
template <typename T>
const T& message_as(const MessagePtr& m) {
  return static_cast<const T&>(*m);
}

}  // namespace psmr
