// Epoll-based TCP transport for multi-process deployments.
//
// One TcpTransport instance hosts exactly one node (a replica or a client
// process): the node id and the peer address map come from the config, and
// add_endpoint() must be called exactly once. Frames are length-prefixed
// (net/wire.h) and payloads are serialized with codec/command_codec.h, so
// a command crosses the wire byte-identically to how checkpoints encode it
// in-process.
//
// Connection model:
//   - Peers with a configured address are *dialed* lazily on first send,
//     with exponential backoff and a retry cap; outbound frames to such a
//     peer always use the dialed connection, so the (from, to) stream is a
//     single TCP byte stream and per-pair FIFO holds.
//   - Peers without a configured address (clients, from a replica's point
//     of view) are learned from inbound connections: each side of a
//     connection announces its node id in a HELLO, and replies are routed
//     back over the accepted connection.
//   - Self-sends bypass the socket layer entirely.
//
// Backpressure: each peer has a bounded outbound byte budget; a send that
// would exceed it is dropped (and counted), never blocked — the SMR layer
// is built for lossy links and retransmits. This is also what keeps a
// sender from wedging when its peer crashes.
//
// Threads: one epoll I/O thread owns every socket (accept, connect
// completion, read, write, reconnect timers); one dispatcher thread pops
// decoded messages from an inbox queue and runs the endpoint handler one
// message at a time, matching SimNetwork's dispatch discipline.
//
// Graceful shutdown drains queued outbound frames for up to
// drain_timeout_ms before closing sockets, so a stopping node's last
// replies/acks still reach its peers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace psmr {

struct TcpTransportConfig {
  // Id of the (single) endpoint this process hosts. Non-negative.
  NodeId local_id = 0;
  // "host:port" to accept peers on; empty for dial-only nodes (clients).
  std::string listen_address;
  // Dialable peers: id -> "host:port". Peers not listed here can still
  // talk to us by dialing in (their id is learned from the HELLO).
  std::map<NodeId, std::string> peers;

  // Frames larger than this are a protocol error (connection dropped on
  // receive, message dropped on send). Must comfortably exceed the largest
  // checkpoint shipped by state transfer.
  std::size_t max_frame_bytes = 64u << 20;
  // Per-peer outbound budget: queued + in-flight bytes beyond this drop
  // the newest frame (bounded backpressure, never blocks the sender).
  std::size_t sendq_limit_bytes = 8u << 20;

  // Reconnect schedule for dialable peers: exponential backoff from
  // initial to max, giving up for good after `reconnect_max_attempts`
  // consecutive failures (the peer is then marked dead and sends to it are
  // dropped).
  std::uint64_t reconnect_initial_ms = 10;
  std::uint64_t reconnect_max_ms = 2000;
  int reconnect_max_attempts = 30;

  // Graceful-shutdown budget for flushing queued outbound frames.
  std::uint64_t drain_timeout_ms = 1000;
};

class TcpTransport final : public Transport {
 public:
  using Config = TcpTransportConfig;

  explicit TcpTransport(Config config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Starts the listener (if configured), the I/O thread and the dispatcher.
  // Must be called exactly once; returns config.local_id, or -1 on setup
  // failure (bad listen address) or repeated call.
  NodeId add_endpoint(Handler handler) override;

  void send(NodeId from, NodeId to, MessagePtr msg) override;

  // Deregisters the (single) hosted endpoint: once this returns, no handler
  // invocation is running or will start; later inbound messages are counted
  // as dropped. The transport's sockets stay up (shutdown() still drains).
  void remove_endpoint(NodeId node) override;

  void shutdown() override;

  std::uint64_t messages_delivered() const override {
    return delivered_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }
  std::uint64_t messages_dropped() const override {
    return dropped_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }

 private:
  struct Conn {
    int fd = -1;
    NodeId peer = -1;      // dial target, or learned from HELLO
    bool dialed = false;
    bool connecting = false;     // nonblocking connect() still in progress
    bool hello_received = false;
    std::uint32_t events = 0;    // epoll mask currently registered
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;  // HELLO bytes (frames live in Peer)
    std::size_t woff = 0;
  };

  struct Peer {
    std::string address;   // empty: reachable only via an inbound conn
    Conn* conn = nullptr;  // connection outbound frames are written to
    std::deque<std::vector<std::uint8_t>> outq;  // framed, ready to write
    std::size_t outq_bytes = 0;
    std::size_t outq_off = 0;  // partial-write offset into outq.front()
    int attempts = 0;          // consecutive failed dials
    std::uint64_t next_retry_ns = 0;
    bool dead = false;  // retry cap exhausted
  };

  // All private methods below run on the I/O thread with mu_ held (the
  // loop releases it only around epoll_wait).
  void io_loop();
  void start_listener_locked() PSMR_REQUIRES(mu_);
  void accept_ready_locked() PSMR_REQUIRES(mu_);
  void maybe_dial_locked(NodeId id, Peer& peer, std::uint64_t now)
      PSMR_REQUIRES(mu_);
  void finish_connect_locked(Conn& conn) PSMR_REQUIRES(mu_);
  void handle_readable_locked(Conn& conn) PSMR_REQUIRES(mu_);
  void handle_writable_locked(Conn& conn) PSMR_REQUIRES(mu_);
  void flush_peer_locked(Peer& peer) PSMR_REQUIRES(mu_);
  bool parse_inbound_locked(Conn& conn) PSMR_REQUIRES(mu_);
  void close_conn_locked(Conn& conn, bool peer_failure) PSMR_REQUIRES(mu_);
  void update_events_locked(Conn& conn, std::uint32_t wanted)
      PSMR_REQUIRES(mu_);
  std::uint64_t next_timer_locked(std::uint64_t now) const PSMR_REQUIRES(mu_);
  void wake();

  struct Metrics {
    Counter& frames_in;
    Counter& frames_out;
    Counter& bytes_in;
    Counter& bytes_out;
    Counter& delivered;
    Counter& dropped;
    Counter& dials;      // outbound connection attempts started
    Counter& accepts;    // inbound connections accepted
    Counter& backoffs;   // reconnect backoffs scheduled
    Counter& peers_dead; // peers given up on (retry cap)
    Gauge& outq_bytes;   // queued outbound bytes across all peers
  };

  Peer& peer_entry_locked(NodeId id) PSMR_REQUIRES(mu_);
  std::uint64_t backoff_ns(int attempts) const;
  void drop_message() {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    metrics_.dropped.inc();
  }

  const Config config_;
  // Set once in add_endpoint() before the dispatcher thread starts, read
  // only by that thread afterwards — deliberately not guarded by mu_.
  Handler handler_;  // NOLINT(psmr-guarded-by-coverage) set once in start(), const thereafter

  // mu_ is held across inbox_ pushes (transport rank precedes the queue
  // rank in the lock hierarchy, DESIGN.md). The fds below are created in
  // add_endpoint() before the I/O thread exists and torn down by it;
  // wake() reads wake_fd_ without mu_ from shutdown(), a benign race with
  // the I/O thread's final close (the eventfd write then hits a dead fd).
  mutable RankedMutex<lock_rank::kTransport> mu_;
  bool started_ PSMR_GUARDED_BY(mu_) = false;
  bool stopping_ PSMR_GUARDED_BY(mu_) = false;
  int epoll_fd_ = -1;  // NOLINT(psmr-guarded-by-coverage) owned by the I/O thread after start()
  int listen_fd_ = -1;  // NOLINT(psmr-guarded-by-coverage) owned by the I/O thread after start()
  int wake_fd_ = -1;  // eventfd: send() and shutdown() wake the I/O thread  // NOLINT(psmr-guarded-by-coverage) set in start(); benign shutdown race documented above
  std::map<int, std::unique_ptr<Conn>> conns_ PSMR_GUARDED_BY(mu_);  // by fd
  std::map<NodeId, Peer> peers_ PSMR_GUARDED_BY(mu_);

  BlockingQueue<std::pair<NodeId, MessagePtr>> inbox_;
  std::thread io_thread_;
  std::thread dispatcher_;

  // remove_endpoint gate. A plain std::mutex on purpose: it is held across
  // handler_ invocations, which acquire client/replica locks that rank
  // *below* the transport rank — a ranked mutex here would trip the
  // checker. The dispatcher takes it per message; remove_endpoint sets the
  // flag and then acquires it once, which both waits out any in-progress
  // handler and (via the mutex's release/acquire) publishes the flag to
  // every later dispatch.
  std::mutex dispatch_mu_;  // NOLINT(psmr-raw-mutex) deliberately unranked; see the gate comment above
  std::atomic<bool> endpoint_removed_{false};

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  const Metrics metrics_;
};

}  // namespace psmr
