// In-process simulated cluster network.
//
// Substitute for the paper's 7-machine 1 Gbps switched LAN: endpoints are
// in-process actors; send() stamps each message with a delivery time (base
// latency + seeded jitter), a delivery thread releases messages in time
// order, and a per-endpoint dispatcher thread runs the endpoint's handler
// sequentially (one message at a time per endpoint, like a socket read
// loop).
//
// Link semantics are TCP-like, matching what BFT-SMaRt assumes: reliable
// and FIFO per (from, to) pair, unless a fault is injected — links can be
// cut (partition) and endpoints crashed, which silently drops traffic, and
// a probabilistic drop rate exists for network-level tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/transport.h"

namespace psmr {

struct SimNetworkConfig {
  std::uint64_t base_latency_us = 100;  // one-way
  std::uint64_t jitter_us = 50;         // uniform [0, jitter)
  double drop_rate = 0.0;               // applied per message
  std::uint64_t seed = 1;
};

class SimNetwork final : public Transport {
 public:
  using Config = SimNetworkConfig;

  explicit SimNetwork(Config config = Config());
  ~SimNetwork() override;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // Registers an endpoint; its handler runs on a dedicated dispatcher
  // thread, one message at a time. Must be called before traffic flows to
  // the endpoint. Thread-safe. Ids are assigned sequentially from 0.
  NodeId add_endpoint(Handler handler) override;

  // Asynchronous, thread-safe. Self-sends are allowed.
  void send(NodeId from, NodeId to, MessagePtr msg) override;

  // Fault injection: cut or restore the (bidirectional) link between a and
  // b. Messages in flight on a cut link are dropped at delivery time.
  bool supports_fault_injection() const override { return true; }
  void set_link(NodeId a, NodeId b, bool up) override;

  // Crashes an endpoint: all of its inbound and outbound traffic is dropped
  // from now on (in-flight included). Its dispatcher drains and stops.
  void crash(NodeId node) override;
  bool crashed(NodeId node) const override;

  // Deregisters an endpoint (Transport contract): joins its dispatcher, so
  // on return no handler invocation is running or will start. In-flight
  // messages to the endpoint and its per-link FIFO state are purged.
  void remove_endpoint(NodeId node) override;

  // Test hooks for the purge logic: per-link FIFO entries retained and
  // messages currently queued for delivery.
  std::size_t link_state_entries() const;
  std::size_t in_flight() const;

  // Statistics.
  std::uint64_t messages_delivered() const override {
    return delivered_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }
  std::uint64_t messages_dropped() const override {
    return dropped_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }

  // Stops all threads. Called by the destructor; idempotent.
  void shutdown() override;

 private:
  struct InFlight {
    std::uint64_t deliver_at_ns;
    std::uint64_t sequence;  // tie-break, preserves send order
    NodeId from;
    NodeId to;
    MessagePtr msg;
    bool operator>(const InFlight& other) const {
      return deliver_at_ns != other.deliver_at_ns
                 ? deliver_at_ns > other.deliver_at_ns
                 : sequence > other.sequence;
    }
  };

  struct Endpoint {
    Handler handler;
    BlockingQueue<std::pair<NodeId, MessagePtr>> inbox;
    std::thread dispatcher;
    std::atomic<bool> crashed{false};
    // Set by remove_endpoint; the dispatcher drops (not dispatches) any
    // inbox remainder once it observes the flag.
    std::atomic<bool> removed{false};
  };

  struct Metrics {
    Counter& delivered;
    Counter& dropped;
    Gauge& inflight;
  };

  bool link_up_locked(NodeId a, NodeId b) const PSMR_REQUIRES(mu_);
  // Drops queued in-flight messages to/from `node` and erases its per-link
  // FIFO entries. Shared by crash() and remove_endpoint().
  void purge_node_locked(NodeId node) PSMR_REQUIRES(mu_);
  void delivery_loop();

  const Config config_;

  // mu_ is held across inbox pushes (transport rank precedes the queue
  // rank). Endpoint objects themselves are not guarded: only the
  // unique_ptr vector is — the pointees are internally synchronized
  // (inbox) or atomic (crashed).
  mutable RankedMutex<lock_rank::kTransport> mu_;
  CondVar cv_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> queue_
      PSMR_GUARDED_BY(mu_);
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> last_delivery_
      PSMR_GUARDED_BY(mu_);  // FIFO
  std::set<std::pair<NodeId, NodeId>> cut_links_ PSMR_GUARDED_BY(mu_);
  Xoshiro256 rng_ PSMR_GUARDED_BY(mu_);
  std::uint64_t next_sequence_ PSMR_GUARDED_BY(mu_) = 0;
  bool stopping_ PSMR_GUARDED_BY(mu_) = false;

  std::vector<std::unique_ptr<Endpoint>> endpoints_ PSMR_GUARDED_BY(mu_);
  std::thread delivery_thread_;  // set once in the constructor

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  const Metrics metrics_;
};

}  // namespace psmr
