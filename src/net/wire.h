// TCP wire framing: byte-exact, endian-stable layouts shared by
// TcpTransport and its tests.
//
// A connection starts with one HELLO from each side, then carries frames:
//
//   HELLO :=  magic  u32 LE  ("PSMR" = 0x524D5350)
//             version u16 LE (kWireVersion)
//             node_id u32 LE (announcing side's id; ids are non-negative)
//
//   FRAME :=  length u32 LE  (payload byte count, 1 .. max_frame_bytes)
//             payload        (codec::encode_message bytes)
//
// Every integer is encoded byte-by-byte in little-endian order — never by
// memcpy of a host-order struct — so the same frames are valid between
// machines of different endianness and alignment rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psmr::wire {

inline constexpr std::uint32_t kMagic = 0x524D5350u;  // "PSMR" as LE bytes
// v2: command key encoding changed to a packed nibble byte
// (nkeys | total<<4) that also carries payload key slots; see
// codec/command_codec.cc.
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::size_t kHelloBytes = 4 + 2 + 4;
inline constexpr std::size_t kFrameHeaderBytes = 4;

inline void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline std::uint16_t get_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::vector<std::uint8_t> encode_hello(std::uint32_t node_id) {
  std::vector<std::uint8_t> out;
  out.reserve(kHelloBytes);
  put_u32_le(out, kMagic);
  put_u16_le(out, kWireVersion);
  put_u32_le(out, node_id);
  return out;
}

struct Hello {
  std::uint32_t node_id = 0;
};

// Parses a HELLO from exactly kHelloBytes at `p`; false on bad magic or
// version mismatch.
inline bool decode_hello(const std::uint8_t* p, Hello* out) {
  if (get_u32_le(p) != kMagic) return false;
  if (get_u16_le(p + 4) != kWireVersion) return false;
  out->node_id = get_u32_le(p + 6);
  return true;
}

}  // namespace psmr::wire
