#include "net/tcp_transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "codec/command_codec.h"
#include "common/stopwatch.h"
#include "net/wire.h"

namespace psmr {

namespace {

// epoll user-data tags for the non-connection fds.
constexpr std::uint64_t kTagListener = ~0ull;
constexpr std::uint64_t kTagWake = ~0ull - 1;

// Splits "host:port" and resolves to an IPv4 socket address.
bool resolve_hostport(const std::string& hostport, sockaddr_in* out) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon + 1 >= hostport.size()) return false;
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(), &hints,
                  &result) != 0 ||
      result == nullptr) {
    return false;
  }
  std::memcpy(out, result->ai_addr, sizeof(sockaddr_in));
  freeaddrinfo(result);
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(Config config)
    : config_(std::move(config)),
      metrics_{MetricsRegistry::global().counter("net.tcp.frames_in"),
               MetricsRegistry::global().counter("net.tcp.frames_out"),
               MetricsRegistry::global().counter("net.tcp.bytes_in"),
               MetricsRegistry::global().counter("net.tcp.bytes_out"),
               MetricsRegistry::global().counter("net.tcp.delivered"),
               MetricsRegistry::global().counter("net.tcp.dropped"),
               MetricsRegistry::global().counter("net.tcp.dials"),
               MetricsRegistry::global().counter("net.tcp.accepts"),
               MetricsRegistry::global().counter("net.tcp.backoffs"),
               MetricsRegistry::global().counter("net.tcp.peers_dead"),
               MetricsRegistry::global().gauge("net.tcp.outq_bytes")} {
  for (const auto& [id, address] : config_.peers) {
    if (id == config_.local_id) continue;
    peers_[id].address = address;
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

NodeId TcpTransport::add_endpoint(Handler handler) {
  MutexLock lock(mu_);
  if (started_ || stopping_ || config_.local_id < 0) return -1;

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) return -1;

  if (!config_.listen_address.empty()) {
    sockaddr_in addr{};
    if (!resolve_hostport(config_.listen_address, &addr)) return -1;
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return -1;
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(listen_fd_, 64) != 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return -1;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListener;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWake;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }

  handler_ = std::move(handler);
  started_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
  dispatcher_ = std::thread([this] {
    while (auto item = inbox_.pop()) {
      // Per-message gate so remove_endpoint can fence out the handler; see
      // the dispatch_mu_ comment in the header.
      std::lock_guard<std::mutex> gate(dispatch_mu_);
      if (endpoint_removed_.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
        drop_message();
        continue;
      }
      handler_(item->first, std::move(item->second));
    }
  });
  return config_.local_id;
}

void TcpTransport::remove_endpoint(NodeId node) {
  if (node != config_.local_id) return;
  endpoint_removed_.store(true, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
  // Wait out an in-progress handler invocation; any dispatch that starts
  // after this unlock observes the flag (the mutex orders the store).
  std::lock_guard<std::mutex> gate(dispatch_mu_);
}

void TcpTransport::send(NodeId from, NodeId to, MessagePtr msg) {
  if (!msg) return;
  // Serialize outside the lock; the frame bytes are what cross the wire.
  ByteWriter payload_writer;
  encode_message(*msg, payload_writer);
  std::vector<std::uint8_t> payload = payload_writer.take();
  if (payload.empty() || payload.size() > config_.max_frame_bytes) {
    drop_message();
    return;
  }

  MutexLock lock(mu_);
  if (!started_ || stopping_ || from != config_.local_id || to < 0) {
    drop_message();
    return;
  }
  if (to == config_.local_id) {  // self-send: no socket round trip
    if (inbox_.push({from, std::move(msg)})) {
      delivered_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      metrics_.delivered.inc();
    } else {
      drop_message();
    }
    return;
  }
  Peer& peer = peer_entry_locked(to);
  if (peer.dead || (peer.conn == nullptr && peer.address.empty())) {
    drop_message();  // unreachable (retry cap hit, or client never dialed in)
    return;
  }
  if (peer.outq_bytes + payload.size() + wire::kFrameHeaderBytes >
      config_.sendq_limit_bytes) {
    drop_message();  // bounded backpressure: drop newest, never block
    return;
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(wire::kFrameHeaderBytes + payload.size());
  wire::put_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  peer.outq_bytes += frame.size();
  metrics_.outq_bytes.add(static_cast<std::int64_t>(frame.size()));
  peer.outq.push_back(std::move(frame));
  wake();
}

void TcpTransport::wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void TcpTransport::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (!started_) {
      if (epoll_fd_ >= 0) close(epoll_fd_);
      if (wake_fd_ >= 0) close(wake_fd_);
      if (listen_fd_ >= 0) close(listen_fd_);
      epoll_fd_ = wake_fd_ = listen_fd_ = -1;
      return;
    }
  }
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  inbox_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

TcpTransport::Peer& TcpTransport::peer_entry_locked(NodeId id) {
  return peers_[id];  // default entry: no address, reachable only inbound
}

std::uint64_t TcpTransport::backoff_ns(int attempts) const {
  std::uint64_t ms = config_.reconnect_initial_ms;
  for (int i = 1; i < attempts && ms < config_.reconnect_max_ms; ++i) ms *= 2;
  if (ms > config_.reconnect_max_ms) ms = config_.reconnect_max_ms;
  return ms * 1'000'000ull;
}

void TcpTransport::update_events_locked(Conn& conn, std::uint32_t wanted) {
  if (conn.events == wanted) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.u64 = static_cast<std::uint64_t>(conn.fd);
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.events = wanted;
}

void TcpTransport::close_conn_locked(Conn& conn, bool connect_failed) {
  const int fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  if (conn.peer >= 0) {
    auto it = peers_.find(conn.peer);
    if (it != peers_.end() && it->second.conn == &conn) {
      Peer& peer = it->second;
      peer.conn = nullptr;
      // A partially written frame died with this stream: re-send it whole
      // on the next connection (the receiver never completed it, so this
      // cannot duplicate a delivery).
      peer.outq_bytes += peer.outq_off;
      metrics_.outq_bytes.add(static_cast<std::int64_t>(peer.outq_off));
      peer.outq_off = 0;
      if (!peer.address.empty()) {
        peer.attempts = connect_failed ? peer.attempts + 1 : 1;
        peer.next_retry_ns = now_ns() + backoff_ns(peer.attempts);
        metrics_.backoffs.inc();
        if (peer.attempts > config_.reconnect_max_attempts) {
          peer.dead = true;
          metrics_.peers_dead.inc();
          while (!peer.outq.empty()) {
            peer.outq.pop_front();
            drop_message();
          }
          metrics_.outq_bytes.sub(static_cast<std::int64_t>(peer.outq_bytes));
          peer.outq_bytes = 0;
        }
      }
    }
  }
  conns_.erase(fd);  // destroys `conn`
}

void TcpTransport::maybe_dial_locked(NodeId id, Peer& peer,
                                     std::uint64_t now) {
  if (stopping_ || peer.dead || peer.conn != nullptr || peer.address.empty() ||
      peer.outq_bytes == 0 || now < peer.next_retry_ns) {
    return;
  }
  sockaddr_in addr{};
  if (!resolve_hostport(peer.address, &addr)) {
    peer.attempts++;
    peer.next_retry_ns = now + backoff_ns(peer.attempts);
    metrics_.backoffs.inc();
    return;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    peer.attempts++;
    peer.next_retry_ns = now + backoff_ns(peer.attempts);
    metrics_.backoffs.inc();
    return;
  }
  set_nodelay(fd);
  metrics_.dials.inc();
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    peer.attempts++;
    peer.next_retry_ns = now + backoff_ns(peer.attempts);
    metrics_.backoffs.inc();
    if (peer.attempts > config_.reconnect_max_attempts) {
      peer.dead = true;
      metrics_.peers_dead.inc();
    }
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = id;
  conn->dialed = true;
  conn->connecting = (rc != 0);
  if (!conn->connecting) {
    conn->wbuf = wire::encode_hello(
        static_cast<std::uint32_t>(config_.local_id));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = static_cast<std::uint64_t>(fd);
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conn->events = EPOLLIN | EPOLLOUT;
  peer.conn = conn.get();
  conns_[fd] = std::move(conn);
}

void TcpTransport::finish_connect_locked(Conn& conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    close_conn_locked(conn, /*connect_failed=*/true);
    return;
  }
  conn.connecting = false;
  conn.wbuf =
      wire::encode_hello(static_cast<std::uint32_t>(config_.local_id));
  auto it = peers_.find(conn.peer);
  if (it != peers_.end()) it->second.attempts = 0;
}

void TcpTransport::accept_ready_locked() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error
    set_nodelay(fd);
    metrics_.accepts.inc();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->wbuf =
        wire::encode_hello(static_cast<std::uint32_t>(config_.local_id));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = static_cast<std::uint64_t>(fd);
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn->events = EPOLLIN | EPOLLOUT;
    conns_[fd] = std::move(conn);
  }
}

// Writes conn.wbuf (the HELLO). Returns false if the connection was closed.
bool TcpTransport::parse_inbound_locked(Conn& conn) {
  std::size_t pos = 0;
  while (true) {
    if (!conn.hello_received) {
      if (conn.rbuf.size() - pos < wire::kHelloBytes) break;
      wire::Hello hello;
      if (!wire::decode_hello(conn.rbuf.data() + pos, &hello)) return false;
      pos += wire::kHelloBytes;
      const NodeId announced = static_cast<NodeId>(hello.node_id);
      if (conn.dialed) {
        if (announced != conn.peer) return false;  // wrong node at address
      } else {
        if (announced == config_.local_id) return false;
        conn.peer = announced;
        Peer& peer = peer_entry_locked(announced);
        if (peer.address.empty()) {
          // Reachable only through inbound connections: route our outbound
          // frames over this one. A reconnecting peer replaces its old conn.
          if (peer.conn != nullptr && peer.conn != &conn) {
            Conn* old = peer.conn;
            peer.conn = nullptr;
            close_conn_locked(*old, false);
          }
          peer.conn = &conn;
          peer.outq_bytes += peer.outq_off;  // re-send any partial frame whole
          metrics_.outq_bytes.add(static_cast<std::int64_t>(peer.outq_off));
          peer.outq_off = 0;
          peer.dead = false;
        }
      }
      conn.hello_received = true;
      continue;
    }
    if (conn.rbuf.size() - pos < wire::kFrameHeaderBytes) break;
    const std::uint32_t length = wire::get_u32_le(conn.rbuf.data() + pos);
    if (length == 0 || length > config_.max_frame_bytes) return false;
    if (conn.rbuf.size() - pos < wire::kFrameHeaderBytes + length) break;
    MessagePtr msg = decode_message(
        {conn.rbuf.data() + pos + wire::kFrameHeaderBytes, length});
    pos += wire::kFrameHeaderBytes + length;
    metrics_.frames_in.inc();
    if (msg) {
      if (inbox_.push({conn.peer, std::move(msg)})) {
        delivered_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
        metrics_.delivered.inc();
      } else {
        drop_message();
      }
    } else {
      drop_message();  // well-framed but undecodable payload
    }
  }
  if (pos > 0) conn.rbuf.erase(conn.rbuf.begin(), conn.rbuf.begin() + pos);
  return true;
}

void TcpTransport::handle_readable_locked(Conn& conn) {
  while (true) {
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      metrics_.bytes_in.inc(static_cast<std::uint64_t>(n));
      conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn_locked(conn, false);  // EOF or hard error
    return;
  }
  if (!parse_inbound_locked(conn)) close_conn_locked(conn, false);
}

void TcpTransport::flush_peer_locked(Peer& peer) {
  Conn* conn = peer.conn;
  if (conn == nullptr || conn->connecting) return;
  // HELLO first: it must precede every frame on the stream.
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wbuf.data() + conn->woff,
               conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_events_locked(*conn, EPOLLIN | EPOLLOUT);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn_locked(*conn, false);
    return;
  }
  while (!peer.outq.empty()) {
    const std::vector<std::uint8_t>& front = peer.outq.front();
    const ssize_t n = ::send(conn->fd, front.data() + peer.outq_off,
                             front.size() - peer.outq_off, MSG_NOSIGNAL);
    if (n > 0) {
      peer.outq_off += static_cast<std::size_t>(n);
      peer.outq_bytes -= static_cast<std::size_t>(n);
      metrics_.bytes_out.inc(static_cast<std::uint64_t>(n));
      metrics_.outq_bytes.sub(n);
      if (peer.outq_off == front.size()) {
        peer.outq.pop_front();
        peer.outq_off = 0;
        metrics_.frames_out.inc();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn_locked(*conn, false);
    return;
  }
  update_events_locked(
      *conn, peer.outq.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT));
}

void TcpTransport::handle_writable_locked(Conn& conn) {
  if (conn.connecting) {
    finish_connect_locked(conn);
    // finish_connect may have closed the conn; callers re-look it up.
    return;
  }
  if (conn.peer >= 0) {
    auto it = peers_.find(conn.peer);
    if (it != peers_.end() && it->second.conn == &conn) {
      flush_peer_locked(it->second);
      return;
    }
  }
  // Inbound-only connection (e.g. a replica peer dialing us): only the
  // HELLO ever sits in its write buffer.
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_conn_locked(conn, false);
    return;
  }
  update_events_locked(conn, EPOLLIN);
}

std::uint64_t TcpTransport::next_timer_locked(std::uint64_t now) const {
  std::uint64_t next = 0;
  for (const auto& [id, peer] : peers_) {
    if (peer.dead || peer.conn != nullptr || peer.address.empty() ||
        peer.outq_bytes == 0) {
      continue;
    }
    const std::uint64_t at = peer.next_retry_ns > now ? peer.next_retry_ns : now;
    if (next == 0 || at < next) next = at;
  }
  return next;  // 0: nothing scheduled
}

void TcpTransport::io_loop() {
  MutexLock lock(mu_);
  while (true) {
    if (stopping_) break;
    const std::uint64_t now = now_ns();
    // Kick pending traffic: dial disconnected peers, flush connected ones.
    for (auto& [id, peer] : peers_) {
      if (peer.outq_bytes == 0) continue;
      if (peer.conn == nullptr) {
        maybe_dial_locked(id, peer, now);
      } else if (!peer.conn->connecting) {
        flush_peer_locked(peer);
      }
    }
    int timeout_ms = 1000;
    const std::uint64_t next = next_timer_locked(now);
    if (next != 0) {
      const std::uint64_t delta = next > now ? next - now : 0;
      timeout_ms = static_cast<int>(delta / 1'000'000ull) + 1;
      if (timeout_ms > 1000) timeout_ms = 1000;
    }

    epoll_event events[64];
    lock.unlock();
    const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);  // NOLINT(psmr-blocking-under-lock) lock released across the wait (unlock/lock pair)
    lock.lock();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagWake) {
        std::uint64_t buf;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &buf, sizeof(buf));
        continue;
      }
      if (tag == kTagListener) {
        accept_ready_locked();
        continue;
      }
      auto it = conns_.find(static_cast<int>(tag));
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        if (conn->connecting) {
          close_conn_locked(*conn, /*connect_failed=*/true);
        } else {
          // Drain remaining inbound bytes (EPOLLHUP can coincide with
          // buffered data), then close via the read path.
          handle_readable_locked(*conn);
        }
        continue;
      }
      if (events[i].events & EPOLLOUT) handle_writable_locked(*conn);
      if (conns_.find(static_cast<int>(tag)) == conns_.end()) continue;
      if (events[i].events & EPOLLIN) handle_readable_locked(*conn);
    }
  }

  // Graceful shutdown: flush queued outbound frames for up to
  // drain_timeout_ms, then close everything.
  const std::uint64_t deadline =
      now_ns() + config_.drain_timeout_ms * 1'000'000ull;
  while (now_ns() < deadline) {
    bool pending = false;
    for (auto& [id, peer] : peers_) {
      if (peer.conn != nullptr && !peer.conn->connecting &&
          (peer.outq_bytes > 0 || peer.conn->woff < peer.conn->wbuf.size())) {
        flush_peer_locked(peer);
        if (peer.conn != nullptr && peer.outq_bytes > 0) pending = true;
      }
    }
    if (!pending) break;
    epoll_event events[16];
    lock.unlock();
    epoll_wait(epoll_fd_, events, 16, 10);  // NOLINT(psmr-blocking-under-lock) lock released across the wait (unlock/lock pair)
    lock.lock();
  }
  while (!conns_.empty()) {
    close_conn_locked(*conns_.begin()->second, false);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

}  // namespace psmr
