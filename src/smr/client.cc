#include "smr/client.h"

#include "broadcast/messages.h"
#include "common/stopwatch.h"

namespace psmr {

SmrClient::SmrClient(Transport& net, std::vector<NodeId> replicas,
                     Config config, std::function<Command()> next_command)
    : net_(net),
      replicas_(std::move(replicas)),
      config_(config),
      next_command_(std::move(next_command)),
      metrics_{MetricsRegistry::global().counter("client.issued"),
               MetricsRegistry::global().counter("client.completed"),
               MetricsRegistry::global().counter("client.resends"),
               MetricsRegistry::global().counter("client.duplicate_replies"),
               MetricsRegistry::global().gauge("client.pipeline")} {
  endpoint_ = net_.add_endpoint(
      [this](NodeId from, MessagePtr m) { handle_message(from, std::move(m)); });
}

SmrClient::~SmrClient() {
  // Deregister before touching any state: the transport guarantees no
  // handle_message invocation is in flight once remove_endpoint returns, so
  // a reply racing the destructor can no longer land on a dying object.
  net_.remove_endpoint(endpoint_);
  {
    MutexLock lock(mu_);
    stopping_ = true;
    issuing_ = false;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void SmrClient::start() {
  MutexLock lock(mu_);
  if (issuing_ || stopping_) return;
  issuing_ = true;
  for (int i = 0; i < config_.pipeline; ++i) issue_one_locked();
  if (!timer_.joinable()) {
    timer_ = std::thread([this] { timer_loop(); });
  }
}

void SmrClient::stop() {
  MutexLock lock(mu_);
  issuing_ = false;
}

bool SmrClient::drain(std::uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  MutexLock lock(mu_);
  issuing_ = false;
  while (!outstanding_.empty()) {
    if (drained_cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      return outstanding_.empty();
    }
  }
  return true;
}

void SmrClient::issue_one_locked() {
  Command c = next_command_();
  c.client = static_cast<std::uint64_t>(endpoint_);
  c.client_seq = next_seq_++;
  const std::uint64_t now = now_ns();
  outstanding_[c.client_seq] = {c, now, now};
  metrics_.issued.inc();
  metrics_.pipeline.add(1);
  send_to_all_locked(c);
}

void SmrClient::send_to_all_locked(const Command& c) {
  auto m = make_message<RequestMsg>(std::vector<Command>{c});
  for (NodeId replica : replicas_) net_.send(endpoint_, replica, m);
}

void SmrClient::handle_message(NodeId /*from*/, const MessagePtr& m) {
  if (m->type != msg::kReply) return;
  const auto& reply = message_as<ReplyMsg>(m);
  MutexLock lock(mu_);
  auto it = outstanding_.find(reply.client_seq);
  if (it == outstanding_.end()) {
    metrics_.duplicate_replies.inc();
    return;  // completed already — another replica answered first
  }
  latency_.record(now_ns() - it->second.issued_ns);
  outstanding_.erase(it);
  completed_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  metrics_.completed.inc();
  metrics_.pipeline.sub(1);
  if (issuing_) {
    issue_one_locked();
  } else if (outstanding_.empty()) {
    drained_cv_.notify_all();
  }
}

void SmrClient::timer_loop() {
  MutexLock lock(mu_);
  while (!stopping_) {
    // Interruptible tick: the destructor sets stopping_ and notifies, so
    // shutdown never waits out the remainder of a tick interval.
    timer_cv_.wait_for(mu_, std::chrono::milliseconds(config_.tick_interval_ms));
    if (stopping_) return;
    const std::uint64_t now = now_ns();
    const std::uint64_t timeout_ns = config_.resend_timeout_ms * 1'000'000ull;
    for (auto& [seq, entry] : outstanding_) {
      if (now - entry.last_sent_ns >= timeout_ns) {
        entry.last_sent_ns = now;
        metrics_.resends.inc();
        send_to_all_locked(entry.cmd);
      }
    }
  }
}

Histogram SmrClient::latency_snapshot() const {
  MutexLock lock(mu_);
  return latency_;
}

}  // namespace psmr
