#include "smr/replica.h"

#include <cstdio>
#include <future>
#include <thread>

#include "codec/codec.h"
#include "common/stopwatch.h"
#include "cos/early_sched.h"

namespace psmr {

namespace {
// Reply-cache entries older than this (per client, in client_seq distance)
// are pruned; clients never have anywhere near this many outstanding.
constexpr std::uint64_t kReplyCacheWindow = 1024;
}  // namespace

Replica::Replica(Transport& net, int index, std::unique_ptr<Service> service,
                 Config config)
    : net_(net),
      index_(index),
      config_(config),
      policy_(config.effective_policy()),
      service_(std::move(service)),
      metrics_{MetricsRegistry::global().counter("scheduler.batches"),
               MetricsRegistry::global().counter("scheduler.batch_commands"),
               MetricsRegistry::global().counter("scheduler.dedup_hits"),
               MetricsRegistry::global().counter("replica.reply_cache_hits"),
               MetricsRegistry::global().counter("worker.exec_ns"),
               MetricsRegistry::global().counter("worker.stall_ns"),
               MetricsRegistry::global().counter("scheduler.dropped_deliveries"),
               MetricsRegistry::global().gauge("scheduler.queue_depth"),
               MetricsRegistry::global().histogram("scheduler.batch_size")} {
  endpoint_ = net_.add_endpoint(
      [this](NodeId from, MessagePtr m) { handle_message(from, std::move(m)); });
  if (policy_ != SchedulerPolicy::kSequential) {
    CosOptions cos_options = config_.cos;
    cos_options.conflict = service_->conflict();
    if (policy_ == SchedulerPolicy::kParallelInsert) {
      // Falls back to the serial DAG when the service's relation is opaque
      // (no key space to shard).
      cos_ = make_parallel_insert_cos(cos_options);
    } else {
      auto dag = make_cos(cos_options);
      if (policy_ == SchedulerPolicy::kEarlyScheduling) {
        cos_ = std::make_unique<EarlyCos>(std::move(dag),
                                          service_->class_map(),
                                          config_.workers,
                                          cos_options.capacity);
      } else {
        cos_ = std::move(dag);
      }
    }
  }
}

// All delivery-path hand-offs to the scheduler queue go through here: a
// false return from BlockingQueue::push means the item was *dropped* (the
// queue only rejects after close()). By the time stop() closes the queue it
// has already cleared running_ — and that store happens-before the push's
// failed locked read — so a rejection observed while running_ is still set
// is a genuine lost delivery, not a shutdown race. Make that loud instead
// of letting it masquerade as a lost command.
bool Replica::push_delivery(Delivery d, const char* what) {
  if (delivered_.push(std::move(d))) {
    metrics_.queue_depth.add(1);
    return true;
  }
  if (running_.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; ordering given by the queue mutex (see above)
    metrics_.dropped_deliveries.inc();
    std::fprintf(stderr,
                 "psmr replica %d: dropped %s on a closed scheduler queue "
                 "while running\n",
                 index_, what);
  }
  return false;
}

Replica::~Replica() {
  // Deregister first: once remove_endpoint returns, no handle_message can
  // be running or start, so stop() tears down state no handler touches.
  net_.remove_endpoint(endpoint_);
  stop();
}

void Replica::connect(const std::vector<NodeId>& replica_endpoints) {
  broadcast_owner_ = std::make_unique<SequencedBroadcast>(
      net_, endpoint_, index_, replica_endpoints, config_.broadcast,
      [this](std::uint64_t seq, const std::vector<Command>& batch) {
        push_delivery({seq, batch, nullptr}, "delivered batch");
      });
  // Lagging beyond the peers' log retention: ask the peer that showed us
  // the gap for a checkpoint.
  // Careful: the gap handler runs with the broadcast engine's mutex held,
  // so it must not call back into the engine (hence the watermark is passed
  // in rather than queried).
  broadcast_owner_->set_gap_handler(
      [this](NodeId peer, std::uint64_t delivered) {
        net_.send(endpoint_, peer, make_message<StateRequestMsg>(delivered));
      });
  // Publish only after the engine is fully wired: dispatcher threads that
  // observe the pointer must see a complete object.
  broadcast_.store(broadcast_owner_.get(), std::memory_order_release);
}

void Replica::start() {
  if (running_.exchange(true)) return;
  broadcast_.load(std::memory_order_acquire)->start();
  scheduler_ = std::thread([this] { scheduler_loop(); });
  if (policy_ != SchedulerPolicy::kSequential) {
    for (int w = 0; w < config_.workers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

void Replica::stop() {
  if (!running_.exchange(false)) return;
  if (auto* b = broadcast_.load(std::memory_order_acquire)) b->stop();
  delivered_.close();
  if (cos_) cos_->close();
  if (scheduler_.joinable()) scheduler_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The scheduler may have exited (COS closed) with control tasks still
  // queued; run them here so their waiters (e.g. a blocked state_digest)
  // unblock. All replica threads are joined, so this is race-free.
  while (auto leftover = delivered_.pop()) {
    metrics_.queue_depth.sub(1);
    if (leftover->control) leftover->control();
  }
}

void Replica::crash() {
  net_.crash(endpoint_);
  stop();
}

void Replica::handle_message(NodeId from, const MessagePtr& m) {
  switch (m->type) {
    case msg::kRequest:
      on_request(from, message_as<RequestMsg>(m));
      break;
    case msg::kReply:
      break;  // replicas do not consume replies
    case msg::kStateRequest:
      // Serve at the next quiescent point of the scheduler.
      push_delivery({0, {}, [this, from] { serve_state_request(from); }},
                    "state request");
      break;
    case msg::kStateResponse: {
      auto keep_alive = m;  // control task outlives this handler frame
      push_delivery({0,
                     {},
                     [this, keep_alive] {
                       apply_state_response(
                           message_as<StateResponseMsg>(keep_alive));
                     }},
                    "state response");
      break;
    }
    default:
      if (auto* b = broadcast_.load(std::memory_order_acquire)) {
        b->handle(from, m);
      }
      break;
  }
}

void Replica::on_request(NodeId from, const RequestMsg& m) {
  // Answer retransmissions of already-executed commands from the cache and
  // forward the rest into the ordering protocol (effective only if leader).
  std::vector<Command> fresh;
  fresh.reserve(m.commands.size());
  {
    MutexLock lock(clients_mu_);
    for (Command c : m.commands) {
      c.client = static_cast<std::uint64_t>(from);  // authoritative source
      auto it = clients_.find(c.client);
      if (it != clients_.end()) {
        auto cached = it->second.replies.find(c.client_seq);
        if (cached != it->second.replies.end()) {
          const Response& r = cached->second;
          metrics_.reply_cache_hits.inc();
          net_.send(endpoint_, from,
                    make_message<ReplyMsg>(r.client_seq, r.value, r.ok));
          continue;
        }
      }
      fresh.push_back(c);
    }
  }
  auto* b = broadcast_.load(std::memory_order_acquire);
  if (!fresh.empty() && b != nullptr) b->submit(fresh);
}

void Replica::scheduler_loop() {
  while (auto delivery = delivered_.pop()) {
    metrics_.queue_depth.sub(1);
    if (delivery->control) {
      wait_quiescent();
      delivery->control();
      continue;
    }
    last_processed_seq_ = delivery->seq;
    metrics_.batches.inc();
    metrics_.batch_commands.inc(delivery->batch.size());
    metrics_.batch_size.record(delivery->batch.size());
    // At-most-once filtering (drop retransmissions / view-change
    // re-proposals), then hand the surviving commands to the COS as one
    // batch — the lock-free DAG inserts them in a single traversal.
    std::vector<Command> fresh;
    fresh.reserve(delivery->batch.size());
    {
      MutexLock lock(clients_mu_);
      for (const Command& c : delivery->batch) {
        auto& state = clients_[c.client];
        if (c.client != 0 && c.client_seq <= state.max_inserted_seq) {
          metrics_.dedup_hits.inc();
          continue;
        }
        state.max_inserted_seq = c.client_seq;
        fresh.push_back(c);
        fresh.back().id = next_command_id_++;
      }
    }
    scheduled_count_ += fresh.size();
    if (policy_ == SchedulerPolicy::kSequential) {
      for (const Command& c : fresh) execute_and_reply(c);
    } else if (!fresh.empty()) {
      if (!cos_->insert_batch(fresh)) return;  // closed
      population_sum_.fetch_add(cos_->approx_size(),
                                std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      population_samples_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    }
  }
}

void Replica::worker_loop() {
  while (true) {
    if constexpr (kMetricsEnabled) {
      const std::uint64_t t0 = now_ns();
      CosHandle h = cos_->get();
      if (!h) return;  // closed
      const std::uint64_t t1 = now_ns();
      metrics_.worker_stall_ns.inc(t1 - t0);
      execute_and_reply(*h.cmd);
      metrics_.worker_exec_ns.inc(now_ns() - t1);
      cos_->remove(h);
    } else {
      CosHandle h = cos_->get();
      if (!h) return;  // closed
      execute_and_reply(*h.cmd);
      cos_->remove(h);
    }
  }
}

void Replica::execute_and_reply(const Command& c) {
  const Response r = service_->execute(c);
  // Release so that wait_quiescent's acquire load of executed_ makes this
  // thread's service-state writes visible to the scheduler.
  executed_.fetch_add(1, std::memory_order_release);
  if (c.client == 0) return;  // internally generated (tests)
  {
    MutexLock lock(clients_mu_);
    auto& state = clients_[c.client];
    state.replies[c.client_seq] = r;
    // Bounded cache: drop entries far behind.
    if (state.replies.size() > kReplyCacheWindow) {
      for (auto it = state.replies.begin(); it != state.replies.end();) {
        if (it->first + kReplyCacheWindow < c.client_seq) {
          it = state.replies.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  net_.send(endpoint_, static_cast<NodeId>(c.client),
            make_message<ReplyMsg>(r.client_seq, r.value, r.ok));
}

// Spins until every command handed off so far has been executed. Only
// called from the scheduler thread, so nothing new is being scheduled while
// we wait. Workers bump executed_ with release right after the service
// call, so once the acquire load reaches scheduled_count_ every worker's
// service-state writes happen-before this return — the service may be read
// without synchronization until the scheduler hands off more work.
void Replica::wait_quiescent() {
  while (executed_.load(std::memory_order_acquire) < scheduled_count_ &&
         running_.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
    std::this_thread::yield();
  }
}

std::uint64_t Replica::state_digest() {
  auto sample = std::make_shared<std::promise<std::uint64_t>>();
  auto result = sample->get_future();
  const bool queued = push_delivery(
      {0, {}, [this, sample] { sample->set_value(service_->state_digest()); }},
      "state-digest control task");
  if (!queued) {
    // Queue closed: the replica is stopped and all its threads are joined,
    // so a direct read cannot race.
    return service_->state_digest();
  }
  return result.get();
}

// Checkpoint = service snapshot + the per-client at-most-once table (so a
// restored replica keeps rejecting retransmissions of commands the
// checkpoint already contains). Reply caches are intentionally not shipped:
// the peers that produced the checkpoint still hold theirs, and the crash
// model guarantees a correct replica can answer retransmissions.
std::vector<std::uint8_t> Replica::encode_checkpoint() {
  ByteWriter out;
  const std::vector<std::uint8_t> service_bytes = service_->snapshot();
  out.put_bytes(service_bytes);
  MutexLock lock(clients_mu_);
  out.put_varint(clients_.size());
  for (const auto& [client, state] : clients_) {
    out.put_varint(client);
    out.put_varint(state.max_inserted_seq);
  }
  return out.take();
}

bool Replica::decode_checkpoint(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::vector<std::uint8_t> service_bytes = in.get_bytes();
  if (!in.ok() || !service_->restore(service_bytes)) return false;
  const std::uint64_t clients = in.get_varint();
  if (!in.ok() || clients > in.remaining() + 1) return false;
  std::unordered_map<std::uint64_t, ClientState> table;
  for (std::uint64_t i = 0; i < clients; ++i) {
    const std::uint64_t client = in.get_varint();
    table[client].max_inserted_seq = in.get_varint();
  }
  if (!in.ok()) return false;
  MutexLock lock(clients_mu_);
  clients_ = std::move(table);
  return true;
}

void Replica::serve_state_request(NodeId peer) {
  // Runs quiescent on the scheduler thread: every command up to
  // last_processed_seq_ is reflected in the service state.
  net_.send(endpoint_, peer,
            make_message<StateResponseMsg>(last_processed_seq_,
                                           view(),
                                           encode_checkpoint()));
}

void Replica::apply_state_response(const StateResponseMsg& m) {
  auto* b = broadcast_.load(std::memory_order_acquire);
  if (m.checkpoint_seq <= last_processed_seq_ ||
      m.checkpoint_seq <= b->last_delivered()) {
    return;  // stale or duplicate response
  }
  if (!decode_checkpoint(m.snapshot)) return;  // corrupt; try again later
  last_processed_seq_ = m.checkpoint_seq;
  b->install_checkpoint(m.checkpoint_seq);
  state_transfers_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
}

double Replica::mean_graph_population() const {
  const std::uint64_t samples =
      population_samples_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  if (samples == 0) return 0.0;
  return static_cast<double>(
             population_sum_.load(std::memory_order_relaxed)) /  // NOLINT(psmr-relaxed-order-audit) stat counter
         static_cast<double>(samples);
}

}  // namespace psmr
