#include "smr/deployment.h"

namespace psmr {

Deployment::Deployment(Config config, const ServiceFactory& make_service)
    : config_(config),
      net_(config.transport_factory
               ? config.transport_factory()
               : std::make_unique<SimNetwork>(config.net)) {
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(config_.replicas));
  for (int i = 0; i < config_.replicas; ++i) {
    replicas_.push_back(std::make_unique<Replica>(*net_, i, make_service(),
                                                  config_.replica));
    endpoints.push_back(replicas_.back()->endpoint());
  }
  for (auto& replica : replicas_) replica->connect(endpoints);
}

Deployment::~Deployment() { stop(); }

SmrClient& Deployment::add_client(SmrClient::Config config,
                                  std::function<Command()> next_command) {
  std::vector<NodeId> endpoints;
  endpoints.reserve(replicas_.size());
  for (auto& replica : replicas_) endpoints.push_back(replica->endpoint());
  clients_.push_back(std::make_unique<SmrClient>(
      *net_, std::move(endpoints), config, std::move(next_command)));
  if (started_) clients_.back()->start();
  return *clients_.back();
}

void Deployment::start() {
  if (started_) return;
  started_ = true;
  for (auto& replica : replicas_) replica->start();
  for (auto& client : clients_) client->start();
}

void Deployment::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& client : clients_) client->drain(2000);
  // Network first: after shutdown() no handler can run, so replica/client
  // objects can die safely.
  net_->shutdown();
  for (auto& replica : replicas_) replica->stop();
}

std::vector<SmrClient*> Deployment::clients() {
  std::vector<SmrClient*> out;
  out.reserve(clients_.size());
  for (auto& client : clients_) out.push_back(client.get());
  return out;
}

std::uint64_t Deployment::total_client_completed() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) total += client->completed();
  return total;
}

bool Deployment::states_converged() const {
  bool first = true;
  std::uint64_t digest = 0;
  for (const auto& replica : replicas_) {
    if (net_->crashed(replica->endpoint())) continue;
    const std::uint64_t d = replica->state_digest();
    if (first) {
      digest = d;
      first = false;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

}  // namespace psmr
