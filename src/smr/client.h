// Closed-loop SMR client.
//
// Keeps `pipeline` commands outstanding: each command is sent to every
// replica (the leader orders it, every replica executes and replies, the
// first reply completes it) and a new command is issued on completion.
// Commands unanswered for resend_timeout are retransmitted to all replicas
// — the at-most-once logic at the replicas absorbs duplicates — which is
// what carries clients across leader crashes and view changes.
//
// Latency is recorded per command (issue -> first reply) in a histogram;
// completed-command counts are exposed for throughput windows.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "cos/command.h"
#include "net/transport.h"

namespace psmr {

class SmrClient {
 public:
  struct Config {
    int pipeline = 1;
    std::uint64_t resend_timeout_ms = 1000;
    std::uint64_t tick_interval_ms = 20;
  };

  // `next_command` produces the workload; it is called from network/timer
  // threads (one call at a time, synchronized internally).
  SmrClient(Transport& net, std::vector<NodeId> replicas, Config config,
            std::function<Command()> next_command);
  ~SmrClient();

  SmrClient(const SmrClient&) = delete;
  SmrClient& operator=(const SmrClient&) = delete;

  void start();

  // Stops issuing new commands; outstanding ones may still complete.
  void stop();

  // Stops and waits until nothing is outstanding (or the drain timeout
  // expires). Returns true if fully drained.
  bool drain(std::uint64_t timeout_ms = 2000);

  NodeId endpoint() const { return endpoint_; }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }

  // Snapshot of the latency histogram (thread-safe copy).
  Histogram latency_snapshot() const;

 private:
  struct Outstanding {
    Command cmd;
    std::uint64_t issued_ns;
    std::uint64_t last_sent_ns;
  };

  void handle_message(NodeId from, const MessagePtr& m);
  void issue_one_locked() PSMR_REQUIRES(mu_);
  void send_to_all_locked(const Command& c) PSMR_REQUIRES(mu_);
  void timer_loop();

  Transport& net_;
  const std::vector<NodeId> replicas_;
  const Config config_;
  const std::function<Command()> next_command_;
  NodeId endpoint_ = -1;

  struct Metrics {
    Counter& issued;
    Counter& completed;
    Counter& resends;
    Counter& duplicate_replies;
    Gauge& pipeline;
  };

  // mu_ is held across net_.send (the client rank is the outermost in the
  // lock hierarchy, above the transport rank).
  mutable RankedMutex<lock_rank::kSmrClient> mu_;
  CondVar drained_cv_;
  // Wakes timer_loop between ticks; notified by the destructor so shutdown
  // does not wait out a full tick interval.
  CondVar timer_cv_;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_
      PSMR_GUARDED_BY(mu_);  // by seq
  std::uint64_t next_seq_ PSMR_GUARDED_BY(mu_) = 1;
  bool issuing_ PSMR_GUARDED_BY(mu_) = false;
  bool stopping_ PSMR_GUARDED_BY(mu_) = false;
  Histogram latency_ PSMR_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> completed_{0};
  const Metrics metrics_;
  std::thread timer_;
};

}  // namespace psmr
