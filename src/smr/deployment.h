// Deployment harness: wires a transport, n replicas and a set of
// closed-loop clients into one runnable system, and owns the teardown order
// (the transport is always shut down before any handler's owner dies).
//
// This is the equivalent of the paper's testbed scripts: 3 replicas + client
// machines, run a workload for a while, measure throughput at the servers
// and latency at the clients, and check that replicas converged to the same
// state.
//
// By default the harness runs everything in-process over a SimNetwork; a
// custom `transport_factory` swaps in any other single-fabric Transport.
// Multi-process TCP deployments do not use this class — each process runs
// one node via tools/psmr_node.cc instead, against the same Replica /
// SmrClient code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/sim_network.h"
#include "net/transport.h"
#include "smr/client.h"
#include "smr/replica.h"

namespace psmr {

class Deployment {
 public:
  struct Config {
    int replicas = 3;
    Replica::Config replica;
    SimNetwork::Config net;  // used by the default (SimNetwork) factory
    // Optional override: build the fabric all nodes attach to. The factory
    // must yield a transport whose add_endpoint() assigns ids sequentially
    // from 0 (replicas register first, then clients).
    std::function<std::unique_ptr<Transport>()> transport_factory;
  };

  using ServiceFactory = std::function<std::unique_ptr<Service>()>;

  Deployment(Config config, const ServiceFactory& make_service);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Adds a closed-loop client (before or after start()).
  SmrClient& add_client(SmrClient::Config config,
                        std::function<Command()> next_command);

  void start();  // starts replicas, then clients
  void stop();   // drains clients, stops replicas, shuts the transport down

  Transport& net() { return *net_; }
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  Replica& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  std::vector<SmrClient*> clients();

  std::uint64_t total_client_completed() const;

  // True iff every running replica reports the same service state digest.
  // Quiesce (stop clients / drain) before calling.
  bool states_converged() const;

 private:
  Config config_;
  std::unique_ptr<Transport> net_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<SmrClient>> clients_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace psmr
