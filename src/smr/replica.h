// SMR replica (paper Fig. 1 and Alg. 1).
//
// Parallel mode ("P-SMR"): the atomic-broadcast deliver callback feeds a
// hand-off queue; the *scheduler* (parallelizer) thread pops delivered
// batches, deduplicates retransmissions, stamps delivery order, and inserts
// each command into the COS; a pool of *worker* threads loops
// get -> execute -> remove and replies to the command's client.
//
// Sequential mode (classical SMR): the scheduler thread itself executes
// every command in delivery order — no COS, no workers.
//
// Early-scheduling mode routes most commands straight to per-worker queues
// using the service's static class map and keeps the DAG only as a barrier
// fallback (cos/early_sched.h); the scheduler and worker loops are
// identical — the policy only changes which Cos is constructed.
//
// At-most-once execution: commands are identified by (client, client_seq).
// The scheduler skips any command whose client_seq is not greater than the
// client's highest inserted one (this absorbs both client retransmissions
// and re-proposals after a view change), and the replica answers
// retransmissions of already-executed commands from a bounded reply cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/service.h"
#include "broadcast/sequenced_broadcast.h"
#include "common/blocking_queue.h"
#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "cos/factory.h"
#include "net/transport.h"

namespace psmr {

class Replica {
 public:
  struct Config {
    // How delivery order becomes execution order: the COS dependency
    // graph (default), early scheduling (class-routed worker queues, DAG
    // fallback — uses the service's class_map()), or the classical
    // sequential baseline.
    SchedulerPolicy policy = SchedulerPolicy::kCosDag;
    // Deprecated alias, folded into `policy`: true forces
    // SchedulerPolicy::kSequential regardless of `policy`. Kept for one
    // release for pre-policy callers.
    bool sequential = false;
    // COS construction knobs (kind, capacity, indexed, reclaim,
    // segment_width). `cos.conflict` is ignored — the replica always uses
    // the service's conflict relation.
    CosOptions cos;
    int workers = 4;
    SequencedBroadcast::Config broadcast;

    SchedulerPolicy effective_policy() const {
      return sequential ? SchedulerPolicy::kSequential : policy;
    }
  };

  // Registers this replica's network endpoint. After all replicas of the
  // deployment are constructed, call connect() with every endpoint (in
  // replica-index order), then start().
  Replica(Transport& net, int index, std::unique_ptr<Service> service,
          Config config);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  NodeId endpoint() const { return endpoint_; }
  int index() const { return index_; }

  void connect(const std::vector<NodeId>& replica_endpoints);
  void start();
  void stop();

  // Observability.
  std::uint64_t executed_count() const {
    return executed_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }
  // Samples the service digest at a scheduler quiescent point (a control
  // task, like state transfer), so the read cannot race with worker
  // execution. Blocks until the sample is taken; on a stopped replica it
  // reads directly (all threads are joined).
  std::uint64_t state_digest();
  bool is_leader() const {
    auto* b = broadcast_.load(std::memory_order_acquire);
    return b != nullptr && b->is_leader();
  }
  std::uint64_t view() const {
    auto* b = broadcast_.load(std::memory_order_acquire);
    return b != nullptr ? b->view() : 0;
  }
  const Service& service() const { return *service_; }
  double mean_graph_population() const;

  // Simulates a crash: the endpoint goes silent and all replica threads
  // stop. Used by fault-tolerance tests and the fault_tolerance example.
  void crash();

 private:
  // Scheduler work item: either a delivered batch or a control task (state
  // transfer serve/apply) that must run at a quiescent point, i.e., after
  // every previously delivered command has fully executed.
  struct Delivery {
    std::uint64_t seq = 0;
    std::vector<Command> batch;
    std::function<void()> control;
  };

  struct Metrics {
    Counter& batches;           // delivered batches scheduled
    Counter& batch_commands;    // commands in those batches (pre-dedup)
    Counter& dedup_hits;        // retransmissions dropped by at-most-once
    Counter& reply_cache_hits;  // retransmissions answered from the cache
    Counter& worker_exec_ns;    // total worker time executing commands
    Counter& worker_stall_ns;   // total worker time blocked in cos->get()
    Counter& dropped_deliveries;  // push on a closed queue while running_
    Gauge& queue_depth;         // delivered_ hand-off queue occupancy
    HistogramMetric& batch_size;
  };

  void handle_message(NodeId from, const MessagePtr& m);
  void on_request(NodeId from, const RequestMsg& m);
  // Audited hand-off to the scheduler queue: counts/logs drops that happen
  // while the replica still claims to be running (see replica.cc).
  bool push_delivery(Delivery d, const char* what);
  void scheduler_loop();
  void worker_loop();
  void execute_and_reply(const Command& c);

  // State transfer (all run on the scheduler thread at quiescence).
  void wait_quiescent();
  std::vector<std::uint8_t> encode_checkpoint();
  bool decode_checkpoint(std::span<const std::uint8_t> bytes);
  void serve_state_request(NodeId peer);
  void apply_state_response(const StateResponseMsg& m);

  Transport& net_;
  const int index_;
  const Config config_;
  const SchedulerPolicy policy_;  // config_.effective_policy(), resolved once
  std::unique_ptr<Service> service_;  // NOLINT(psmr-guarded-by-coverage) set in ctor, before any thread starts
  NodeId endpoint_ = -1;  // NOLINT(psmr-guarded-by-coverage) written in connect() before threads start

  // connect() constructs the engine and publishes it through the atomic
  // pointer; on a real transport a peer's message can reach the dispatcher
  // thread before (or during) connect(), so the handoff must be a release/
  // acquire pair, not a bare unique_ptr assignment.
  std::unique_ptr<SequencedBroadcast> broadcast_owner_;  // NOLINT(psmr-guarded-by-coverage) ownership only; access goes through the atomic broadcast_
  std::atomic<SequencedBroadcast*> broadcast_{nullptr};
  BlockingQueue<Delivery> delivered_;

  std::unique_ptr<Cos> cos_;  // NOLINT(psmr-guarded-by-coverage) created in connect() before worker threads start
  std::thread scheduler_;
  std::vector<std::thread> workers_;  // NOLINT(psmr-guarded-by-coverage) created/joined by the owner thread only
  std::atomic<bool> running_{false};

  // Per-client at-most-once state. clients_mu_ is held across net_.send on
  // the reply-cache hit path (its rank precedes the transport rank) and is
  // never held together with COS locks.
  struct ClientState {
    std::uint64_t max_inserted_seq = 0;
    std::unordered_map<std::uint64_t, Response> replies;  // bounded
  };
  mutable RankedMutex<lock_rank::kReplicaClients> clients_mu_;
  std::unordered_map<std::uint64_t, ClientState> clients_
      PSMR_GUARDED_BY(clients_mu_);

  std::atomic<std::uint64_t> executed_{0};
  std::uint64_t scheduled_count_ = 0;  // commands handed off; scheduler only  // NOLINT(psmr-guarded-by-coverage) scheduler thread only
  std::atomic<std::uint64_t> population_sum_{0};
  std::atomic<std::uint64_t> population_samples_{0};
  std::uint64_t next_command_id_ = 1;      // scheduler thread only  // NOLINT(psmr-guarded-by-coverage) scheduler thread only
  std::uint64_t last_processed_seq_ = 0;   // scheduler thread only  // NOLINT(psmr-guarded-by-coverage) scheduler thread only
  std::atomic<std::uint64_t> state_transfers_{0};  // observability
  const Metrics metrics_;

 public:
  // Number of state-transfer checkpoints this replica installed.
  std::uint64_t state_transfers() const {
    return state_transfers_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }
};

}  // namespace psmr
