#include "cos/dep_tracker.h"

#include <utility>

namespace psmr {
namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

KeyIndex::KeyIndex(std::size_t expected_keys) {
  // Size for <=50% load at the expected key count.
  slots_.resize(pow2_at_least(expected_keys * 2));
}

KeyIndex::Slot* KeyIndex::find(std::uint64_t key) {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = key_index_hash(key) & mask;; i = (i + 1) & mask) {
    Slot& s = slots_[i];
    if (s.state == SlotState::kEmpty) return nullptr;
    if (s.state == SlotState::kUsed && s.key == key) return &s;
  }
}

KeyIndex::Slot* KeyIndex::find_or_insert(std::uint64_t key) {
  // Rehash at 70% occupancy (tombstones included, so probe chains stay
  // short even under heavy add/remove churn).
  if (occupied_ * 10 >= slots_.size() * 7) rehash();
  const std::size_t mask = slots_.size() - 1;
  Slot* grave = nullptr;
  for (std::size_t i = key_index_hash(key) & mask;; i = (i + 1) & mask) {
    Slot& s = slots_[i];
    if (s.state == SlotState::kUsed) {
      if (s.key == key) return &s;
      continue;
    }
    if (s.state == SlotState::kTombstone) {
      if (grave == nullptr) grave = &s;
      continue;
    }
    // Empty: the key is absent. Reuse the first tombstone on the chain if
    // we passed one, else claim this slot.
    Slot* dst = grave != nullptr ? grave : &s;
    if (dst == &s) ++occupied_;
    dst->key = key;
    dst->state = SlotState::kUsed;
    ++used_;
    return dst;
  }
}

void KeyIndex::bury(Slot* slot) {
  slot->entries.clear();
  slot->state = SlotState::kTombstone;
  --used_;
}

void KeyIndex::rehash() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  // The 70% occupancy trigger counts tombstones. When live keys fill under
  // ~35% of the table the trigger was tombstone-dominated: rebuilding at the
  // *same* capacity drops every tombstone and restores short probe chains,
  // so sustained add/remove churn over a stable live key-set keeps a bounded
  // table instead of doubling forever. Genuinely full tables still double.
  const bool tombstone_dominated = used_ * 20 < old.size() * 7;
  slots_.resize(tombstone_dominated ? old.size() : old.size() * 2);
  used_ = 0;
  occupied_ = 0;
  for (Slot& s : old) {
    if (s.state != SlotState::kUsed) continue;
    Slot* dst = find_or_insert(s.key);
    dst->entries = std::move(s.entries);
  }
}

void KeyIndex::add(std::span<const std::uint64_t> keys, bool write,
                   void* node) {
  debug_assert_sorted_span(keys);
  const std::uint64_t* prev = nullptr;
  for (const std::uint64_t& key : keys) {
    if (prev != nullptr && *prev == key) continue;
    prev = &key;
    find_or_insert(key)->entries.push_back(Entry{node, write});
  }
}

void KeyIndex::remove(std::span<const std::uint64_t> keys, void* node) {
  debug_assert_sorted_span(keys);
  const std::uint64_t* prev = nullptr;
  for (const std::uint64_t& key : keys) {
    if (prev != nullptr && *prev == key) continue;
    prev = &key;
    Slot* slot = find(key);
    if (slot == nullptr) continue;  // already pruned lazily
    std::vector<Entry>& entries = slot->entries;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].node == node) {
        entries[i] = entries.back();
        entries.pop_back();
        break;  // a node is registered at most once per key
      }
    }
    if (entries.empty()) bury(slot);
  }
}

std::size_t KeyIndex::entry_count() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kUsed) n += s.entries.size();
  }
  return n;
}

void KeyIndex::clear() {
  for (Slot& s : slots_) {
    s.entries.clear();
    s.state = SlotState::kEmpty;
  }
  used_ = 0;
  occupied_ = 0;
}

}  // namespace psmr
