#include "cos/coarse_grained.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "cos/cos_metrics.h"

namespace psmr {

CoarseGrainedCos::CoarseGrainedCos(std::size_t max_size, ConflictFn conflict,
                                   bool indexed)
    : max_size_(max_size),
      conflict_(conflict),
      extract_(indexed ? conflict_key_extractor(conflict) : nullptr),
      index_(extract_ != nullptr ? max_size : 1) {}

CoarseGrainedCos::~CoarseGrainedCos() { close(); }

bool CoarseGrainedCos::insert(const Command& c) {
  MutexLock lock(mu_);
  if constexpr (kMetricsEnabled) {
    if (nodes_.size() >= max_size_ && !closed_) {
      cos_metrics().insert_blocks.inc();
      const std::uint64_t t0 = now_ns();
      while (nodes_.size() >= max_size_ && !closed_) not_full_.wait(mu_);
      cos_metrics().insert_block_ns.inc(now_ns() - t0);
    }
  }
  while (nodes_.size() >= max_size_ && !closed_) not_full_.wait(mu_);
  if (closed_) return false;
  cos_metrics().inserts.inc();

  nodes_.emplace_back(c);
  auto it = std::prev(nodes_.end());
  it->self = it;
  Node& added = *it;

  // Alg. 2 lines 14-16: every older conflicting command must run first.
  if (extract_ != nullptr) {
    // Keyed relation: O(k) index probes. remove() prunes entries eagerly
    // under mu_, so every entry is live; the stamp de-duplicates nodes that
    // share several keys with c.
    const KeyedAccess acc = extract_(c);
    const std::uint64_t stamp = ++probe_seq_;
    index_.for_each_conflicting(
        acc.keys, acc.write, [&](const KeyIndex::Entry& e) {
          Node* node = static_cast<Node*>(e.node);
          if (node->probe_stamp != stamp) {
            node->probe_stamp = stamp;
            node->out.push_back(&added);
            ++added.pending_in;
          }
          return true;
        });
    index_.add(acc.keys, acc.write, &added);
  } else {
    for (auto node = nodes_.begin(); node != it; ++node) {
      if (conflict_(node->cmd, c)) {
        node->out.push_back(&added);
        ++added.pending_in;
      }
    }
  }
  if (added.pending_in == 0) {
    cos_metrics().ready_enq.inc();
    has_ready_.notify_one();
  }
  return true;
}

CosHandle CoarseGrainedCos::get() {
  MutexLock lock(mu_);
  bool blocked = false;
  std::uint64_t t0 = 0;
  while (true) {
    if (closed_) return {};
    // Alg. 2 line 22-26: oldest waiting node with no dependencies.
    for (Node& node : nodes_) {
      if (!node.executing && node.pending_in == 0) {
        node.executing = true;
        if constexpr (kMetricsEnabled) {
          if (blocked) cos_metrics().get_block_ns.inc(now_ns() - t0);
        }
        cos_metrics().gets.inc();
        return {&node.cmd, &node};
      }
    }
    if constexpr (kMetricsEnabled) {
      if (!blocked) {
        blocked = true;
        t0 = now_ns();
        cos_metrics().get_blocks.inc();
      }
    }
    has_ready_.wait(mu_);
  }
}

void CoarseGrainedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);
  MutexLock lock(mu_);
  int freed = 0;
  for (Node* dependent : node->out) {
    if (--dependent->pending_in == 0 && !dependent->executing) ++freed;
  }
  cos_metrics().removes.inc();
  if (freed > 0) cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(freed));
  if (freed == 1) {
    has_ready_.notify_one();
  } else if (freed > 1) {
    has_ready_.notify_all();
  }
  if (extract_ != nullptr) {
    index_.remove(extract_(node->cmd).keys, node);
  }
  nodes_.erase(node->self);
  not_full_.notify_one();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
CoarseGrainedCos::debug_edges() {
  MutexLock lock(mu_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  for (const Node& node : nodes_) {
    for (const Node* dependent : node.out) {
      edges.emplace_back(node.cmd.id, dependent->cmd.id);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

void CoarseGrainedCos::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  has_ready_.notify_all();
}

std::size_t CoarseGrainedCos::approx_size() const {
  MutexLock lock(mu_);
  return nodes_.size();
}

}  // namespace psmr
