#include "cos/coarse_grained.h"

namespace psmr {

CoarseGrainedCos::CoarseGrainedCos(std::size_t max_size, ConflictFn conflict)
    : max_size_(max_size), conflict_(conflict) {}

CoarseGrainedCos::~CoarseGrainedCos() { close(); }

bool CoarseGrainedCos::insert(const Command& c) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [&] { return nodes_.size() < max_size_ || closed_; });
  if (closed_) return false;

  nodes_.emplace_back(c);
  auto it = std::prev(nodes_.end());
  it->self = it;
  Node& added = *it;

  // Alg. 2 lines 14-16: every older conflicting command must run first.
  for (auto node = nodes_.begin(); node != it; ++node) {
    if (conflict_(node->cmd, c)) {
      node->out.push_back(&added);
      ++added.pending_in;
    }
  }
  if (added.pending_in == 0) has_ready_.notify_one();
  return true;
}

CosHandle CoarseGrainedCos::get() {
  std::unique_lock lock(mu_);
  while (true) {
    if (closed_) return {};
    // Alg. 2 line 22-26: oldest waiting node with no dependencies.
    for (Node& node : nodes_) {
      if (!node.executing && node.pending_in == 0) {
        node.executing = true;
        return {&node.cmd, &node};
      }
    }
    has_ready_.wait(lock);
  }
}

void CoarseGrainedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);
  std::lock_guard lock(mu_);
  int freed = 0;
  for (Node* dependent : node->out) {
    if (--dependent->pending_in == 0 && !dependent->executing) ++freed;
  }
  if (freed == 1) {
    has_ready_.notify_one();
  } else if (freed > 1) {
    has_ready_.notify_all();
  }
  nodes_.erase(node->self);
  not_full_.notify_one();
}

void CoarseGrainedCos::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  has_ready_.notify_all();
}

std::size_t CoarseGrainedCos::approx_size() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

}  // namespace psmr
