#include "cos/fine_grained.h"

#include <algorithm>
#include <thread>

#include "cos/cos_metrics.h"

namespace psmr {

FineGrainedCos::FineGrainedCos(std::size_t max_size, ConflictFn conflict,
                               bool indexed)
    : max_size_(max_size),
      conflict_(conflict),
      extract_(indexed ? conflict_key_extractor(conflict) : nullptr),
      index_(extract_ != nullptr ? max_size : 1),
      space_(static_cast<std::ptrdiff_t>(max_size)),
      ready_(0) {
  space_.instrument(&cos_metrics().insert_blocks,
                    &cos_metrics().insert_block_ns);
  ready_.instrument(&cos_metrics().get_blocks, &cos_metrics().get_block_ns);
}

FineGrainedCos::~FineGrainedCos() {
  close();
  // Reclaim whatever is still linked. Workers must have stopped by now
  // (close() unblocked them), so no locks are needed.
  Node* node = head_.next;
  while (node != nullptr) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

bool FineGrainedCos::insert(const Command& c) {
  if (!space_.acquire()) return false;  // closed
  if (extract_ != nullptr) return insert_indexed(c);

  // The new node is unreachable until linked, so its in_count can be
  // written lock-free during the whole scan. (Alg. 4 line 4 locks it up
  // front instead, but that acquires a *later* node's mutex before the
  // hand-over-hand walk takes earlier ones — the lock-order inversion TSan
  // used to report against remove()'s list-order phase-2 walk. Locking it
  // only at link time, below, keeps every node-mutex acquisition in list
  // order.)
  auto* added = new Node(c);

  // Hand-over-hand walk: `prev` is always locked; lock `cur` before
  // releasing `prev` so no operation can overtake us.
  Node* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  Node* cur = prev->next;
  while (cur != nullptr) {
    std::unique_lock cur_lock(cur->mx);
    if (conflict_(cur->cmd, c)) {
      cur->out.insert(added);
      ++added->in_count;
    }
    prev_lock.swap(cur_lock);  // release prev, keep cur
    prev = cur;
    cur = cur->next;
  }
  // `prev` is the last node (or the head sentinel) and is still locked;
  // linking here makes the node visible with all its edges in place. Taking
  // added->mx now (after its predecessor — list order) pins the readiness
  // decision: a remover can reach `added` only through `prev`, so it cannot
  // decrement in_count before the read below, and a decrement that later
  // hits zero sees executing == false and releases the permit itself —
  // exactly one side releases.
  std::unique_lock added_lock(added->mx);
  prev->next = added;
  population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  const bool is_ready = added->in_count == 0;
  prev_lock.unlock();
  added_lock.unlock();
  cos_metrics().inserts.inc();
  if (is_ready) {
    cos_metrics().ready_enq.inc();
    ready_.release();
  }
  return true;
}

// Indexed insert. The pairwise scan's hand-over-hand walk is also a moving
// barrier: no remover can overtake it, which is what makes "record edge,
// then link" safe. The indexed path has no such barrier, so it inverts the
// order — link first, hidden behind executing=true, then wire edges:
//
//   1. Take index_mu_. While it is held no node can be freed (remove()'s
//      deletion fence), so index entries may be dereferenced safely.
//   2. Link at the tail (tail_ shortcut; re-read until live). The node is
//      reachable but executing=true hides it from get(), and a concurrent
//      remove() phase 2 that decrements it will not count it as freed.
//   3. Probe the index: for each live candidate (checked under its mx —
//      defunct nodes are skipped and pruned), record the edge and bump
//      in_count *under the candidate's lock*, so a subsequent removal of
//      the candidate is guaranteed to observe the edge and deliver the
//      decrement (the phase-2 walk reaches us: we are already linked).
//   4. Publish: drop executing under our own lock; if in_count is 0 —
//      every recorded dependency already delivered its decrement — release
//      the ready permit ourselves. Otherwise the final decrement does
//      (it sees executing == false). Exactly one side releases.
//
// Deadlock-freedom: index_mu_ precedes all node locks (removers only take
// it with no node locks held); node locks nest in list order only (a
// candidate precedes the just-linked tail node).
bool FineGrainedCos::insert_indexed(const Command& c) {
  auto* added = new Node(c);
  added->executing = true;  // hidden until fully wired (no lock needed yet)
  const KeyedAccess acc = extract_(c);

  std::unique_lock fence(index_mu_);
  const std::uint64_t stamp = ++probe_seq_;
  while (true) {
    Node* tail = tail_.load(std::memory_order_acquire);
    std::unique_lock tail_lock(tail->mx);
    // tail_ may be stale: the node could have been unlinked (defunct) or a
    // removal repaired tail_ to a node that has since gained a successor.
    // Each retry observes a strictly older list position, and &head_ is
    // never defunct, so this terminates.
    if (!tail->defunct && tail->next == nullptr) {
      tail->next = added;
      tail_.store(added, std::memory_order_release);
      break;
    }
  }

  index_.for_each_conflicting(
      acc.keys, acc.write, [&](const KeyIndex::Entry& e) {
        Node* dep = static_cast<Node*>(e.node);
        if (dep->probe_stamp == stamp) return true;  // seen via another key
        std::unique_lock dep_lock(dep->mx);
        if (dep->defunct) return false;  // mid-removal: no edge, prune entry
        dep->probe_stamp = stamp;
        dep->out.insert(added);
        {
          // Nested inside dep's lock so dep's removal cannot slip between
          // the edge record and the increment.
          std::lock_guard added_lock(added->mx);
          ++added->in_count;
        }
        return true;
      });
  index_.add(acc.keys, acc.write, added);
  fence.unlock();

  population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  bool is_ready = false;
  {
    std::lock_guard added_lock(added->mx);
    added->executing = false;
    is_ready = added->in_count == 0;
  }
  cos_metrics().inserts.inc();
  if (is_ready) {
    cos_metrics().ready_enq.inc();
    ready_.release();
  }
  return true;
}

CosHandle FineGrainedCos::get() {
  if (!ready_.acquire()) return {};  // closed
  cos_metrics().gets.inc();
  while (true) {
    // The permit guarantees a ready node exists *somewhere*; it may be
    // behind us by the time we pass it (another thread's remove() can free
    // nodes anywhere in the list), so on reaching the end we restart.
    Node* prev = &head_;
    std::unique_lock prev_lock(prev->mx);
    Node* cur = prev->next;
    while (cur != nullptr) {
      std::unique_lock cur_lock(cur->mx);
      if (!cur->executing && cur->in_count == 0) {
        cur->executing = true;
        return {&cur->cmd, cur};
      }
      prev_lock.swap(cur_lock);
      prev = cur;
      cur = cur->next;
    }
    prev_lock.unlock();
    if (closed_.load(std::memory_order_acquire)) return {};
    std::this_thread::yield();
  }
}

void FineGrainedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);

  // Phase 1: hand-over-hand to node's predecessor, then unlink node while
  // holding both. After this, no traversal can reach `node`.
  Node* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  while (prev->next != node) {
    Node* cur = prev->next;
    std::unique_lock cur_lock(cur->mx);
    prev_lock.swap(cur_lock);
    prev = cur;
  }
  std::unique_lock node_lock(node->mx);
  node->defunct = true;  // indexed inserts holding a stale entry now skip us
  prev->next = node->next;
  // Repair the inserter's tail shortcut while holding both locks: the
  // inserter compares/links under the tail node's mx, so it either sees the
  // repaired value or finds `node` defunct and retries.
  if (extract_ != nullptr &&
      tail_.load(std::memory_order_relaxed) == node) {  // NOLINT(psmr-relaxed-order-audit) shortcut hint; re-validated under the node locks
    tail_.store(prev, std::memory_order_release);
  }
  Node* successor = node->next;
  // Lock the successor *before* releasing prev: a thread may only wait on
  // (or delete) a node while holding its list predecessor, which for the
  // successor is `prev` once node is unlinked — holding prev here is what
  // keeps the successor alive until we own its lock.
  std::unique_lock<NodeMutex> walk_lock;
  if (successor != nullptr) {
    walk_lock = std::unique_lock(successor->mx);
  }
  prev_lock.unlock();

  // Phase 2: still holding node's lock (so its edge set is stable), walk the
  // successors hand-over-hand and delete outgoing edges, counting nodes that
  // became ready (Alg. 4 lines 32-39).
  int freed = 0;
  if (successor != nullptr) {
    Node* walk = successor;
    while (true) {
      if (node->out.contains(walk)) {
        if (--walk->in_count == 0 && !walk->executing) ++freed;
      }
      Node* next = walk->next;
      if (next == nullptr) break;
      std::unique_lock next_lock(next->mx);
      walk_lock.swap(next_lock);
      walk = next;
    }
  }

  node_lock.unlock();
  if (walk_lock.owns_lock()) walk_lock.unlock();
  if (extract_ != nullptr) {
    // Deletion fence: with *no node locks held* (index_mu_ precedes node
    // locks in the hierarchy), wait out any inserter that may still hold an
    // index entry naming this node, and purge the entries. Only after this
    // is the memory safe to free.
    std::lock_guard fence(index_mu_);
    index_.remove(extract_(node->cmd).keys, node);
  }
  delete node;
  population_.fetch_sub(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  cos_metrics().removes.inc();
  if (freed > 0) cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(freed));
  ready_.release(freed);
  space_.release();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
FineGrainedCos::debug_edges() {
  // Requires quiescence (no concurrent operations), like the destructor.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  for (Node* node = head_.next; node != nullptr; node = node->next) {
    for (const Node* dependent : node->out) {
      edges.emplace_back(node->cmd.id, dependent->cmd.id);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

void FineGrainedCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_.close();
}

}  // namespace psmr
