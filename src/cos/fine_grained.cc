#include "cos/fine_grained.h"

#include <thread>

namespace psmr {

FineGrainedCos::FineGrainedCos(std::size_t max_size, ConflictFn conflict)
    : max_size_(max_size),
      conflict_(conflict),
      space_(static_cast<std::ptrdiff_t>(max_size)),
      ready_(0) {}

FineGrainedCos::~FineGrainedCos() {
  close();
  // Reclaim whatever is still linked. Workers must have stopped by now
  // (close() unblocked them), so no locks are needed.
  Node* node = head_.next;
  while (node != nullptr) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

bool FineGrainedCos::insert(const Command& c) {
  if (!space_.acquire()) return false;  // closed

  // The new node is locked for the whole traversal (Alg. 4 line 4); it is
  // unreachable until linked, so this never contends.
  auto* added = new Node(c);
  std::unique_lock added_lock(added->mx);

  // Hand-over-hand walk: `prev` is always locked; lock `cur` before
  // releasing `prev` so no operation can overtake us.
  Node* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  Node* cur = prev->next;
  while (cur != nullptr) {
    std::unique_lock cur_lock(cur->mx);
    if (conflict_(cur->cmd, c)) {
      cur->out.insert(added);
      ++added->in_count;
    }
    prev_lock.swap(cur_lock);  // release prev, keep cur
    prev = cur;
    cur = cur->next;
  }
  // `prev` is the last node (or the head sentinel) and is still locked;
  // linking here makes the node visible with all its edges in place.
  prev->next = added;
  population_.fetch_add(1, std::memory_order_relaxed);
  const bool is_ready = added->in_count == 0;
  prev_lock.unlock();
  added_lock.unlock();
  if (is_ready) ready_.release();
  return true;
}

CosHandle FineGrainedCos::get() {
  if (!ready_.acquire()) return {};  // closed
  while (true) {
    // The permit guarantees a ready node exists *somewhere*; it may be
    // behind us by the time we pass it (another thread's remove() can free
    // nodes anywhere in the list), so on reaching the end we restart.
    Node* prev = &head_;
    std::unique_lock prev_lock(prev->mx);
    Node* cur = prev->next;
    while (cur != nullptr) {
      std::unique_lock cur_lock(cur->mx);
      if (!cur->executing && cur->in_count == 0) {
        cur->executing = true;
        return {&cur->cmd, cur};
      }
      prev_lock.swap(cur_lock);
      prev = cur;
      cur = cur->next;
    }
    prev_lock.unlock();
    if (closed_.load(std::memory_order_acquire)) return {};
    std::this_thread::yield();
  }
}

void FineGrainedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);

  // Phase 1: hand-over-hand to node's predecessor, then unlink node while
  // holding both. After this, no traversal can reach `node`.
  Node* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  while (prev->next != node) {
    Node* cur = prev->next;
    std::unique_lock cur_lock(cur->mx);
    prev_lock.swap(cur_lock);
    prev = cur;
  }
  std::unique_lock node_lock(node->mx);
  prev->next = node->next;
  Node* successor = node->next;
  // Lock the successor *before* releasing prev: a thread may only wait on
  // (or delete) a node while holding its list predecessor, which for the
  // successor is `prev` once node is unlinked — holding prev here is what
  // keeps the successor alive until we own its lock.
  std::unique_lock<std::mutex> walk_lock;
  if (successor != nullptr) {
    walk_lock = std::unique_lock(successor->mx);
  }
  prev_lock.unlock();

  // Phase 2: still holding node's lock (so its edge set is stable), walk the
  // successors hand-over-hand and delete outgoing edges, counting nodes that
  // became ready (Alg. 4 lines 32-39).
  int freed = 0;
  if (successor != nullptr) {
    Node* walk = successor;
    while (true) {
      if (node->out.contains(walk)) {
        if (--walk->in_count == 0 && !walk->executing) ++freed;
      }
      Node* next = walk->next;
      if (next == nullptr) break;
      std::unique_lock next_lock(next->mx);
      walk_lock.swap(next_lock);
      walk = next;
    }
  }

  node_lock.unlock();
  delete node;
  population_.fetch_sub(1, std::memory_order_relaxed);
  ready_.release(freed);
  space_.release();
}

void FineGrainedCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_.close();
}

}  // namespace psmr
