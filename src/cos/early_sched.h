// Early scheduling — class-routed commands that bypass the DAG
// (arXiv 1805.05152, adapted to this codebase's COS interface).
//
// The paper's §7.3.1 ceiling is the single parallelizer thread: every
// command pays a conflict scan and a graph insertion. Early scheduling
// moves that decision to ordering time: a static *class map* (class_map.h)
// derived from the service's conflict relation routes each command either
// to one worker's private SPSC queue (single-class — the common case) or
// through a synchronization barrier (cross-class / unclassifiable). Only
// barrier commands touch the dependency graph; for everything else the
// insert path is one ring-buffer push.
//
// Implemented as a Cos so the replica's scheduler/worker loops are
// unchanged:
//
//  insert (scheduler thread, delivery order)
//    - single-class c: close any open barrier run, then push c onto its
//      worker's ring. The push IS the schedule: FIFO order per worker
//      preserves delivery order within a class.
//    - sync c: append to the current *run* of consecutive sync commands,
//      inserted into the fallback DAG. A run closes (becomes a *phase*)
//      when a single-class command arrives, the batch ends, or the run
//      hits the DAG capacity; closing pushes one sync token carrying the
//      phase descriptor onto every worker ring.
//
//  get/remove (worker threads)
//    - commands pop in ring order. A sync token is a rendezvous: the
//      worker arrives, waits until all workers arrived (each has drained
//      its queue prefix — this is the barrier that orders the phase after
//      every earlier single-class command), then claims phase commands
//      from the DAG until the phase's claim budget is exhausted, and
//      finally waits until the whole phase has executed before popping on
//      (which orders every later command after the phase).
//
// Phases never overlap: the scheduler waits for the previous phase to
// fully drain before inserting the next run's first command into the DAG,
// so at claim time the DAG holds exactly the current phase's commands.
//
// Threading contract (stricter than the base Cos): exactly `workers`
// consumer threads may call get(), each thread dedicated to this instance
// for its lifetime, and each handle must be remove()d on the thread that
// got it. The replica worker pool and the workload drivers satisfy this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/padded.h"
#include "common/semaphore.h"
#include "common/spsc_ring.h"
#include "cos/class_map.h"
#include "cos/cos.h"

namespace psmr {

class EarlyCos final : public Cos {
 public:
  // `fallback` executes sync phases (any COS variant); `map` routes
  // commands (nullptr = everything sync, correct but all-barrier);
  // `workers` is the exact number of consumer threads; `queue_capacity`
  // is the per-worker ring size (rounded up to a power of two).
  EarlyCos(std::unique_ptr<Cos> fallback, ClassMapFn map, int workers,
           std::size_t queue_capacity = 256);
  ~EarlyCos() override;

  bool insert(const Command& c) override;
  bool insert_batch(std::span<const Command> batch) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  // Quiescence-only, like the base hook; queue-routed commands have no
  // edges, so this is exactly the fallback DAG's edge set.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override {
    return dag_->debug_edges();
  }

  std::size_t capacity() const override;
  std::size_t approx_size() const override {
    return queued_.load(std::memory_order_relaxed) + dag_->approx_size();  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  }
  const char* name() const override { return "early-scheduling"; }

  const Cos& fallback() const { return *dag_; }

 private:
  // One synchronization phase = one closed run of consecutive sync
  // commands. Shared by the scheduler and all workers via shared_ptr
  // (tokens in flight keep it alive after the scheduler moves on).
  struct SyncPhase {
    SyncPhase(std::size_t n, std::size_t w) : count(n), workers(w) {}
    const std::size_t count;    // commands in the phase (all in the DAG)
    const std::size_t workers;  // rendezvous population
    std::atomic<std::size_t> arrived{0};
    std::atomic<std::size_t> claimed{0};
    std::atomic<std::size_t> executed{0};
  };

  struct Item {
    enum Kind : std::uint8_t { kCmd, kSync };
    Kind kind = kCmd;
    Command cmd{};
    std::shared_ptr<SyncPhase> phase;  // kSync only
  };

  struct alignas(kCacheLineSize) Worker {
    explicit Worker(std::size_t capacity) : ring(capacity) {}
    SpscRing<Item> ring;
    Semaphore items;  // one permit per ring item
    // Consumer-thread scratch for the single outstanding handle.
    Command current{};
    CosHandle dag_handle{};
    std::shared_ptr<SyncPhase> phase;  // set while draining a phase
    bool from_dag = false;
  };

  enum class Claim { kGot, kExhausted, kClosed };

  // Registers the calling thread as a consumer on first use.
  Worker& self();

  bool insert_one(const Command& c);
  // Seals the open run into a phase and pushes its tokens. No-op when the
  // run is empty. Returns false iff closed.
  bool close_run();
  // Parks the scheduler until the previous phase fully executed (phases
  // must not overlap in the DAG). Returns false iff closed.
  bool wait_phase_drained();
  bool push_item(Worker& w, const Item& item);
  Claim claim_from_phase(Worker& w, CosHandle* out);

  const std::unique_ptr<Cos> dag_;
  const ClassMapFn map_;
  const std::uint64_t id_;  // process-unique, for consumer registration
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_consumer_{0};
  std::atomic<std::size_t> queued_{0};  // ring-resident + executing commands
  std::atomic<bool> closed_{false};

  // Scheduler-thread-only run state.
  std::size_t run_count_ = 0;
  std::shared_ptr<SyncPhase> last_phase_;

  Counter& class_hits_;     // scheduler.class_hits
  Counter& barrier_waits_;  // scheduler.barrier_waits
  Gauge& queue_depth_;      // scheduler.class_queue_depth
};

}  // namespace psmr
