// Lock-free DAG — the paper's Algorithms 5, 6 and 7.
//
// Two layers, as in §6:
//  - A blocking layer of two counting semaphores handles the inherently
//    blocking conditions: `space` parks insert() while the graph is full,
//    `ready` parks get() while no command is ready (Alg. 5).
//  - A lock-free layer implements the graph. Nodes carry an atomic state
//    traversed in one direction (wtg -> rdy -> exe -> rmd); get() reserves a
//    node with a single CAS (rdy -> exe); remove() is a *logical* removal
//    (store rmd) plus readiness tests on dependents; *physical* removal is
//    lazy, performed by the (single) insert thread when its traversal finds
//    a logically removed node — the paper's helpedRemove.
//
// Memory reclamation: the paper runs on the JVM and leans on GC for
// traversal safety. Here, every operation pins an epoch (memory/ebr.h) and
// helpedRemove retires unlinked nodes to the epoch domain, which frees them
// only after two epoch advances — i.e., when no pinned traversal can still
// hold a reference. A leak mode (reclaim nothing until destruction) exists
// for the reclamation ablation bench.
//
// Deviations from the pseudocode (documented in DESIGN.md):
//  - Nodes are created in an extra state `ins` ("inserting") and switch to
//    wtg only after the insert thread has recorded *all* dependency edges
//    and linked the node. Without it, a concurrent lfRemove of an
//    early-recorded dependency could observe the node with a partially
//    built dep_on set and wrongly mark it ready (the paper notes the
//    all-edges-before-visible requirement in §6.2 but createNode starts
//    nodes at wtg, leaving the window open).
//  - lfGet restarts from the head if it reaches the end of the list without
//    reserving a node (its ready permit may correspond to a node behind the
//    traversal cursor).
//  - The atomics on the state/readiness handshake are seq_cst: the exact-
//    once accounting of ready permits relies on the single total order (see
//    the comment on test_ready).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/semaphore.h"
#include "cos/cos.h"
#include "cos/dep_tracker.h"
#include "cos/reclaim.h"
#include "memory/ebr.h"

namespace psmr {

class LockFreeCos final : public Cos {
 public:
  LockFreeCos(std::size_t max_size, ConflictFn conflict,
              LockFreeReclaim reclaim = LockFreeReclaim::kEpoch,
              bool indexed = true);
  ~LockFreeCos() override;

  bool insert(const Command& c) override;
  bool insert_batch(std::span<const Command> batch) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override;

  std::size_t capacity() const override { return max_size_; }
  std::size_t approx_size() const override {
    return population_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  }
  const char* name() const override { return "lock-free"; }

  // Reclamation statistics, for tests and the ablation bench.
  std::uint64_t nodes_reclaimed() const { return ebr_.total_freed(); }
  std::size_t nodes_pending_reclaim() const {
    return ebr_.retired_pending() + leaked_.size();
  }

 private:
  enum State : std::uint8_t { kIns = 0, kWtg = 1, kRdy = 2, kExe = 3, kRmd = 4 };

  struct Node {
    explicit Node(const Command& command) : cmd(command) {}
    ~Node();

    Command cmd;
    std::atomic<std::uint8_t> st{kIns};

    // Dependencies of this node (edges from older nodes). Sized exactly and
    // written by the insert thread before the node leaves state ins;
    // afterwards entries are only *cleared* (to nullptr, by the insert
    // thread during helpedRemove of the dependency). `dep_on_count` is
    // plain: it is final before the ins -> wtg transition that readers must
    // observe first.
    std::unique_ptr<std::atomic<Node*>[]> dep_on;
    std::size_t dep_on_count = 0;

    // Dependents of this node (edges to newer nodes). Append-only,
    // written only by the insert thread, read concurrently by removers:
    // a growable array published via atomic pointer + count. Readers load
    // the count first, then the array — a newer (larger) array always
    // contains every entry a previously published count covers, and
    // superseded arrays are retired through the COS's epoch domain while
    // readers may still hold them.
    std::atomic<std::atomic<Node*>*> dep_me{nullptr};
    std::atomic<std::size_t> dep_me_count{0};
    std::size_t dep_me_capacity = 0;  // insert thread only

    std::uint64_t probe_stamp = 0;  // insert-thread-only probe de-dup

    std::atomic<Node*> nxt{nullptr};
  };

  // Lock-free layer (Alg. 7). Return values are the number of nodes that
  // became ready, to be published as `ready` permits by the blocking layer.
  int lf_insert(const Command& c);
  int lf_insert_indexed(const Command& c);
  int lf_insert_batch(std::span<const Command> batch);
  Node* lf_get();
  int lf_remove(Node* n);

  static int test_ready(Node* n);
  void helped_remove(Node* gone, Node* prev);
  void append_dependent(Node* node, Node* dependent);

  // Indexed mode: physically unlinks every logically removed node (the
  // pairwise walk does this in passing; the indexed insert doesn't walk).
  // Insert thread only. Triggered when rmd_pending_ crosses the threshold.
  void sweep_removed();
  std::size_t sweep_threshold() const {
    return max_size_ / 2 > 64 ? max_size_ / 2 : 64;
  }

  const std::size_t max_size_;
  const ConflictFn conflict_;
  const LockFreeReclaim reclaim_;
  // Indexed mode. The index is touched *only* by the insert thread, and an
  // entry's node is retired to the EBR domain strictly after helped_remove
  // purged its entries — so entries may name logically removed (kRmd) nodes,
  // which probes prune lazily, but never freed memory.
  const KeyExtractor extract_;
  KeyIndex index_;
  std::uint64_t probe_seq_ = 0;            // inserter only
  Node* tail_ = nullptr;                   // inserter only; last linked node
  std::atomic<std::size_t> rmd_pending_{0};  // logical removals not yet swept

  Semaphore space_;
  Semaphore ready_;
  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> population_{0};
  std::atomic<bool> closed_{false};

  mutable EbrDomain ebr_;
  std::vector<Node*> leaked_;        // kLeak mode: inserter only
  std::vector<Node*> scratch_deps_;  // insert-walk scratch: inserter only
};

}  // namespace psmr
