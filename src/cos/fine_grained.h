// Fine-grained DAG — the paper's Algorithms 3 and 4.
//
// Each graph node carries its own mutex; operations traverse the
// delivery-ordered node list with hand-over-hand locking (lock coupling):
// lock the successor before unlocking the current node, so traversals cannot
// overtake one another and the first node in delivery order serializes
// operations while disjoint suffixes proceed concurrently. Two counting
// semaphores implement the blocking conditions (graph full / nothing ready),
// as in Algorithm 3.
//
// Deviations from the pseudocode, both necessary in a real implementation
// and documented in DESIGN.md:
//  - get() restarts from the head when it reaches the end of the list
//    without finding a ready node (a node behind the traversal cursor may
//    have become ready after the cursor passed it; the pseudocode leaves
//    this case implicit).
//  - remove(n) first unlinks n (holding its predecessor and n), then keeps
//    n locked while walking its successors to delete outgoing edges. The
//    pseudocode keeps n linked until the end; unlinking first is equivalent
//    (no traversal can reach n once unlinked) and keeps the lock order
//    acyclic.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_set>

#include "common/semaphore.h"
#include "cos/cos.h"

namespace psmr {

class FineGrainedCos final : public Cos {
 public:
  FineGrainedCos(std::size_t max_size, ConflictFn conflict);
  ~FineGrainedCos() override;

  bool insert(const Command& c) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::size_t capacity() const override { return max_size_; }
  std::size_t approx_size() const override {
    return population_.load(std::memory_order_relaxed);
  }
  const char* name() const override { return "fine-grained"; }

 private:
  struct Node {
    explicit Node(const Command& command) : cmd(command) {}
    Node() = default;  // head sentinel

    Command cmd{};
    std::mutex mx;
    // All fields below are guarded by `mx`, except `out`, which is guarded
    // by the *owning* node's mx (edges from this node are added/queried only
    // while this node is locked).
    bool executing = false;
    int in_count = 0;
    std::unordered_set<Node*> out;  // later nodes depending on this one
    Node* next = nullptr;
  };

  const std::size_t max_size_;
  const ConflictFn conflict_;

  Semaphore space_;
  Semaphore ready_;
  Node head_;  // sentinel; head_.next guarded by head_.mx
  std::atomic<std::size_t> population_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace psmr
