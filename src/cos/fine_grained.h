// Fine-grained DAG — the paper's Algorithms 3 and 4.
//
// Each graph node carries its own mutex; operations traverse the
// delivery-ordered node list with hand-over-hand locking (lock coupling):
// lock the successor before unlocking the current node, so traversals cannot
// overtake one another and the first node in delivery order serializes
// operations while disjoint suffixes proceed concurrently. Two counting
// semaphores implement the blocking conditions (graph full / nothing ready),
// as in Algorithm 3.
//
// Deviations from the pseudocode, both necessary in a real implementation
// and documented in DESIGN.md:
//  - get() restarts from the head when it reaches the end of the list
//    without finding a ready node (a node behind the traversal cursor may
//    have become ready after the cursor passed it; the pseudocode leaves
//    this case implicit).
//  - remove(n) first unlinks n (holding its predecessor and n), then keeps
//    n locked while walking its successors to delete outgoing edges. The
//    pseudocode keeps n linked until the end; unlinking first is equivalent
//    (no traversal can reach n once unlinked) and keeps the lock order
//    acyclic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/semaphore.h"
#include "cos/cos.h"
#include "cos/dep_tracker.h"

namespace psmr {

class FineGrainedCos final : public Cos {
 public:
  FineGrainedCos(std::size_t max_size, ConflictFn conflict,
                 bool indexed = true);
  ~FineGrainedCos() override;

  bool insert(const Command& c) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override;

  std::size_t capacity() const override { return max_size_; }
  std::size_t approx_size() const override {
    return population_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  }
  const char* name() const override { return "fine-grained"; }

 private:
  // Lock ranks (validated at runtime in checked builds): index_mu_ before
  // any node mutex; node mutexes nest only in list order, which the rank
  // checker cannot see — that intra-rank order is AllowSameRank'd here and
  // validated by TSan's lock-order graph instead. The hand-over-hand
  // unique_lock/swap idiom is opaque to Clang TSA, so this class is
  // deliberately not GUARDED_BY-annotated (DESIGN.md "Lock hierarchy").
  using NodeMutex = RankedMutex<lock_rank::kCosNode, /*AllowSameRank=*/true>;
  using IndexMutex = RankedMutex<lock_rank::kCosIndex>;

  struct Node {
    explicit Node(const Command& command) : cmd(command) {}
    Node() = default;  // head sentinel

    Command cmd{};
    NodeMutex mx;
    // All fields below are guarded by `mx`, except `out`, which is guarded
    // by the *owning* node's mx (edges from this node are added/queried only
    // while this node is locked), and `probe_stamp`, which only the insert
    // thread touches.
    bool executing = false;
    // Set (under mx) in remove() phase 1, just before unlinking. The
    // indexed insert checks it to skip nodes mid-removal; a *linked* node
    // always has defunct == false.
    bool defunct = false;
    int in_count = 0;
    std::uint64_t probe_stamp = 0;  // insert-thread-only probe de-dup
    std::unordered_set<Node*> out;  // later nodes depending on this one
    Node* next = nullptr;
  };

  // Indexed insert path; see the locking argument in DESIGN.md. Lock
  // hierarchy: index_mu_ before any node mutex; node mutexes in list order.
  bool insert_indexed(const Command& c);

  const std::size_t max_size_;
  const ConflictFn conflict_;
  const KeyExtractor extract_;

  // index_mu_ guards index_ *and* doubles as the deletion fence: remove()
  // acquires it (holding no node locks) after unlinking, purges the node's
  // index entries, and only then frees the node — so the insert thread,
  // which holds index_mu_ across its whole probe, can dereference any
  // pointer it reads from the index without use-after-free.
  IndexMutex index_mu_;
  KeyIndex index_;
  std::uint64_t probe_seq_ = 0;
  // Last linked node (or &head_). Written by the inserter under index_mu_ +
  // the tail node's mx; repaired by remove() (to the predecessor) under the
  // node's and predecessor's mx. May be stale when the inserter reads it —
  // the link loop re-reads until it holds a live tail.
  std::atomic<Node*> tail_{&head_};

  Semaphore space_;
  Semaphore ready_;
  Node head_;  // sentinel; head_.next guarded by head_.mx
  std::atomic<std::size_t> population_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace psmr
