// Shared metric bundle for every COS variant.
//
// All variants funnel into the same process-wide counters ("cos.*"): the
// deployment runs one COS per replica but a single variant per process, so
// per-variant splits would only dilute the numbers the paper's figures
// need. Two gauges the paper cares about are derived at read time instead
// of being maintained with extra hot-path atomics:
//   window occupancy  = cos.inserts   - cos.removes
//   ready-set depth   = cos.ready_enq - cos.gets
#pragma once

#include "common/metrics.h"

namespace psmr {

struct CosMetrics {
  Counter& inserts;          // commands inserted into the window
  Counter& removes;          // commands removed after execution
  Counter& gets;             // commands handed to workers
  Counter& ready_enq;        // commands that became dependency-free
  Counter& insert_blocks;    // scheduler parked on a full window
  Counter& insert_block_ns;  // total ns parked on a full window
  Counter& get_blocks;       // worker parked on an empty ready set
  Counter& get_block_ns;     // total ns parked on an empty ready set
};

inline CosMetrics& cos_metrics() {
  static CosMetrics m{
      MetricsRegistry::global().counter("cos.inserts"),
      MetricsRegistry::global().counter("cos.removes"),
      MetricsRegistry::global().counter("cos.gets"),
      MetricsRegistry::global().counter("cos.ready_enq"),
      MetricsRegistry::global().counter("cos.insert_blocks"),
      MetricsRegistry::global().counter("cos.insert_block_ns"),
      MetricsRegistry::global().counter("cos.get_blocks"),
      MetricsRegistry::global().counter("cos.get_block_ns"),
  };
  return m;
}

}  // namespace psmr
