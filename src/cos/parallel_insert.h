// Parallel dependency insertion — sharded key-index scheduling (the
// Index-Based Scheduling approach, arXiv 1911.11329).
//
// Every other COS variant computes dependency edges on the single scheduler
// thread, so once the per-command probe cost is O(k) (dep_tracker.h) the
// insert thread itself is the remaining ceiling (ROADMAP item 1). This
// variant partitions the conflict-key space into S shards — each an
// independently locked KeyIndex — and runs a pool of T inserter threads
// that probe disjoint shard subsets concurrently, off the critical ordering
// path. Delivery order is preserved where it matters: per shard, commands
// are probed and registered in delivery order, and a single deterministic
// merge step (scheduler thread) combines the per-shard candidate sets into
// node dependencies in delivery order before releasing ready commands to
// workers. The resulting edge sets are bit-identical to the serial indexed
// and pairwise scans (see the equivalence tests).
//
// Batch pipeline (insert_batch, chunked to the window capacity):
//   1. admission    scheduler acquires one `space` permit per command
//                   (delivery order), pops free arena slots, stamps them.
//   2. bucketing    scheduler routes each command's keys to shards
//                   (shard_of = high bits of key_index_hash; KeyIndex
//                   consumes the low bits, so shard tables stay uniform).
//   3. probe        T inserters in parallel; inserter t owns shards
//                   s ≡ t (mod T). Per shard, in delivery order: probe the
//                   shard index for conflicting live accessors (recording
//                   (slot, generation) candidates), then register the
//                   command — so earlier in-batch commands are visible to
//                   later ones exactly as in a serial insert.
//   4. merge        scheduler, under the graph mutex, walks commands in
//                   delivery order and shards in fixed order, validates
//                   candidate liveness, de-duplicates across keys/shards
//                   with a per-command stamp, wires out-edges/pending
//                   counts, and queues dependency-free commands.
//
// Confinement and locking (DESIGN.md "Sharded-index confinement"):
//   - graph_mu_ (rank kCosMonitor) owns the arena graph state: free list,
//     ready queue, and every Slot's live/pending_in/out/merge fields.
//   - Each Shard's mx (rank kCosShard) owns that shard's KeyIndex only.
//     Inserters take one shard lock at a time; workers' remove() takes the
//     graph lock and shard locks in separate critical sections, so the two
//     ranks never nest and the hierarchy stays acyclic.
//   - Shard bucket/candidate buffers are *phase-confined*, not lock-guarded:
//     ownership passes scheduler -> owning inserter -> scheduler through
//     the per-batch job/done semaphore pair, which provides the
//     happens-before edges.
//   - Slot reuse is generation-stamped (seq): remove() clears `live` under
//     graph_mu_ *before* dropping the shard index entries, and a slot
//     returns to the free list only after its index entries are gone, so a
//     probe can never observe a recycled slot through a stale entry and the
//     merge step rejects candidates whose generation moved on.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/semaphore.h"
#include "common/thread_annotations.h"
#include "cos/cos.h"
#include "cos/cos_metrics.h"
#include "cos/dep_tracker.h"

namespace psmr {

// Insert-path metrics specific to the sharded parallel-insert scheduler,
// alongside the shared cos.* bundle (cos_metrics.h).
struct ParallelInsertMetrics {
  Counter& edge_ns;   // wall ns in the parallel probe phase (per chunk)
  Counter& merge_ns;  // wall ns in the deterministic merge step (per chunk)
  Gauge& shards;      // configured shard count
};

inline ParallelInsertMetrics& parallel_insert_metrics() {
  static ParallelInsertMetrics m{
      MetricsRegistry::global().counter("insert.edge_ns"),
      MetricsRegistry::global().counter("insert.merge_ns"),
      MetricsRegistry::global().gauge("scheduler.insert_shards"),
  };
  return m;
}

class ParallelInsertCos final : public Cos {
 public:
  // `conflict` must be per-key-decomposable (conflict_key_extractor != null)
  // — the factory's make_parallel_insert_cos() falls back to a serial DAG
  // for opaque relations instead of constructing this class. `shards` is
  // rounded up to a power of two; `inserter_threads` is clamped to
  // [1, shards].
  ParallelInsertCos(std::size_t capacity, ConflictFn conflict,
                    std::size_t shards, std::size_t inserter_threads);
  ~ParallelInsertCos() override;

  bool insert(const Command& c) override;
  bool insert_batch(std::span<const Command> batch) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override;

  std::size_t capacity() const override { return slots_.size(); }
  std::size_t approx_size() const override;
  const char* name() const override { return "parallel-insert"; }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t inserter_thread_count() const { return inserters_.size(); }

 private:
  // Arena node. The arena itself (slots_) is fixed at construction — nodes
  // are recycled through free_list_, never freed individually, so a Slot*
  // or slot index stays dereferenceable for the structure's lifetime.
  // Field ownership: cmd/seq are written by the scheduler at allocation
  // (before the slot is published to any probe) and read-only until the
  // slot is freed; live/pending_in/out/merge_stamp are graph_mu_ state.
  struct Slot {
    Command cmd;
    std::uint64_t seq = 0;          // generation stamp (allocation counter)
    std::uint64_t merge_stamp = 0;  // last merge that wired this node (dedup)
    std::uint32_t pending_in = 0;   // unresolved dependencies
    bool live = false;              // inserted and not yet removed
    std::vector<std::uint32_t> out;  // dependents, as slot indices
  };

  // A probe hit: candidate dependency recorded by an inserter, validated by
  // the merge step ((slot, generation) — see the class comment).
  struct Candidate {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
  };

  // Candidate range for one command within one shard's cands buffer:
  // cands[previous end .. end) belong to batch command `cmd`. Ranges are
  // emitted in delivery order, so the merge walks them with one cursor.
  struct CandRange {
    std::uint32_t cmd = 0;  // index into the current chunk
    std::uint32_t end = 0;  // exclusive end offset into cands
  };

  // One command's keys that fall into one shard, as a bitmask over the
  // command's (sorted, <= 4) key array — the selected subsequence stays
  // sorted, which KeyIndex requires.
  struct BucketItem {
    std::uint32_t cmd = 0;
    std::uint8_t key_mask = 0;
  };

  struct Shard {
    // Owns `index` only. Taken by the owning inserter during the probe
    // phase and by workers' remove(); never nested with graph_mu_ or
    // another shard's mx.
    RankedMutex<lock_rank::kCosShard> mx;
    KeyIndex index PSMR_GUARDED_BY(mx);
    // Phase-confined per-batch buffers (see the class comment): bucket is
    // written by the scheduler before the job is published, cands/ranges by
    // the owning inserter before the done_ hand-back; the job/done
    // semaphores provide the cross-thread ordering.
    std::vector<BucketItem> bucket;  // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
    std::vector<Candidate> cands;    // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
    std::vector<CandRange> ranges;   // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
  };

  struct Inserter {
    Semaphore job{0};  // one permit per published chunk
    std::thread thread;
  };

  std::size_t shard_of(std::uint64_t key) const {
    // High hash bits: KeyIndex probes with the low bits of the same mix, so
    // the per-shard tables see an unbiased key stream (dep_tracker.h).
    return (key_index_hash(key) >> 32) & (shards_.size() - 1);
  }

  bool insert_chunk(std::span<const Command> chunk);
  void merge_chunk(std::span<const Command> chunk);
  void inserter_loop(std::size_t tid);
  void probe_shards(std::size_t tid);

  const KeyExtractor extract_;

  // Graph monitor: free list, ready queue, and all Slot graph fields.
  mutable RankedMutex<lock_rank::kCosMonitor> graph_mu_;
  std::vector<Slot> slots_;  // NOLINT(psmr-guarded-by-coverage) fixed arena; per-field protocol in the Slot comment
  std::vector<std::uint32_t> free_list_ PSMR_GUARDED_BY(graph_mu_);
  std::deque<std::uint32_t> ready_q_ PSMR_GUARDED_BY(graph_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;  // NOLINT(psmr-guarded-by-coverage) set in ctor; Shard locking per its comment
  std::vector<std::unique_ptr<Inserter>> inserters_;  // NOLINT(psmr-guarded-by-coverage) set in ctor before threads start

  // Current probe job, published scheduler -> inserters through the job
  // semaphores each chunk (phase-confined like the Shard buffers).
  const Command* job_cmds_ = nullptr;  // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
  std::size_t job_count_ = 0;          // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
  std::vector<std::uint32_t> job_slots_;  // NOLINT(psmr-guarded-by-coverage) phase-confined via job/done semaphores
  std::atomic<int> probes_pending_{0};
  Semaphore done_{0};  // released by the last inserter of a chunk

  Semaphore space_;      // free window capacity (admission, delivery order)
  Semaphore ready_sem_;  // ready_q_ occupancy (workers park here)

  // Scheduler-thread-only counters (single inserter of record).
  std::uint64_t seq_counter_ = 0;    // NOLINT(psmr-guarded-by-coverage) scheduler thread only
  std::uint64_t merge_counter_ = 0;  // NOLINT(psmr-guarded-by-coverage) scheduler thread only
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merge_cursors_;  // NOLINT(psmr-guarded-by-coverage) scheduler thread only

  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> size_{0};  // approx_size observability
  const CosMetrics& m_;
  const ParallelInsertMetrics& pm_;
};

}  // namespace psmr
