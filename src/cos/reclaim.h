// Memory-reclamation policy for the lock-free DAG.
//
// Lives in its own header so the COS factory's CosOptions can name the
// policy without pulling in the whole lock-free implementation.
#pragma once

#include <cstdint>

namespace psmr {

enum class LockFreeReclaim : std::uint8_t {
  kEpoch,  // retire unlinked nodes through the EBR domain (default)
  kLeak,   // defer all frees to the destructor (ablation; mimics "GC later")
};

}  // namespace psmr
