#include "cos/early_sched.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/stopwatch.h"
#include "cos/cos_metrics.h"

namespace psmr {

namespace {
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // NOLINT(psmr-relaxed-order-audit) monotonic id; uniqueness from RMW
}
}  // namespace

EarlyCos::EarlyCos(std::unique_ptr<Cos> fallback, ClassMapFn map, int workers,
                   std::size_t queue_capacity)
    : dag_(std::move(fallback)),
      map_(map),
      id_(next_instance_id()),
      class_hits_(MetricsRegistry::global().counter("scheduler.class_hits")),
      barrier_waits_(
          MetricsRegistry::global().counter("scheduler.barrier_waits")),
      queue_depth_(
          MetricsRegistry::global().gauge("scheduler.class_queue_depth")) {
  const std::size_t n = workers > 0 ? static_cast<std::size_t>(workers) : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(queue_capacity));
  }
}

EarlyCos::~EarlyCos() { close(); }

EarlyCos::Worker& EarlyCos::self() {
  // Consumer registration: first get() on a thread claims the next worker
  // slot. The instance id (never reused, unlike addresses) keys the cache
  // so threads of a later EarlyCos re-register.
  thread_local std::uint64_t tls_instance = 0;
  thread_local std::size_t tls_index = 0;
  if (tls_instance != id_) {
    tls_index = next_consumer_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) round-robin assignment; any order acceptable
    tls_instance = id_;
    if (tls_index >= workers_.size()) {
      std::fprintf(stderr,
                   "EarlyCos: %zu consumer threads for %zu workers — the "
                   "threading contract requires exactly one thread per "
                   "worker queue\n",
                   tls_index + 1, workers_.size());
      std::abort();
    }
  }
  return *workers_[tls_index];
}

bool EarlyCos::push_item(Worker& w, const Item& item) {
  if (!w.ring.try_push(item)) {
    auto& m = cos_metrics();
    m.insert_blocks.inc();
    std::uint64_t t0 = 0;
    if constexpr (kMetricsEnabled) t0 = now_ns();
    while (!w.ring.try_push(item)) {
      if (closed_.load(std::memory_order_relaxed)) return false;  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      std::this_thread::yield();
    }
    if constexpr (kMetricsEnabled) m.insert_block_ns.inc(now_ns() - t0);
  }
  w.items.release();
  return true;
}

bool EarlyCos::wait_phase_drained() {
  const std::shared_ptr<SyncPhase> phase = last_phase_;
  if (phase == nullptr) return true;
  if (phase->executed.load(std::memory_order_acquire) < phase->count) {
    auto& m = cos_metrics();
    m.insert_blocks.inc();
    std::uint64_t t0 = 0;
    if constexpr (kMetricsEnabled) t0 = now_ns();
    while (phase->executed.load(std::memory_order_acquire) < phase->count) {
      if (closed_.load(std::memory_order_relaxed)) return false;  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      std::this_thread::yield();
    }
    if constexpr (kMetricsEnabled) m.insert_block_ns.inc(now_ns() - t0);
  }
  last_phase_.reset();
  return true;
}

bool EarlyCos::close_run() {
  if (run_count_ == 0) return true;
  auto phase =
      std::make_shared<SyncPhase>(run_count_, workers_.size());
  run_count_ = 0;
  Item token;
  token.kind = Item::kSync;
  token.phase = phase;
  for (auto& w : workers_) {
    if (!push_item(*w, token)) return false;
  }
  last_phase_ = std::move(phase);
  return true;
}

bool EarlyCos::insert_one(const Command& c) {
  const ClassRoute route =
      map_ != nullptr
          ? map_(c, static_cast<std::uint32_t>(workers_.size()))
          : ClassRoute{};
  if (route.kind == ClassRoute::kWorker) {
    // The open run must execute before this command (it was delivered
    // first and may conflict); sealing it puts its tokens ahead of us in
    // every ring.
    if (run_count_ > 0 && !close_run()) return false;
    Worker& w = *workers_[route.worker % workers_.size()];
    Item item;
    item.cmd = c;
    if (!push_item(w, item)) return false;
    class_hits_.inc();
    queue_depth_.add(1);
    queued_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
    auto& m = cos_metrics();
    m.inserts.inc();
    m.ready_enq.inc();  // queue-routed commands are born dependency-free
    return true;
  }
  // Sync command: goes into the fallback DAG as part of the current run.
  // Before the run's first insert, drain the previous phase so the DAG
  // only ever holds one phase's commands (see header).
  if (run_count_ == 0 && !wait_phase_drained()) return false;
  if (!dag_->insert(c)) return false;
  ++run_count_;
  // Seal before the DAG fills: the next insert would park on `space` with
  // no tokens out, and nobody could drain it.
  if (run_count_ >= dag_->capacity()) return close_run();
  return true;
}

bool EarlyCos::insert(const Command& c) {
  if (!insert_one(c)) return false;
  return close_run();
}

bool EarlyCos::insert_batch(std::span<const Command> batch) {
  for (const Command& c : batch) {
    if (!insert_one(c)) return false;
  }
  return close_run();
}

EarlyCos::Claim EarlyCos::claim_from_phase(Worker& w, CosHandle* out) {
  SyncPhase& p = *w.phase;
  if (p.claimed.fetch_add(1, std::memory_order_relaxed) < p.count) {  // NOLINT(psmr-relaxed-order-audit) atomic ticket; RMW uniqueness is all that matters
    const CosHandle h = dag_->get();
    if (!h) return Claim::kClosed;
    w.dag_handle = h;
    w.from_dag = true;
    *out = CosHandle{h.cmd, &w};
    return Claim::kGot;
  }
  // Claim budget exhausted: wait out the phase so everything delivered
  // after it observes its effects (and pops strictly after it).
  while (p.executed.load(std::memory_order_acquire) < p.count) {
    if (closed_.load(std::memory_order_relaxed)) return Claim::kClosed;  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
    std::this_thread::yield();
  }
  w.phase.reset();
  return Claim::kExhausted;
}

CosHandle EarlyCos::get() {
  Worker& w = self();
  while (true) {
    if (w.phase != nullptr) {
      CosHandle h;
      switch (claim_from_phase(w, &h)) {
        case Claim::kGot:
          return h;
        case Claim::kClosed:
          return {};
        case Claim::kExhausted:
          break;  // phase done; fall through to the ring
      }
    }
    if (!w.items.acquire()) return {};  // closed
    auto popped = w.ring.try_pop();
    // One permit per pushed item and a single consumer: never empty here.
    Item item = std::move(*popped);
    if (item.kind == Item::kCmd) {
      queue_depth_.sub(1);
      cos_metrics().gets.inc();
      w.current = item.cmd;
      w.from_dag = false;
      return CosHandle{&w.current, &w};
    }
    // Sync token: rendezvous. Every worker reaching this point has drained
    // its ring prefix, so once all have arrived the phase is ordered after
    // every single-class command delivered before it.
    barrier_waits_.inc();
    SyncPhase& p = *item.phase;
    p.arrived.fetch_add(1, std::memory_order_acq_rel);
    while (p.arrived.load(std::memory_order_acquire) < p.workers) {
      if (closed_.load(std::memory_order_relaxed)) return {};  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      std::this_thread::yield();
    }
    w.phase = std::move(item.phase);
  }
}

void EarlyCos::remove(CosHandle h) {
  Worker& w = *static_cast<Worker*>(h.node);
  if (w.from_dag) {
    // DAG removal first: the scheduler's drain-wait takes executed==count
    // to mean the phase left the DAG.
    dag_->remove(w.dag_handle);
    w.dag_handle = {};
    w.phase->executed.fetch_add(1, std::memory_order_acq_rel);
  } else {
    queued_.fetch_sub(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
    cos_metrics().removes.inc();
  }
}

void EarlyCos::close() {
  closed_.store(true, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
  dag_->close();
  for (auto& w : workers_) w->items.close();
}

std::size_t EarlyCos::capacity() const {
  std::size_t rings = 0;
  for (const auto& w : workers_) rings += w->ring.capacity();
  return rings + dag_->capacity();
}

}  // namespace psmr
