// The Conflict-Ordered Set (COS) abstract data type — the paper's §3.3.
//
// Sequential specification:
//   insert(c)  adds command c; calls are made in atomic-broadcast delivery
//              order by a single scheduler thread.
//   get()      returns a command c such that (a) c is in the structure,
//              (b) no previous get returned c, and (c) no earlier-inserted
//              conflicting command is still in the structure. Blocks until
//              such a command exists.
//   remove(c)  removes an executed command, potentially making successors
//              available to get().
//
// All implementations additionally provide close(): a shutdown signal that
// unblocks insert()/get() so worker pools can drain (insert returns false,
// get returns a null handle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cos/command.h"
#include "cos/conflict.h"

namespace psmr {

// Opaque reference to an in-structure command, returned by get() and passed
// back to remove(). `cmd` stays valid until remove() is called on the handle.
struct CosHandle {
  const Command* cmd = nullptr;
  void* node = nullptr;

  explicit operator bool() const { return node != nullptr; }
};

class Cos {
 public:
  virtual ~Cos() = default;

  // Single-threaded (scheduler only). Blocks while the structure is full.
  // Returns false iff the structure was closed.
  virtual bool insert(const Command& c) = 0;

  // Inserts a batch in order. Semantically identical to calling insert()
  // per command; implementations may amortize the conflict scan across the
  // batch (the lock-free DAG inserts a whole atomic-broadcast batch in one
  // traversal — the insert thread is its throughput ceiling, §7.3.1).
  // Returns false iff the structure was closed mid-batch.
  virtual bool insert_batch(std::span<const Command> batch) {
    for (const Command& c : batch) {
      if (!insert(c)) return false;
    }
    return true;
  }

  // Multi-threaded (workers). Blocks until a dependency-free command is
  // available. Returns a null handle iff the structure was closed.
  virtual CosHandle get() = 0;

  // Multi-threaded (workers). `h` must have been returned by get() exactly
  // once and not yet removed.
  virtual void remove(CosHandle h) = 0;

  // Unblocks all pending and future insert()/get() calls. Idempotent.
  virtual void close() = 0;

  // Testing hook: the current dependency edges as (dependency id,
  // dependent id) pairs, sorted ascending. Callers must guarantee
  // quiescence — no concurrent insert/get/remove. Used by the
  // indexed-vs-scan equivalence tests; not part of the COS specification.
  virtual std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() {
    return {};
  }

  virtual std::size_t capacity() const = 0;

  // Approximate number of commands currently held (inserted, not removed).
  virtual std::size_t approx_size() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace psmr
