// Coarse-grained DAG — the paper's Algorithm 2 (the CBASE approach).
//
// One monitor (a single mutex plus two condition variables) protects the
// entire dependency graph; every COS primitive runs as a critical section.
// This is the baseline whose serialization the fine-grained and lock-free
// implementations attack.
//
// Representation: nodes in delivery order (intrusive via std::list), each
// node holding its pending-dependency count and the outgoing edge list. The
// insert scan is O(|N|) conflict checks and get() is an O(|N|) scan for the
// oldest ready node, exactly as in the paper's pseudocode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <utility>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "cos/cos.h"
#include "cos/dep_tracker.h"

namespace psmr {

class CoarseGrainedCos final : public Cos {
 public:
  CoarseGrainedCos(std::size_t max_size, ConflictFn conflict,
                   bool indexed = true);
  ~CoarseGrainedCos() override;

  bool insert(const Command& c) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override;

  std::size_t capacity() const override { return max_size_; }
  std::size_t approx_size() const override;
  const char* name() const override { return "coarse-grained"; }

 private:
  struct Node {
    explicit Node(const Command& command) : cmd(command) {}
    Command cmd;
    bool executing = false;
    int pending_in = 0;               // number of unresolved dependencies
    std::uint64_t probe_stamp = 0;    // last insert that saw this node (dedup)
    std::vector<Node*> out;           // later nodes that depend on this one
    std::list<Node>::iterator self;   // for O(1) erase in remove()
  };

  const std::size_t max_size_;
  const ConflictFn conflict_;
  const KeyExtractor extract_;

  // The monitor: one mutex over the whole graph. Node contents (out edges,
  // pending_in, executing) are guarded transitively — every Node lives in
  // nodes_ and is only reached with mu_ held.
  mutable RankedMutex<lock_rank::kCosMonitor> mu_;
  CondVar not_full_;   // "nFull" in the paper
  CondVar has_ready_;  // "hasReady" in the paper
  std::list<Node> nodes_ PSMR_GUARDED_BY(mu_);  // delivery order
  // Non-null extract_ iff the relation is per-key-decomposable and indexing
  // is on; then index_ holds every live node and insert probes it instead
  // of scanning nodes_.
  KeyIndex index_ PSMR_GUARDED_BY(mu_);
  std::uint64_t probe_seq_ PSMR_GUARDED_BY(mu_) = 0;
  bool closed_ PSMR_GUARDED_BY(mu_) = false;
};

}  // namespace psmr
