// Conflict relations (#C in the paper, §3.3).
//
// Two commands conflict if they access a common variable and at least one
// writes it. The relation is a plain function pointer so the hot path of all
// three COS implementations pays one indirect call per pair, identically.
#pragma once

#include "cos/command.h"

namespace psmr {

using ConflictFn = bool (*)(const Command&, const Command&);

// The paper's linked-list service: the entire list is a single shared
// variable, so reads (contains) never conflict with each other, and writes
// (add) conflict with everything.
inline bool rw_conflict(const Command& a, const Command& b) {
  return is_write(a) || is_write(b);
}

// Keyset-based relation: conflict iff the key sets intersect and at least
// one command writes. Used by the KV and bank services, where commands name
// the state they touch.
inline bool keyset_rw_conflict(const Command& a, const Command& b) {
  if (!is_write(a) && !is_write(b)) return false;
  for (std::uint8_t i = 0; i < a.nkeys; ++i) {
    for (std::uint8_t j = 0; j < b.nkeys; ++j) {
      if (a.keys[i] == b.keys[j]) return true;
    }
  }
  return false;
}

// Degenerate relations, useful in tests and as workload extremes: the
// always-conflict relation forces sequential execution; the never-conflict
// relation allows unlimited parallelism.
inline bool always_conflict(const Command&, const Command&) { return true; }
inline bool never_conflict(const Command&, const Command&) { return false; }

}  // namespace psmr
