// Conflict relations (#C in the paper, §3.3).
//
// Two commands conflict if they access a common variable and at least one
// writes it. The relation is a plain function pointer so the hot path of all
// three COS implementations pays one indirect call per pair, identically.
//
// Relations over explicit key sets can additionally expose a *key extractor*
// (conflict_key_extractor below). A relation with an extractor is
// per-key-decomposable: a # b iff some key is shared and the per-key
// write condition holds. The COS implementations use the extractor to drive
// the key-indexed dependency tracker (dep_tracker.h), replacing the O(n)
// pairwise insert scan with O(k) index probes; opaque relations (rw_conflict,
// always/never_conflict) keep the pairwise scan.
#pragma once

#include <span>

#include "cos/command.h"

namespace psmr {

using ConflictFn = bool (*)(const Command&, const Command&);

// The paper's linked-list service: the entire list is a single shared
// variable, so reads (contains) never conflict with each other, and writes
// (add) conflict with everything.
inline bool rw_conflict(const Command& a, const Command& b) {
  return is_write(a) || is_write(b);
}

// Keyset-based relation: conflict iff the key sets intersect and at least
// one command writes. Used by the KV and bank services, where commands name
// the state they touch. Relies on the Command invariant that
// keys[0..nkeys) is sorted ascending (see command.h): the intersection is a
// linear merge instead of the former O(k²) nested loop.
inline bool keyset_rw_conflict(const Command& a, const Command& b) {
  if (!is_write(a) && !is_write(b)) return false;
  std::uint8_t i = 0;
  std::uint8_t j = 0;
  while (i < a.nkeys && j < b.nkeys) {
    if (a.keys[i] == b.keys[j]) return true;
    if (a.keys[i] < b.keys[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

// Degenerate relations, useful in tests and as workload extremes: the
// always-conflict relation forces sequential execution; the never-conflict
// relation allows unlimited parallelism.
inline bool always_conflict(const Command&, const Command&) { return true; }
inline bool never_conflict(const Command&, const Command&) { return false; }

// ---------------------------------------------------------------------------
// Key extraction for per-key-decomposable relations.
// ---------------------------------------------------------------------------

// A command's accesses as seen by a keyed relation: the (sorted) conflict
// keys and whether the command writes them. The decomposition contract is
//   fn(a, b) == (a.write || b.write) && keys(a) ∩ keys(b) ≠ ∅
// which keyset_rw_conflict satisfies by definition.
struct KeyedAccess {
  std::span<const std::uint64_t> keys;  // sorted ascending
  bool write = false;
};

using KeyExtractor = KeyedAccess (*)(const Command&);

inline KeyedAccess keyset_access(const Command& c) {
  return {std::span<const std::uint64_t>(c.keys.data(), c.nkeys), is_write(c)};
}

// Returns the key extractor for per-key-decomposable relations, nullptr for
// opaque ones. The COS factory's `indexed` toggle only takes effect when the
// relation is decomposable; everything else falls back to the pairwise scan.
inline KeyExtractor conflict_key_extractor(ConflictFn fn) {
  return fn == keyset_rw_conflict ? &keyset_access : nullptr;
}

}  // namespace psmr
