#include "cos/parallel_insert.h"

#include <algorithm>
#include <cassert>

#include "common/stopwatch.h"

namespace psmr {
namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

ParallelInsertCos::ParallelInsertCos(std::size_t capacity, ConflictFn conflict,
                                     std::size_t shards,
                                     std::size_t inserter_threads)
    : extract_(conflict_key_extractor(conflict)),
      slots_(std::max<std::size_t>(capacity, 1)),
      m_(cos_metrics()),
      pm_(parallel_insert_metrics()) {
  assert(extract_ != nullptr &&
         "ParallelInsertCos requires a per-key-decomposable relation; the "
         "factory falls back to a serial DAG for opaque ones");
  const std::size_t nshards = pow2_at_least(std::max<std::size_t>(shards, 1));
  const std::size_t nins =
      std::clamp<std::size_t>(inserter_threads, 1, nshards);
  shards_.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  free_list_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i-- > 0;) {
    free_list_.push_back(static_cast<std::uint32_t>(i));
  }
  merge_cursors_.resize(nshards);
  space_.release(static_cast<std::ptrdiff_t>(slots_.size()));
  space_.instrument(&m_.insert_blocks, &m_.insert_block_ns);
  ready_sem_.instrument(&m_.get_blocks, &m_.get_block_ns);
  pm_.shards.set(static_cast<std::int64_t>(nshards));
  inserters_.reserve(nins);
  for (std::size_t t = 0; t < nins; ++t) {
    inserters_.push_back(std::make_unique<Inserter>());
  }
  for (std::size_t t = 0; t < nins; ++t) {
    inserters_[t]->thread = std::thread([this, t] { inserter_loop(t); });
  }
}

ParallelInsertCos::~ParallelInsertCos() {
  close();
  for (auto& ins : inserters_) {
    if (ins->thread.joinable()) ins->thread.join();
  }
}

void ParallelInsertCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_sem_.close();
  done_.close();
  for (auto& ins : inserters_) ins->job.close();
}

bool ParallelInsertCos::insert(const Command& c) {
  return insert_batch(std::span<const Command>(&c, 1));
}

bool ParallelInsertCos::insert_batch(std::span<const Command> batch) {
  // Chunk to the window capacity so admission can always complete: a chunk
  // never needs more permits than the window can hold at once.
  while (!batch.empty()) {
    const std::size_t n = std::min(batch.size(), slots_.size());
    if (!insert_chunk(batch.first(n))) return false;
    batch = batch.subspan(n);
  }
  return true;
}

bool ParallelInsertCos::insert_chunk(std::span<const Command> chunk) {
  // 1. Admission: one window permit per command, in delivery order.
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (!space_.acquire()) return false;  // closed
  }
  // 2. Allocate and stamp arena slots. A permit guarantees a free slot:
  //    remove() returns the slot to the free list before releasing space_.
  job_slots_.clear();
  {
    MutexLock lock(graph_mu_);
    for (const Command& c : chunk) {
      assert(!free_list_.empty());
      const std::uint32_t idx = free_list_.back();
      free_list_.pop_back();
      Slot& slot = slots_[idx];
      slot.cmd = c;
      slot.seq = ++seq_counter_;
      slot.merge_stamp = 0;
      slot.pending_in = 0;
      slot.live = true;
      slot.out.clear();
      job_slots_.push_back(idx);
    }
  }
  // 3. Bucket conflict keys by shard. A command's keys are sorted with <= 4
  //    entries; adjacent duplicates are dropped here so the per-shard key
  //    subsequences are strictly ascending. Empty-keyset commands land in
  //    no bucket — they conflict with nothing under a keyed relation.
  for (auto& sh : shards_) sh->bucket.clear();
  for (std::uint32_t i = 0; i < chunk.size(); ++i) {
    const Command& c = chunk[i];
    debug_assert_sorted_keys(c);
    const KeyedAccess access = extract_(c);
    std::array<std::pair<std::size_t, std::uint8_t>, 4> per{};
    int nper = 0;
    for (std::uint8_t k = 0; k < access.keys.size(); ++k) {
      if (k > 0 && access.keys[k] == access.keys[k - 1]) continue;
      const std::size_t s = shard_of(access.keys[k]);
      bool found = false;
      for (int j = 0; j < nper; ++j) {
        if (per[j].first == s) {
          per[j].second |= static_cast<std::uint8_t>(1u << k);
          found = true;
          break;
        }
      }
      if (!found) per[nper++] = {s, static_cast<std::uint8_t>(1u << k)};
    }
    for (int j = 0; j < nper; ++j) {
      shards_[per[j].first]->bucket.push_back(BucketItem{i, per[j].second});
    }
  }
  // 4. Publish the probe job to the inserter pool and wait for the last
  //    inserter. The job/done semaphore pair carries the happens-before
  //    edges for the phase-confined buffers.
  job_cmds_ = chunk.data();
  job_count_ = chunk.size();
  probes_pending_.store(static_cast<int>(inserters_.size()),
                        std::memory_order_release);
  const std::uint64_t t0 = kMetricsEnabled ? now_ns() : 0;
  for (auto& ins : inserters_) ins->job.release();
  if (!done_.acquire()) return false;  // closed mid-chunk
  if constexpr (kMetricsEnabled) pm_.edge_ns.inc(now_ns() - t0);
  // 5. Deterministic merge, delivery order.
  merge_chunk(chunk);
  return !closed_.load(std::memory_order_acquire);
}

void ParallelInsertCos::inserter_loop(std::size_t tid) {
  Inserter& self = *inserters_[tid];
  while (self.job.acquire()) {
    probe_shards(tid);
    if (probes_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.release();
    }
  }
}

void ParallelInsertCos::probe_shards(std::size_t tid) {
  // Static shard ownership: inserter t owns shards s ≡ t (mod T), for the
  // whole structure lifetime. Within a shard, commands are probed and then
  // registered in delivery order, so earlier in-batch commands are visible
  // to later ones exactly as under a serial insert — and the candidate
  // stream per shard is independent of the thread count.
  const std::span<const Command> batch(job_cmds_, job_count_);
  for (std::size_t s = tid; s < shards_.size(); s += inserters_.size()) {
    Shard& sh = *shards_[s];
    sh.cands.clear();
    sh.ranges.clear();
    for (const BucketItem& item : sh.bucket) {
      const Command& c = batch[item.cmd];
      const KeyedAccess access = extract_(c);
      std::array<std::uint64_t, 4> ks;
      std::size_t nks = 0;
      for (std::uint8_t k = 0; k < access.keys.size(); ++k) {
        if (item.key_mask & (1u << k)) ks[nks++] = access.keys[k];
      }
      const std::span<const std::uint64_t> keys(ks.data(), nks);
      Slot* me = &slots_[job_slots_[item.cmd]];
      const std::size_t before = sh.cands.size();
      {
        MutexLock lock(sh.mx);
        sh.index.for_each_conflicting(
            keys, access.write, [&](const KeyIndex::Entry& e) {
              Slot* dep = static_cast<Slot*>(e.node);
              sh.cands.push_back(Candidate{
                  static_cast<std::uint32_t>(dep - slots_.data()), dep->seq});
              return true;  // eager removal keeps the index dead-entry-free
            });
        sh.index.add(keys, access.write, me);
      }
      if (sh.cands.size() != before) {
        sh.ranges.push_back(
            CandRange{item.cmd, static_cast<std::uint32_t>(sh.cands.size())});
      }
    }
  }
}

void ParallelInsertCos::merge_chunk(std::span<const Command> chunk) {
  const std::uint64_t t0 = kMetricsEnabled ? now_ns() : 0;
  // One cursor per shard: (next range index, start offset into cands).
  // Ranges were emitted in delivery order, so per command we only inspect
  // shards whose next range belongs to it — the merge is linear in the
  // total candidate count.
  for (auto& cur : merge_cursors_) cur = {0, 0};
  std::ptrdiff_t newly_ready = 0;
  {
    MutexLock lock(graph_mu_);
    for (std::uint32_t i = 0; i < chunk.size(); ++i) {
      const std::uint32_t me = job_slots_[i];
      Slot& mine = slots_[me];
      const std::uint64_t stamp = ++merge_counter_;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        auto& [ri, cb] = merge_cursors_[s];
        const std::vector<CandRange>& ranges = shards_[s]->ranges;
        if (ri >= ranges.size() || ranges[ri].cmd != i) continue;
        const std::vector<Candidate>& cands = shards_[s]->cands;
        for (std::uint32_t ci = cb; ci < ranges[ri].end; ++ci) {
          Slot& dep = slots_[cands[ci].slot];
          // Removed since the probe (or, with seq, a recycled generation —
          // impossible while the scheduler is parked in this chunk, but the
          // stamp keeps the invariant local): no edge, matching a serial
          // insert that ran after the removal.
          if (!dep.live || dep.seq != cands[ci].seq) continue;
          // The same dependency may surface through several keys or shards;
          // wire it once (delivery-order stamp, scheduler-only).
          if (dep.merge_stamp == stamp) continue;
          dep.merge_stamp = stamp;
          dep.out.push_back(me);
          ++mine.pending_in;
        }
        cb = ranges[ri].end;
        ++ri;
      }
      if (mine.pending_in == 0) {
        ready_q_.push_back(me);
        ++newly_ready;
      }
    }
  }
  // Wake workers only after the graph lock is dropped.
  if (newly_ready > 0) {
    m_.ready_enq.inc(static_cast<std::uint64_t>(newly_ready));
    ready_sem_.release(newly_ready);
  }
  m_.inserts.inc(chunk.size());
  size_.fetch_add(chunk.size(), std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  if constexpr (kMetricsEnabled) pm_.merge_ns.inc(now_ns() - t0);
}

CosHandle ParallelInsertCos::get() {
  if (!ready_sem_.acquire()) return {};  // closed
  std::uint32_t idx = 0;
  {
    MutexLock lock(graph_mu_);
    assert(!ready_q_.empty());
    idx = ready_q_.front();
    ready_q_.pop_front();
  }
  m_.gets.inc();
  // Handle encodes the arena index (+1 so a valid handle is never null);
  // the command pointer is stable until remove() recycles the slot.
  return CosHandle{&slots_[idx].cmd,
                   reinterpret_cast<void*>(static_cast<std::uintptr_t>(idx) + 1)};
}

void ParallelInsertCos::remove(CosHandle h) {
  assert(h.node != nullptr);
  const auto idx = static_cast<std::uint32_t>(
      reinterpret_cast<std::uintptr_t>(h.node) - 1);
  Slot& mine = slots_[idx];
  std::ptrdiff_t newly_ready = 0;
  {
    // Phase 1: leave the graph. Clearing `live` here — before the index
    // entries go — is what lets the merge step trust (live, seq): any probe
    // that still finds this node's entries produces a candidate the merge
    // rejects once `live` is down.
    MutexLock lock(graph_mu_);
    mine.live = false;
    for (const std::uint32_t d : mine.out) {
      Slot& dep = slots_[d];
      assert(dep.pending_in > 0);
      if (--dep.pending_in == 0) {
        ready_q_.push_back(d);
        ++newly_ready;
      }
    }
    mine.out.clear();
  }
  if (newly_ready > 0) {
    m_.ready_enq.inc(static_cast<std::uint64_t>(newly_ready));
    ready_sem_.release(newly_ready);
  }
  // Phase 2: drop the shard index entries, one shard lock at a time. The
  // slot's keys are still readable: recycling (below) has not happened.
  const KeyedAccess access = extract_(mine.cmd);
  for (std::uint8_t k = 0; k < access.keys.size(); ++k) {
    if (k > 0 && access.keys[k] == access.keys[k - 1]) continue;
    const std::uint64_t key = access.keys[k];
    Shard& sh = *shards_[shard_of(key)];
    MutexLock lock(sh.mx);
    sh.index.remove(std::span<const std::uint64_t>(&key, 1), &mine);
  }
  // Phase 3: recycle. Only now may the scheduler re-stamp the slot, so no
  // stale index entry can ever reach a recycled generation.
  {
    MutexLock lock(graph_mu_);
    free_list_.push_back(idx);
  }
  m_.removes.inc();
  size_.fetch_sub(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  space_.release();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
ParallelInsertCos::debug_edges() {
  MutexLock lock(graph_mu_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  for (const Slot& s : slots_) {
    if (!s.live) continue;
    for (const std::uint32_t d : s.out) {
      edges.emplace_back(s.cmd.id, slots_[d].cmd.id);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::size_t ParallelInsertCos::approx_size() const {
  return size_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
}

}  // namespace psmr
