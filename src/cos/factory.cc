#include "cos/factory.h"

#include <algorithm>
#include <cstdlib>

#include "cos/coarse_grained.h"
#include "cos/fine_grained.h"
#include "cos/lock_free.h"
#include "cos/parallel_insert.h"
#include "cos/striped.h"

namespace psmr {

std::unique_ptr<Cos> make_cos(const CosOptions& options) {
  switch (options.kind) {
    case CosKind::kCoarseGrained:
      return std::make_unique<CoarseGrainedCos>(options.capacity,
                                                options.conflict,
                                                options.indexed);
    case CosKind::kFineGrained:
      return std::make_unique<FineGrainedCos>(options.capacity,
                                              options.conflict,
                                              options.indexed);
    case CosKind::kLockFree:
      return std::make_unique<LockFreeCos>(options.capacity, options.conflict,
                                           options.reclaim, options.indexed);
    case CosKind::kStriped:
      return std::make_unique<StripedCos>(options.capacity, options.conflict,
                                          options.segment_width,
                                          options.indexed);
  }
  std::abort();  // unreachable: the switch above is exhaustive over CosKind
}

std::unique_ptr<Cos> make_parallel_insert_cos(const CosOptions& options) {
  if (!options.indexed ||
      conflict_key_extractor(options.conflict) == nullptr) {
    return make_cos(options);  // no key space to shard; serial DAG fallback
  }
  const std::size_t shards = options.insert_shards != 0
                                 ? options.insert_shards
                                 : 4 * std::max<std::size_t>(
                                           options.inserter_threads, 1);
  return std::make_unique<ParallelInsertCos>(options.capacity,
                                             options.conflict, shards,
                                             options.inserter_threads);
}

std::unique_ptr<Cos> make_cos(CosKind kind, std::size_t max_size,
                              ConflictFn conflict, bool indexed) {
  return make_cos(CosOptions{.kind = kind,
                             .capacity = max_size,
                             .conflict = conflict,
                             .indexed = indexed});
}

bool parse_cos_kind(std::string_view name, CosKind* out) {
  if (name == "coarse-grained" || name == "coarse") {
    *out = CosKind::kCoarseGrained;
  } else if (name == "fine-grained" || name == "fine") {
    *out = CosKind::kFineGrained;
  } else if (name == "lock-free" || name == "lockfree") {
    *out = CosKind::kLockFree;
  } else if (name == "striped") {
    *out = CosKind::kStriped;
  } else {
    return false;
  }
  return true;
}

const char* cos_kind_name(CosKind kind) {
  switch (kind) {
    case CosKind::kCoarseGrained:
      return "coarse-grained";
    case CosKind::kFineGrained:
      return "fine-grained";
    case CosKind::kLockFree:
      return "lock-free";
    case CosKind::kStriped:
      return "striped";
  }
  return "?";
}

bool parse_scheduler_policy(std::string_view name, SchedulerPolicy* out) {
  if (name == "cos-dag" || name == "dag") {
    *out = SchedulerPolicy::kCosDag;
  } else if (name == "early" || name == "early-scheduling") {
    *out = SchedulerPolicy::kEarlyScheduling;
  } else if (name == "parallel-insert" || name == "pinsert") {
    *out = SchedulerPolicy::kParallelInsert;
  } else if (name == "sequential" || name == "seq") {
    *out = SchedulerPolicy::kSequential;
  } else {
    return false;
  }
  return true;
}

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kCosDag:
      return "cos-dag";
    case SchedulerPolicy::kEarlyScheduling:
      return "early";
    case SchedulerPolicy::kParallelInsert:
      return "parallel-insert";
    case SchedulerPolicy::kSequential:
      return "sequential";
  }
  return "?";
}

}  // namespace psmr
