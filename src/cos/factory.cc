#include "cos/factory.h"

#include <cstdlib>

#include "cos/coarse_grained.h"
#include "cos/fine_grained.h"
#include "cos/lock_free.h"
#include "cos/striped.h"

namespace psmr {

std::unique_ptr<Cos> make_cos(const CosOptions& options) {
  switch (options.kind) {
    case CosKind::kCoarseGrained:
      return std::make_unique<CoarseGrainedCos>(options.capacity,
                                                options.conflict,
                                                options.indexed);
    case CosKind::kFineGrained:
      return std::make_unique<FineGrainedCos>(options.capacity,
                                              options.conflict,
                                              options.indexed);
    case CosKind::kLockFree:
      return std::make_unique<LockFreeCos>(options.capacity, options.conflict,
                                           options.reclaim, options.indexed);
    case CosKind::kStriped:
      return std::make_unique<StripedCos>(options.capacity, options.conflict,
                                          options.segment_width,
                                          options.indexed);
  }
  std::abort();  // unreachable: the switch above is exhaustive over CosKind
}

std::unique_ptr<Cos> make_cos(CosKind kind, std::size_t max_size,
                              ConflictFn conflict, bool indexed) {
  return make_cos(CosOptions{.kind = kind,
                             .capacity = max_size,
                             .conflict = conflict,
                             .indexed = indexed});
}

bool parse_cos_kind(std::string_view name, CosKind* out) {
  if (name == "coarse-grained" || name == "coarse") {
    *out = CosKind::kCoarseGrained;
  } else if (name == "fine-grained" || name == "fine") {
    *out = CosKind::kFineGrained;
  } else if (name == "lock-free" || name == "lockfree") {
    *out = CosKind::kLockFree;
  } else if (name == "striped") {
    *out = CosKind::kStriped;
  } else {
    return false;
  }
  return true;
}

const char* cos_kind_name(CosKind kind) {
  switch (kind) {
    case CosKind::kCoarseGrained:
      return "coarse-grained";
    case CosKind::kFineGrained:
      return "fine-grained";
    case CosKind::kLockFree:
      return "lock-free";
    case CosKind::kStriped:
      return "striped";
  }
  return "?";
}

bool parse_scheduler_policy(std::string_view name, SchedulerPolicy* out) {
  if (name == "cos-dag" || name == "dag") {
    *out = SchedulerPolicy::kCosDag;
  } else if (name == "early" || name == "early-scheduling") {
    *out = SchedulerPolicy::kEarlyScheduling;
  } else if (name == "sequential" || name == "seq") {
    *out = SchedulerPolicy::kSequential;
  } else {
    return false;
  }
  return true;
}

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kCosDag:
      return "cos-dag";
    case SchedulerPolicy::kEarlyScheduling:
      return "early";
    case SchedulerPolicy::kSequential:
      return "sequential";
  }
  return "?";
}

}  // namespace psmr
