#include "cos/factory.h"

#include "cos/coarse_grained.h"
#include "cos/fine_grained.h"
#include "cos/lock_free.h"
#include "cos/striped.h"

namespace psmr {

std::unique_ptr<Cos> make_cos(CosKind kind, std::size_t max_size,
                              ConflictFn conflict, bool indexed) {
  switch (kind) {
    case CosKind::kCoarseGrained:
      return std::make_unique<CoarseGrainedCos>(max_size, conflict, indexed);
    case CosKind::kFineGrained:
      return std::make_unique<FineGrainedCos>(max_size, conflict, indexed);
    case CosKind::kLockFree:
      return std::make_unique<LockFreeCos>(max_size, conflict,
                                           LockFreeReclaim::kEpoch, indexed);
    case CosKind::kStriped:
      return std::make_unique<StripedCos>(max_size, conflict,
                                          /*segment_width=*/16, indexed);
  }
  return nullptr;
}

bool parse_cos_kind(std::string_view name, CosKind* out) {
  if (name == "coarse-grained" || name == "coarse") {
    *out = CosKind::kCoarseGrained;
  } else if (name == "fine-grained" || name == "fine") {
    *out = CosKind::kFineGrained;
  } else if (name == "lock-free" || name == "lockfree") {
    *out = CosKind::kLockFree;
  } else if (name == "striped") {
    *out = CosKind::kStriped;
  } else {
    return false;
  }
  return true;
}

const char* cos_kind_name(CosKind kind) {
  switch (kind) {
    case CosKind::kCoarseGrained:
      return "coarse-grained";
    case CosKind::kFineGrained:
      return "fine-grained";
    case CosKind::kLockFree:
      return "lock-free";
    case CosKind::kStriped:
      return "striped";
  }
  return "?";
}

}  // namespace psmr
