#include "cos/lock_free.h"

#include <algorithm>
#include <thread>

#include "cos/cos_metrics.h"

namespace psmr {

LockFreeCos::Node::~Node() { delete[] dep_me.load(std::memory_order_relaxed); }  // NOLINT(psmr-relaxed-order-audit) destructor; node unreachable by now

LockFreeCos::LockFreeCos(std::size_t max_size, ConflictFn conflict,
                         LockFreeReclaim reclaim, bool indexed)
    : max_size_(max_size),
      conflict_(conflict),
      reclaim_(reclaim),
      extract_(indexed ? conflict_key_extractor(conflict) : nullptr),
      index_(extract_ != nullptr ? max_size : 1),
      space_(static_cast<std::ptrdiff_t>(max_size)),
      ready_(0) {
  space_.instrument(&cos_metrics().insert_blocks,
                    &cos_metrics().insert_block_ns);
  ready_.instrument(&cos_metrics().get_blocks, &cos_metrics().get_block_ns);
  // Every retire into this domain comes from the insert thread: physical
  // removal (helped_remove) and dep_me array replacement are confined to it
  // (§6.2.1). Have the EBR domain abort in debug builds if that ever stops
  // being true.
  ebr_.debug_expect_single_remover();
}

LockFreeCos::~LockFreeCos() {
  close();
  // Workers are gone by contract once close() returned and they drained;
  // free whatever is still linked, then let the EBR domain drain its limbo
  // lists (its destructor would too, but doing it here keeps the node count
  // stats coherent before members die).
  Node* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    Node* next = node->nxt.load(std::memory_order_acquire);
    delete node;
    node = next;
  }
  for (Node* leaked : leaked_) delete leaked;
  ebr_.drain_all_unsafe();
}

// ---------------------------------------------------------------------------
// Blocking layer (Alg. 5).
// ---------------------------------------------------------------------------

bool LockFreeCos::insert(const Command& c) {
  if (!space_.acquire()) return false;  // closed
  const int ready_nodes = lf_insert(c);
  cos_metrics().inserts.inc();
  if (ready_nodes > 0) {
    cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(ready_nodes));
  }
  ready_.release(ready_nodes);
  return true;
}

bool LockFreeCos::insert_batch(std::span<const Command> batch) {
  // Chunk by capacity so the space acquisition can always complete.
  while (!batch.empty()) {
    const std::size_t take = std::min(batch.size(), max_size_);
    for (std::size_t i = 0; i < take; ++i) {
      if (!space_.acquire()) return false;  // closed
    }
    const int ready_nodes = lf_insert_batch(batch.first(take));
    cos_metrics().inserts.inc(take);
    if (ready_nodes > 0) {
      cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(ready_nodes));
    }
    ready_.release(ready_nodes);
    batch = batch.subspan(take);
  }
  return true;
}

CosHandle LockFreeCos::get() {
  if (!ready_.acquire()) return {};  // closed
  Node* node = lf_get();
  if (node == nullptr) return {};  // closed while searching
  cos_metrics().gets.inc();
  return {&node->cmd, node};
}

void LockFreeCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);
  const int ready_nodes = lf_remove(node);
  cos_metrics().removes.inc();
  if (ready_nodes > 0) {
    cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(ready_nodes));
  }
  ready_.release(ready_nodes);
  space_.release();
}

void LockFreeCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_.close();
}

// ---------------------------------------------------------------------------
// Lock-free layer (Alg. 7).
// ---------------------------------------------------------------------------

// Returns 1 iff this call transitioned `n` from wtg to rdy.
//
// Correctness of the permit accounting hinges on two points:
//  (1) Exactly one caller wins the wtg -> rdy CAS, so a node is counted at
//      most once across the concurrent test_ready calls made by the insert
//      thread (end of lf_insert) and by removers (via dep_me).
//  (2) At least one caller's dependency check passes once the last
//      dependency is logically removed. The st load below is seq_cst: a
//      caller that observes st == wtg observes (happens-before) the node's
//      complete dep_on set, and in the seq_cst total order either the
//      inserter's final test_ready follows a dependency's rmd store (and
//      sees it satisfied), or that dependency's remover snapshots dep_me
//      after the node was appended (and tests it here).
int LockFreeCos::test_ready(Node* n) {
  if (n->st.load(std::memory_order_seq_cst) != kWtg) return 0;
  for (std::size_t i = 0; i < n->dep_on_count; ++i) {
    Node* dep = n->dep_on[i].load(std::memory_order_seq_cst);
    if (dep != nullptr && dep->st.load(std::memory_order_seq_cst) != kRmd) {
      return 0;  // a live dependency remains; its remover will re-test us
    }
  }
  std::uint8_t expected = kWtg;
  return n->st.compare_exchange_strong(expected, kRdy,
                                       std::memory_order_seq_cst)
             ? 1
             : 0;
}

// Grows/publishes the dependent list of `node`. Insert thread only.
void LockFreeCos::append_dependent(Node* node, Node* dependent) {
  const std::size_t count =
      node->dep_me_count.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
  if (count == node->dep_me_capacity) {
    const std::size_t new_capacity =
        node->dep_me_capacity == 0 ? 8 : node->dep_me_capacity * 2;
    auto* bigger = new std::atomic<Node*>[new_capacity];
    auto* old = node->dep_me.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    for (std::size_t i = 0; i < count; ++i) {
      bigger[i].store(old[i].load(std::memory_order_relaxed),  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
                      std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    }
    for (std::size_t i = count; i < new_capacity; ++i) {
      bigger[i].store(nullptr, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    }
    // Publish the array before the count that makes new slots visible;
    // concurrent readers that loaded the old array only index below the
    // previously published count, which the old array still covers.
    node->dep_me.store(bigger, std::memory_order_seq_cst);
    node->dep_me_capacity = new_capacity;
    if (old != nullptr) {
      ebr_.retire_raw(old, [](void* p) {
        delete[] static_cast<std::atomic<Node*>*>(p);
      });
    }
  }
  node->dep_me.load(std::memory_order_relaxed)[count].store(  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
      dependent, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
  node->dep_me_count.store(count + 1, std::memory_order_seq_cst);
}

// Physically unlinks a logically removed node. Called only by the insert
// thread (topology changes are sequential, §6.2.1): clears the edges from
// `gone` out of its dependents' dep_on sets, bypasses it in the list, and
// retires its memory to the epoch domain.
void LockFreeCos::helped_remove(Node* gone, Node* prev) {
  // Purge the index entries *before* the node is retired; probes may have
  // already pruned some of them lazily.
  if (extract_ != nullptr) index_.remove(extract_(gone->cmd).keys, gone);
  const std::size_t dependents =
      gone->dep_me_count.load(std::memory_order_seq_cst);
  std::atomic<Node*>* dep_me = gone->dep_me.load(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < dependents; ++i) {
    Node* dependent = dep_me[i].load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    // nullptr: the dependent was physically removed before `gone` (the
    // unhook loop below cleared it). That happens when a walk passes `gone`
    // while it is still executing, then helps the already-finished
    // dependent further down the list — `gone` itself is only helped by a
    // later walk. Non-null entries are not yet physically removed, so
    // writing their dep_on is safe.
    if (dependent == nullptr) continue;
    for (std::size_t j = 0; j < dependent->dep_on_count; ++j) {
      if (dependent->dep_on[j].load(std::memory_order_relaxed) == gone) {  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
        dependent->dep_on[j].store(nullptr, std::memory_order_seq_cst);
        break;
      }
    }
  }
  // Unhook `gone` from the dep_me list of every dependency that is still
  // physically present (non-null dep_on entries — helped_remove of a
  // dependency nulls its entry, and all physical removal runs on this
  // thread). Without this, a later helped_remove of the dependency would
  // chase a dangling pointer to `gone` (use-after-free). Concurrent dep_me
  // readers (lf_remove) tolerate the null; a reader that already loaded the
  // entry is pinned, so `gone` outlives its traversal.
  for (std::size_t j = 0; j < gone->dep_on_count; ++j) {
    Node* dep = gone->dep_on[j].load(std::memory_order_seq_cst);
    if (dep == nullptr) continue;
    const std::size_t n = dep->dep_me_count.load(std::memory_order_seq_cst);
    std::atomic<Node*>* arr = dep->dep_me.load(std::memory_order_seq_cst);
    for (std::size_t i = 0; i < n; ++i) {
      if (arr[i].load(std::memory_order_relaxed) == gone) {  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
        arr[i].store(nullptr, std::memory_order_seq_cst);
        break;
      }
    }
  }
  Node* next = gone->nxt.load(std::memory_order_seq_cst);
  if (prev == nullptr) {
    head_.store(next, std::memory_order_seq_cst);
  } else {
    prev->nxt.store(next, std::memory_order_seq_cst);
  }
  if (reclaim_ == LockFreeReclaim::kEpoch) {
    ebr_.retire(gone);
  } else {
    // Leak mode (ablation): defer everything to the destructor — the
    // cheapest possible hot path, standing in for "a GC that never runs".
    leaked_.push_back(gone);
  }
}

// Indexed variant of lf_insert: dependency discovery via the key index
// instead of the list walk. The publication protocol — dep_me appends
// (seq_cst), exact dep_on materialization, link, ins -> wtg, test_ready —
// is byte-for-byte the same as the walking path; the exact-once permit
// accounting argument in test_ready only depends on that ordering, not on
// how the dependencies were discovered. Entries naming logically removed
// nodes are pruned by the probe; physical unlinking is deferred to
// sweep_removed(), which runs when half the window is logical garbage.
int LockFreeCos::lf_insert_indexed(const Command& c) {
  auto* added = new Node(c);
  auto guard = ebr_.pin();

  if (rmd_pending_.load(std::memory_order_relaxed) >= sweep_threshold()) {  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
    sweep_removed();
  }

  scratch_deps_.clear();
  const KeyedAccess acc = extract_(c);
  const std::uint64_t stamp = ++probe_seq_;
  index_.for_each_conflicting(
      acc.keys, acc.write, [&](const KeyIndex::Entry& e) {
        Node* node = static_cast<Node*>(e.node);
        if (node->probe_stamp == stamp) return true;  // seen via another key
        if (node->st.load(std::memory_order_seq_cst) == kRmd) {
          return false;  // logically removed: no edge, prune the entry
        }
        node->probe_stamp = stamp;
        scratch_deps_.push_back(node);
        append_dependent(node, added);
        return true;
      });

  added->dep_on_count = scratch_deps_.size();
  if (!scratch_deps_.empty()) {
    added->dep_on =
        std::make_unique<std::atomic<Node*>[]>(scratch_deps_.size());
    for (std::size_t i = 0; i < scratch_deps_.size(); ++i) {
      added->dep_on[i].store(scratch_deps_[i], std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    }
  }

  // Link at the tail shortcut (inserter-only; sweep_removed repairs it).
  // The tail node may be logically removed — linking after it is still
  // correct, it is simply bypassed at the next sweep.
  if (tail_ == nullptr) {
    head_.store(added, std::memory_order_seq_cst);
  } else {
    tail_->nxt.store(added, std::memory_order_seq_cst);
  }
  tail_ = added;
  index_.add(acc.keys, acc.write, added);
  population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  added->st.store(kWtg, std::memory_order_seq_cst);
  return test_ready(added);
}

void LockFreeCos::sweep_removed() {
  std::size_t helped = 0;
  Node* prev = nullptr;
  Node* cur = head_.load(std::memory_order_seq_cst);
  while (cur != nullptr) {
    Node* next = cur->nxt.load(std::memory_order_seq_cst);
    if (cur->st.load(std::memory_order_seq_cst) == kRmd) {
      helped_remove(cur, prev);
      ++helped;
      cur = next;
      continue;
    }
    prev = cur;
    cur = next;
  }
  tail_ = prev;  // last live node (nullptr when the list emptied)
  if (helped > 0) {
    rmd_pending_.fetch_sub(helped, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
  }
}

int LockFreeCos::lf_insert(const Command& c) {
  if (extract_ != nullptr) return lf_insert_indexed(c);
  auto* added = new Node(c);
  auto guard = ebr_.pin();

  scratch_deps_.clear();
  Node* prev = nullptr;  // last node seen alive (still linked)
  Node* cur = head_.load(std::memory_order_seq_cst);
  while (cur != nullptr) {
    Node* next = cur->nxt.load(std::memory_order_seq_cst);
    if (cur->st.load(std::memory_order_seq_cst) == kRmd) {
      helped_remove(cur, prev);
      cur = next;
      continue;
    }
    if (conflict_(cur->cmd, c)) {
      // Record the edge on both endpoints. The dep_me append is published
      // immediately (concurrent removers must learn about the dependent);
      // the new node's own dep_on side stays private until after the walk.
      // A remover that reaches `added` through dep_me before then bounces
      // off the ins state in test_ready.
      scratch_deps_.push_back(cur);
      append_dependent(cur, added);
    }
    prev = cur;
    cur = next;
  }

  // Materialize the exact-sized dependency array before publication.
  added->dep_on_count = scratch_deps_.size();
  if (!scratch_deps_.empty()) {
    added->dep_on =
        std::make_unique<std::atomic<Node*>[]>(scratch_deps_.size());
    for (std::size_t i = 0; i < scratch_deps_.size(); ++i) {
      added->dep_on[i].store(scratch_deps_[i], std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    }
  }

  // Publish: link at the tail, then open the node for readiness tests.
  if (prev == nullptr) {
    head_.store(added, std::memory_order_seq_cst);
  } else {
    prev->nxt.store(added, std::memory_order_seq_cst);
  }
  population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  added->st.store(kWtg, std::memory_order_seq_cst);
  return test_ready(added);
}

// Batch variant of lf_insert: one traversal discovers the edges from every
// existing node to every command in the batch; intra-batch edges follow
// from delivery order. Nodes are then published (and opened for readiness
// tests) one by one, oldest first, preserving per-node invariants: a node's
// dep_on set is complete before its ins -> wtg transition, and a dependent
// recorded in an unpublished node's dep_me bounces off the ins state.
int LockFreeCos::lf_insert_batch(std::span<const Command> batch) {
  if (batch.empty()) return 0;
  if (extract_ != nullptr) {
    // Indexed mode: per-command indexed inserts. Intra-batch edges arise
    // naturally — each command is indexed before the next one probes. The
    // single-traversal amortization below only pays off for the O(n) walk,
    // which the index already eliminated.
    int ready_nodes = 0;
    for (const Command& c : batch) ready_nodes += lf_insert_indexed(c);
    return ready_nodes;
  }
  auto guard = ebr_.pin();

  std::vector<Node*> added;
  added.reserve(batch.size());
  for (const Command& c : batch) added.push_back(new Node(c));
  std::vector<std::vector<Node*>> deps(batch.size());

  Node* prev = nullptr;
  Node* cur = head_.load(std::memory_order_seq_cst);
  while (cur != nullptr) {
    Node* next = cur->nxt.load(std::memory_order_seq_cst);
    if (cur->st.load(std::memory_order_seq_cst) == kRmd) {
      helped_remove(cur, prev);
      cur = next;
      continue;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (conflict_(cur->cmd, batch[i])) {
        deps[i].push_back(cur);
        append_dependent(cur, added[i]);
      }
    }
    prev = cur;
    cur = next;
  }

  // Intra-batch dependencies (batch order == delivery order).
  for (std::size_t j = 1; j < batch.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (conflict_(batch[i], batch[j])) {
        deps[j].push_back(added[i]);
        append_dependent(added[i], added[j]);
      }
    }
  }

  int ready_nodes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Node* node = added[i];
    node->dep_on_count = deps[i].size();
    if (!deps[i].empty()) {
      node->dep_on =
          std::make_unique<std::atomic<Node*>[]>(deps[i].size());
      for (std::size_t k = 0; k < deps[i].size(); ++k) {
        node->dep_on[k].store(deps[i][k], std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
      }
    }
    if (prev == nullptr) {
      head_.store(node, std::memory_order_seq_cst);
    } else {
      prev->nxt.store(node, std::memory_order_seq_cst);
    }
    prev = node;
    population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
    node->st.store(kWtg, std::memory_order_seq_cst);
    ready_nodes += test_ready(node);
  }
  return ready_nodes;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LockFreeCos::debug_edges() {
  // Requires quiescence. Live nodes' non-null dep_me entries are all live:
  // a dependent cannot execute (and so cannot be removed) before every one
  // of its dependencies was removed; entries of physically removed
  // dependents are nulled by helped_remove.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  auto guard = ebr_.pin();
  for (Node* cur = head_.load(std::memory_order_seq_cst); cur != nullptr;
       cur = cur->nxt.load(std::memory_order_seq_cst)) {
    if (cur->st.load(std::memory_order_seq_cst) == kRmd) continue;
    const std::size_t count = cur->dep_me_count.load(std::memory_order_seq_cst);
    std::atomic<Node*>* dep_me = cur->dep_me.load(std::memory_order_seq_cst);
    for (std::size_t i = 0; i < count; ++i) {
      Node* dependent = dep_me[i].load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
      if (dependent == nullptr) continue;
      edges.emplace_back(cur->cmd.id, dependent->cmd.id);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

LockFreeCos::Node* LockFreeCos::lf_get() {
  while (true) {
    {
      auto guard = ebr_.pin();
      Node* cur = head_.load(std::memory_order_seq_cst);
      while (cur != nullptr) {
        std::uint8_t expected = kRdy;
        if (cur->st.compare_exchange_strong(expected, kExe,
                                            std::memory_order_seq_cst)) {
          return cur;
        }
        cur = cur->nxt.load(std::memory_order_seq_cst);
      }
    }
    // Our permit's node is behind where the traversal already passed (some
    // other get() may have taken the node we were signalled for, leaving a
    // different, earlier node for us). Retry with a fresh pin.
    if (closed_.load(std::memory_order_acquire)) return nullptr;
    std::this_thread::yield();
  }
}

int LockFreeCos::lf_remove(Node* n) {
  auto guard = ebr_.pin();
  n->st.store(kRmd, std::memory_order_seq_cst);  // logical removal
  if (extract_ != nullptr) {
    rmd_pending_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
  }
  population_.fetch_sub(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  int ready_nodes = 0;
  const std::size_t dependents =
      n->dep_me_count.load(std::memory_order_seq_cst);
  std::atomic<Node*>* dep_me = n->dep_me.load(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < dependents; ++i) {
    Node* dependent = dep_me[i].load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) remover-side edge maintenance; publication ordered by the insert CAS
    // Entries are nulled when a dependent is physically removed; a
    // physically removed dependent is past rdy and needs no test.
    if (dependent == nullptr) continue;
    ready_nodes += test_ready(dependent);
  }
  return ready_nodes;
}

}  // namespace psmr
