// Construction of COS implementations by name/enum — used by the drivers,
// benchmarks and examples to sweep all three techniques uniformly.
#pragma once

#include <memory>
#include <string_view>

#include "cos/cos.h"

namespace psmr {

enum class CosKind {
  kCoarseGrained,  // Alg. 2 (CBASE-style monitor)
  kFineGrained,    // Algs. 3-4 (lock coupling)
  kLockFree,       // Algs. 5-7 (nonblocking + lazy removal)
  kStriped,        // extension: segment locks (§7.3.2's granularity remark)
};

// The paper fixes the dependency graph at 150 node slots for all techniques.
inline constexpr std::size_t kPaperGraphSize = 150;

// `indexed` enables the key-indexed dependency tracker (dep_tracker.h) for
// per-key-decomposable relations; opaque relations fall back to the
// pairwise insert scan regardless, so leaving it on is always safe.
std::unique_ptr<Cos> make_cos(CosKind kind, std::size_t max_size,
                              ConflictFn conflict, bool indexed = true);

// Parses "coarse-grained" / "fine-grained" / "lock-free" (also accepts
// "coarse", "fine", "lockfree"). Returns false on unknown names.
bool parse_cos_kind(std::string_view name, CosKind* out);

const char* cos_kind_name(CosKind kind);

}  // namespace psmr
