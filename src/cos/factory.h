// Construction of COS implementations by name/enum — used by the drivers,
// benchmarks and examples to sweep all techniques uniformly — plus the
// scheduler-policy enum that selects how a replica turns delivery order
// into execution order.
#pragma once

#include <memory>
#include <string_view>

#include "cos/cos.h"
#include "cos/reclaim.h"

namespace psmr {

enum class CosKind {
  kCoarseGrained,  // Alg. 2 (CBASE-style monitor)
  kFineGrained,    // Algs. 3-4 (lock coupling)
  kLockFree,       // Algs. 5-7 (nonblocking + lazy removal)
  kStriped,        // extension: segment locks (§7.3.2's granularity remark)
};

// How a replica maps delivery order to execution order.
enum class SchedulerPolicy {
  kCosDag,          // parallel SMR: every command goes through the COS DAG
  kEarlyScheduling, // class-routed per-worker queues; DAG only for barriers
  kParallelInsert,  // sharded key-index DAG; pooled inserter threads
  kSequential,      // classical SMR: the scheduler executes everything
};

// The paper fixes the dependency graph at 150 node slots for all techniques.
inline constexpr std::size_t kPaperGraphSize = 150;

// Construction parameters for make_cos(). Aggregate — override fields with
// designated initializers, e.g.
//   make_cos({.kind = CosKind::kStriped, .conflict = fn, .segment_width = 8})
struct CosOptions {
  // Which implementation to build.
  CosKind kind = CosKind::kLockFree;
  // Maximum number of commands held (the paper's graph size; semaphore
  // `space` bound).
  std::size_t capacity = kPaperGraphSize;
  // The service's conflict relation (#C). Required.
  ConflictFn conflict = nullptr;
  // Enables the key-indexed dependency tracker (dep_tracker.h) for
  // per-key-decomposable relations; opaque relations fall back to the
  // pairwise insert scan regardless, so leaving it on is always safe.
  bool indexed = true;
  // Lock-free DAG only: node-reclamation policy (epoch-based vs. leak-until-
  // destruction, the reclamation ablation's knob).
  LockFreeReclaim reclaim = LockFreeReclaim::kEpoch;
  // Striped DAG only: nodes per segment lock (the granularity spectrum's
  // dial; 1 behaves like fine-grained, huge widths like coarse-grained).
  std::size_t segment_width = 16;
  // Parallel-insert scheduling (SchedulerPolicy::kParallelInsert /
  // make_parallel_insert_cos) only. Key-space shards, rounded up to a power
  // of two; 0 = auto (4x the inserter threads, so the static
  // shard-to-thread assignment balances even under moderate skew).
  std::size_t insert_shards = 0;
  // Dependency-probe pool size; clamped to [1, shards]. 1 reproduces the
  // single-inserter pipeline (the ablation baseline).
  std::size_t inserter_threads = 2;
};

std::unique_ptr<Cos> make_cos(const CosOptions& options);

// Builds the sharded parallel-insert COS (cos/parallel_insert.h) when the
// relation is per-key-decomposable and `indexed` is on; otherwise falls
// back to make_cos(options) — opaque relations have no key space to shard,
// so the serial pairwise DAG keeps its semantics.
std::unique_ptr<Cos> make_parallel_insert_cos(const CosOptions& options);

// Deprecated positional overload, kept for one release as a shim over
// CosOptions. It cannot reach the lock-free reclaim or striped
// segment-width knobs; new code should brace up a CosOptions instead.
[[deprecated("use make_cos(const CosOptions&)")]]
std::unique_ptr<Cos> make_cos(CosKind kind, std::size_t max_size,
                              ConflictFn conflict, bool indexed = true);

// Parses "coarse-grained" / "fine-grained" / "lock-free" / "striped" (also
// accepts the short forms "coarse", "fine", "lockfree"). Returns false on
// unknown names.
bool parse_cos_kind(std::string_view name, CosKind* out);

const char* cos_kind_name(CosKind kind);

// Parses "cos-dag" / "early" / "parallel-insert" / "sequential" (also
// accepts "dag", "early-scheduling", "pinsert", "seq"). Returns false on
// unknown names.
bool parse_scheduler_policy(std::string_view name, SchedulerPolicy* out);

const char* scheduler_policy_name(SchedulerPolicy policy);

}  // namespace psmr
