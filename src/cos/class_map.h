// Static command classes for early scheduling (arXiv 1805.05152).
//
// Early scheduling decides class-to-worker assignment at ordering time:
// each service derives, from its conflict relation, a *class map* that
// routes a command either to one worker's private queue (single-class) or
// through a synchronization barrier (cross-class / unclassifiable). The
// map must be *sound* with respect to the service's conflict relation:
//
//   if a # b, then route(a) and route(b) either name the same worker or at
//   least one of them is kSync.
//
// Under that contract the early scheduler preserves conflict order: same-
// worker commands execute in delivery order (FIFO queue), and a kSync
// command is ordered against *every* in-flight command by the barrier.
// Commands the map cannot classify are simply routed kSync — the COS DAG
// is the fallback for them, so a map may always answer kSync and remain
// correct (that is also the behaviour when a service provides no map).
//
// Determinism across replicas: the map is a pure function of the command
// and the worker count, and command ids are stamped in delivery order, so
// all replicas with equal worker counts route identically. Replicas with
// *different* worker counts still converge — conflicting commands are
// serialized in delivery order by the contract above regardless of which
// worker executes them, and independent commands commute by definition.
#pragma once

#include <cstdint>

#include "cos/command.h"

namespace psmr {

struct ClassRoute {
  enum Kind : std::uint8_t {
    kWorker,  // single-class: execute on `worker`'s private queue
    kSync,    // cross-class or unclassifiable: barrier + COS DAG fallback
  };
  Kind kind = kSync;
  std::uint32_t worker = 0;  // meaningful only when kind == kWorker
};

// A class map: pure function of (command, worker count). `workers` is >= 1.
using ClassMapFn = ClassRoute (*)(const Command& c, std::uint32_t workers);

// Per-key/per-partition classes for keyset relations (KV, bank): the class
// of key k is k mod workers. A command whose conflict keys all fall in one
// class is routed to that class's worker; commands spanning classes (e.g.
// cross-partition transfers) or naming no keys are kSync. Sound for
// keyset_rw_conflict: a # b requires a shared key, and a shared key lands
// both commands in the same class unless one of them spans classes (kSync).
// Conservative by design — two reads of the same class serialize even
// though they do not conflict; that is the concurrency early scheduling
// trades for skipping the DAG.
inline ClassRoute keyed_class_map(const Command& c, std::uint32_t workers) {
  if (c.nkeys == 0) return {};
  const std::uint32_t cls =
      static_cast<std::uint32_t>(c.keys[0] % workers);
  for (std::uint8_t i = 1; i < c.nkeys; ++i) {
    if (static_cast<std::uint32_t>(c.keys[i] % workers) != cls) return {};
  }
  return {ClassRoute::kWorker, cls};
}

// Reader/writer classes for the single-shared-variable relation
// (rw_conflict, the paper's linked list): writes conflict with everything
// and pay the barrier; reads conflict with nothing but writes, so they
// spread round-robin over the workers by delivery order (ids are stamped
// identically at every replica). Sound for rw_conflict: a # b implies one
// of them writes, and every write is kSync.
inline ClassRoute rw_class_map(const Command& c, std::uint32_t workers) {
  if (is_write(c)) return {};
  return {ClassRoute::kWorker, static_cast<std::uint32_t>(c.id % workers)};
}

}  // namespace psmr
