// Striped (segment-locked) DAG — the paper's suggested middle point on the
// "lock granularity spectrum" (§7.3.2: "one could experiment with other
// granularities of locks (e.g., granular locks), trading concurrency for
// overhead").
//
// The delivery-ordered node list is chopped into fixed-width segments, each
// with its own mutex. Traversals (insert scan, get scan, remove's
// dependent-update walk) couple *segment* locks instead of node locks —
// 1/width of the fine-grained handoffs — and, unlike the fine-grained
// remove which must walk the list from the head to find its node, remove
// here jumps directly to the node's segment (nodes carry a segment
// back-pointer) and only walks the suffix. Coarse-grained is the width→∞
// end of this spectrum and fine-grained the width=1 end.
//
// Locking rules (same shape as the fine-grained proofs, at segment
// granularity):
//  - A node's fields are guarded by its segment's mutex.
//  - A traversal may only block on segment S while holding S's predecessor
//    (lock coupling), so the insert scan cannot be overtaken: a remover
//    that tombstones node a after the inserter recorded edge a->new will
//    reach the tail only after the new node was linked, and therefore
//    always finds the dependent it must release.
//  - remove's direct jump takes a single segment lock (never two
//    out-of-order), so it cannot deadlock with couplers; its target segment
//    cannot be freed because it still holds a live (executing) node.
//  - Fully dead segments are unlinked by the insert scan while holding the
//    predecessor and the dead segment (nobody can be waiting on it —
//    waiting requires holding that same predecessor), then freed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/semaphore.h"
#include "cos/cos.h"
#include "cos/dep_tracker.h"

namespace psmr {

class StripedCos final : public Cos {
 public:
  StripedCos(std::size_t max_size, ConflictFn conflict,
             std::size_t segment_width = 16, bool indexed = true);
  ~StripedCos() override;

  bool insert(const Command& c) override;
  CosHandle get() override;
  void remove(CosHandle h) override;
  void close() override;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> debug_edges() override;

  std::size_t capacity() const override { return max_size_; }
  std::size_t approx_size() const override {
    return population_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  }
  const char* name() const override { return "striped"; }

  std::size_t segment_width() const { return segment_width_; }

 private:
  struct Segment;

  struct Node {
    Command cmd;
    Segment* segment = nullptr;  // fixed at insertion
    bool executing = false;
    bool removed = false;
    int in_count = 0;
    std::uint64_t probe_stamp = 0;  // insert-thread-only probe de-dup
    std::vector<Node*> out;  // later nodes depending on this one
  };

  struct Segment {
    explicit Segment(std::size_t width) : nodes(width) {}
    // Segment locks share one rank (coupled walks and the indexed insert
    // nest them strictly in list order — an intra-rank order the runtime
    // checker admits via AllowSameRank and TSan validates). The
    // unique_lock/swap coupling is opaque to Clang TSA, so fields rely on
    // the comment contract below rather than GUARDED_BY.
    RankedMutex<lock_rank::kCosSegment, /*AllowSameRank=*/true> mx;
    // Slots fill monotonically; `used` only grows, `live` falls to zero
    // when every node has been removed. All guarded by mx.
    std::vector<Node> nodes;
    std::size_t used = 0;
    std::size_t live = 0;
    Segment* next = nullptr;
  };

  // True iff the node's slot has been published (counted in `used`).
  // Caller must hold the node's segment mutex.
  static bool published_in_segment(const Node& node) {
    return static_cast<std::size_t>(&node - node.segment->nodes.data()) <
           node.segment->used;
  }

  // Reclaims fully dead non-tail segments (indexed mode only — the pairwise
  // scan reclaims in passing, the indexed insert no longer walks). Insert
  // thread only. Purges the dead segments' index entries before freeing.
  void sweep_dead_segments();

  const std::size_t max_size_;
  const ConflictFn conflict_;
  const std::size_t segment_width_;
  // Indexed mode. The index is touched *only* by the insert thread: entry
  // nodes live in segments, and segments are freed only on the insert path
  // (sweep_dead_segments), which purges their entries first — so an index
  // entry can dangle onto a removed node (probes prune those lazily under
  // its segment lock) but never onto freed memory.
  const KeyExtractor extract_;
  KeyIndex index_;
  std::uint64_t probe_seq_ = 0;
  // Segments that became fully dead in remove(); sweep trigger (indexed
  // mode only). May transiently count the tail segment, which the sweep
  // skips until it stops being the tail.
  std::atomic<int> dead_segments_{0};

  Semaphore space_;
  Semaphore ready_;
  Segment head_;  // sentinel (width 0), never freed
  std::atomic<std::size_t> population_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace psmr
