// Key-indexed dependency tracker.
//
// Replaces the O(n) pairwise insert scan of the COS implementations with
// O(k) hash probes for per-key-decomposable conflict relations
// (conflict_key_extractor() in conflict.h). The index maps each conflict key
// to the list of *live* commands that currently access it, remembering for
// each whether the access is a write:
//
//   key -> [ {node, write}, {node, write}, ... ]   (insertion order)
//
// An inserted command then depends on exactly
//   - every live accessor of its keys, if it writes, or
//   - every live *writer* of its keys, if it reads,
// which — after de-duplication across keys — is bit-identical to the set the
// pairwise scan would produce with the same relation. Keeping *all* live
// accessors per key (not just the last writer plus readers-since) is what
// makes the sets identical even when several writers of one key are live at
// once; see DESIGN.md for the argument and the transitive-reduction
// trade-off.
//
// The table is open-addressed (linear probing, power-of-two capacity,
// tombstones) and per-key entry lists are small vectors. The structure is
// deliberately *unsynchronized*: every COS variant confines index access to
// its insert thread or guards it with the lock that already protects node
// deletion (see the per-variant notes in DESIGN.md). Because the guarding
// discipline lives in the callers, this class carries no capability
// annotations and no ranked mutex — data-race freedom of each variant's
// confinement is validated by the TSan CI job instead. Entries are pruned
// three ways:
//   - eagerly, by remove()/helped-remove paths that physically free nodes;
//   - lazily, when a probe observes a dead entry (the for_each_conflicting
//     callback returns false);
//   - wholesale, by clear() on COS destruction.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace psmr {

// Debug check of the sorted-keys precondition shared by add()/remove()/
// for_each_conflicting(): the adjacent-duplicate skip and the conflict
// merge in conflict.h are only correct over ascending keys (the Command
// invariant, command.h). Compiled out under NDEBUG.
inline void debug_assert_sorted_span(std::span<const std::uint64_t> keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    assert(keys[i - 1] <= keys[i] &&
           "KeyIndex requires sorted keys (Command invariant)");
  }
  (void)keys;
}

// splitmix64 finalizer — the full-avalanche mix KeyIndex probes with.
// Exposed so the sharded parallel-insert scheduler can derive its
// shard-of-key function from *high* bits of the same hash: KeyIndex consumes
// the low bits for slot selection, so disjoint bit ranges keep each shard's
// table uniformly loaded instead of striding it.
inline std::uint64_t key_index_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class KeyIndex {
 public:
  struct Entry {
    void* node = nullptr;
    bool write = false;
  };

  // `expected_keys` sizes the initial table (rounded up to a power of two);
  // the table grows as needed, so this is a hint, not a limit.
  explicit KeyIndex(std::size_t expected_keys = 64);

  KeyIndex(const KeyIndex&) = delete;
  KeyIndex& operator=(const KeyIndex&) = delete;

  // Registers `node` as an accessor of every key in `keys`. `keys` must be
  // sorted ascending (the Command invariant); adjacent duplicates are
  // registered once.
  void add(std::span<const std::uint64_t> keys, bool write, void* node);

  // Drops `node` from every key in `keys`. Tolerates entries already pruned
  // lazily by a probe. Slots whose entry list empties become tombstones.
  void remove(std::span<const std::uint64_t> keys, void* node);

  // Enumerates every indexed entry that a new accessor of `keys` (writing
  // iff `write`) would conflict with: all entries when writing, writer
  // entries when reading. The callback decides liveness: return true to keep
  // the entry, false to prune it from the index in place. A node accessing
  // several of `keys` is visited once per key — callers de-duplicate (the
  // COS variants stamp nodes with a per-insert sequence number).
  //
  // Fn: bool(const Entry&)
  template <typename Fn>
  void for_each_conflicting(std::span<const std::uint64_t> keys, bool write,
                            Fn&& fn) {
    debug_assert_sorted_span(keys);
    const std::uint64_t* prev = nullptr;
    for (const std::uint64_t& key : keys) {
      if (prev != nullptr && *prev == key) continue;
      prev = &key;
      Slot* slot = find(key);
      if (slot == nullptr) continue;
      std::vector<Entry>& entries = slot->entries;
      for (std::size_t i = 0; i < entries.size();) {
        if (!write && !entries[i].write) {
          ++i;  // read/read: no conflict, entry not even inspected
          continue;
        }
        if (fn(static_cast<const Entry&>(entries[i]))) {
          ++i;
        } else {
          entries[i] = entries.back();  // dead: prune in place
          entries.pop_back();
        }
      }
      if (entries.empty()) bury(slot);
    }
  }

  // Number of keys with at least one (possibly dead) entry.
  std::size_t key_count() const { return used_; }

  // Total entries across all keys, dead ones included. O(capacity).
  std::size_t entry_count() const;

  // Current table size in slots (a power of two). Exposed for the
  // bounded-capacity churn regression test; not meaningful to normal
  // callers.
  std::size_t slot_capacity() const { return slots_.size(); }

  void clear();

 private:
  enum class SlotState : std::uint8_t { kEmpty, kUsed, kTombstone };

  struct Slot {
    std::uint64_t key = 0;
    std::vector<Entry> entries;
    SlotState state = SlotState::kEmpty;
  };

  Slot* find(std::uint64_t key);
  Slot* find_or_insert(std::uint64_t key);
  void bury(Slot* slot);
  void rehash();

  std::vector<Slot> slots_;
  std::size_t used_ = 0;       // kUsed slots
  std::size_t occupied_ = 0;   // kUsed + kTombstone (drives rehash)
};

}  // namespace psmr
