#include "cos/striped.h"

#include <thread>

namespace psmr {

StripedCos::StripedCos(std::size_t max_size, ConflictFn conflict,
                       std::size_t segment_width)
    : max_size_(max_size),
      conflict_(conflict),
      segment_width_(segment_width == 0 ? 1 : segment_width),
      space_(static_cast<std::ptrdiff_t>(max_size)),
      ready_(0),
      head_(0) {}

StripedCos::~StripedCos() {
  close();
  Segment* segment = head_.next;
  while (segment != nullptr) {
    Segment* next = segment->next;
    delete segment;
    segment = next;
  }
}

bool StripedCos::insert(const Command& c) {
  if (!space_.acquire()) return false;  // closed

  // Reserve the slot in the tail segment (inserts are single-threaded, so
  // the tail is stable for the duration of the call). The slot stays
  // unpublished (not counted in `used`) until the scan completes.
  Segment* tail = &head_;
  {
    // Walk to the tail without locks: `next` pointers are only changed by
    // this same thread (appends and dead-segment unlinking both happen on
    // the insert path).
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard tail_lock(tail->mx);
    if (tail == &head_ || tail->used == tail->nodes.size()) {
      auto* fresh = new Segment(segment_width_);
      tail->next = fresh;
      tail = fresh;
    }
  }
  Node* added = nullptr;
  {
    std::lock_guard tail_lock(tail->mx);
    added = &tail->nodes[tail->used];
    added->cmd = c;
    added->segment = tail;
  }

  // Conflict scan: couple segment locks from the head; record edges from
  // every live conflicting node. The dependent-side counter lives in the
  // (still unpublished) slot and is guarded by the tail's mutex, which
  // removers also take to decrement it.
  Segment* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  Segment* cur = prev->next;
  while (cur != nullptr) {
    std::unique_lock cur_lock(cur->mx);
    // Reclaim fully dead segments in passing (only the insert thread
    // relinks, and nobody can be waiting on `cur`: waiting requires
    // holding `prev`, which we hold). The tail is kept even when dead —
    // it is this insert's append target.
    if (cur != tail && cur->live == 0 && cur->used == cur->nodes.size()) {
      prev->next = cur->next;
      cur_lock.unlock();
      delete cur;
      cur = prev->next;
      continue;
    }
    for (std::size_t i = 0; i < cur->used; ++i) {
      Node& node = cur->nodes[i];
      if (node.removed || &node == added) continue;
      if (conflict_(node.cmd, c)) {
        node.out.push_back(added);
        if (cur == tail) {
          ++added->in_count;  // tail lock is already held
        } else {
          std::lock_guard tail_lock(tail->mx);
          ++added->in_count;
        }
      }
    }
    prev_lock.swap(cur_lock);
    prev = cur;
    cur = cur->next;
  }
  prev_lock.unlock();

  // Publish and test readiness under the tail lock — the same lock a
  // remover holds when its decrement reaches zero, so exactly one side
  // observes the ready transition.
  bool is_ready = false;
  {
    std::lock_guard tail_lock(tail->mx);
    ++tail->used;
    ++tail->live;
    is_ready = added->in_count == 0;
  }
  population_.fetch_add(1, std::memory_order_relaxed);
  if (is_ready) ready_.release();
  return true;
}

CosHandle StripedCos::get() {
  if (!ready_.acquire()) return {};  // closed
  while (true) {
    Segment* prev = &head_;
    std::unique_lock prev_lock(prev->mx);
    Segment* cur = prev->next;
    while (cur != nullptr) {
      std::unique_lock cur_lock(cur->mx);
      for (std::size_t i = 0; i < cur->used; ++i) {
        Node& node = cur->nodes[i];
        if (!node.removed && !node.executing && node.in_count == 0) {
          node.executing = true;
          return {&node.cmd, &node};
        }
      }
      prev_lock.swap(cur_lock);
      prev = cur;
      cur = cur->next;
    }
    prev_lock.unlock();
    if (closed_.load(std::memory_order_acquire)) return {};
    std::this_thread::yield();
  }
}

void StripedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);

  // Tombstone the node and snapshot its dependents under its own segment's
  // lock. The insert scan checks `removed` under this same lock before
  // recording an edge, so the snapshot is complete: any later edge can only
  // be added to a node the inserter saw alive, i.e., before this point.
  std::vector<Node*> dependents;
  {
    std::lock_guard lock(node->segment->mx);
    node->removed = true;
    --node->segment->live;
    dependents.swap(node->out);
  }

  // Release dependents. One lock at a time (never while holding another),
  // so the direct jumps cannot deadlock with coupled traversals. A
  // dependent still carrying our edge cannot have executed, so its segment
  // is alive.
  int freed = 0;
  for (Node* dependent : dependents) {
    std::lock_guard lock(dependent->segment->mx);
    if (--dependent->in_count == 0 && !dependent->executing &&
        published_in_segment(*dependent)) {
      ++freed;
    }
  }

  population_.fetch_sub(1, std::memory_order_relaxed);
  ready_.release(freed);
  space_.release();
}

void StripedCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_.close();
}

}  // namespace psmr
