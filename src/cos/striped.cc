#include "cos/striped.h"

#include <algorithm>
#include <thread>

#include "cos/cos_metrics.h"

namespace psmr {
namespace {

// Dead segments tolerated before the insert thread runs a reclamation
// sweep (indexed mode). Only the tail segment is ever exempt from a sweep,
// so a triggered sweep always reclaims at least threshold-1 segments.
constexpr int kSweepThreshold = 4;

}  // namespace

StripedCos::StripedCos(std::size_t max_size, ConflictFn conflict,
                       std::size_t segment_width, bool indexed)
    : max_size_(max_size),
      conflict_(conflict),
      segment_width_(segment_width == 0 ? 1 : segment_width),
      extract_(indexed ? conflict_key_extractor(conflict) : nullptr),
      index_(extract_ != nullptr ? max_size : 1),
      space_(static_cast<std::ptrdiff_t>(max_size)),
      ready_(0),
      head_(0) {
  space_.instrument(&cos_metrics().insert_blocks,
                    &cos_metrics().insert_block_ns);
  ready_.instrument(&cos_metrics().get_blocks, &cos_metrics().get_block_ns);
}

StripedCos::~StripedCos() {
  close();
  Segment* segment = head_.next;
  while (segment != nullptr) {
    Segment* next = segment->next;
    delete segment;
    segment = next;
  }
}

bool StripedCos::insert(const Command& c) {
  if (!space_.acquire()) return false;  // closed

  if (extract_ != nullptr &&
      dead_segments_.load(std::memory_order_relaxed) >= kSweepThreshold) {  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
    sweep_dead_segments();
  }

  // Reserve the slot in the tail segment (inserts are single-threaded, so
  // the tail is stable for the duration of the call). The slot stays
  // unpublished (not counted in `used`) until the scan completes.
  Segment* tail = &head_;
  {
    // Walk to the tail without locks: `next` pointers are only changed by
    // this same thread (appends and dead-segment unlinking both happen on
    // the insert path).
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard tail_lock(tail->mx);
    if (tail == &head_ || tail->used == tail->nodes.size()) {
      auto* fresh = new Segment(segment_width_);
      tail->next = fresh;
      tail = fresh;
    }
  }
  Node* added = nullptr;
  {
    std::lock_guard tail_lock(tail->mx);
    added = &tail->nodes[tail->used];
    added->cmd = c;
    added->segment = tail;
  }

  if (extract_ != nullptr) {
    // Keyed relation: probe the index instead of the coupled scan. Each
    // candidate is checked alive under its own segment's lock (the same
    // lock remove() tombstones under), and the dependent-side increment
    // nests the tail lock inside the candidate's segment lock — segment
    // locks are only ever nested in list order, and the tail is last, so
    // this cannot deadlock with the coupled traversals. Dead entries are
    // pruned from the index as the probe finds them. The unpublished-slot
    // protocol below is untouched: a dependency removed between our edge
    // record and publication decrements in_count without signalling, and
    // the final publish-under-tail-lock check observes the result.
    const KeyedAccess acc = extract_(c);
    const std::uint64_t stamp = ++probe_seq_;
    index_.for_each_conflicting(
        acc.keys, acc.write, [&](const KeyIndex::Entry& e) {
          Node* node = static_cast<Node*>(e.node);
          if (node->probe_stamp == stamp) return true;  // seen via other key
          std::unique_lock seg_lock(node->segment->mx);
          if (node->removed) return false;  // prune dead entry
          node->probe_stamp = stamp;
          node->out.push_back(added);
          if (node->segment == tail) {
            ++added->in_count;  // segment lock == tail lock
          } else {
            std::lock_guard tail_lock(tail->mx);
            ++added->in_count;
          }
          return true;
        });
    index_.add(acc.keys, acc.write, added);
  } else {
    // Conflict scan: couple segment locks from the head; record edges from
    // every live conflicting node. The dependent-side counter lives in the
    // (still unpublished) slot and is guarded by the tail's mutex, which
    // removers also take to decrement it.
    Segment* prev = &head_;
    std::unique_lock prev_lock(prev->mx);
    Segment* cur = prev->next;
    while (cur != nullptr) {
      std::unique_lock cur_lock(cur->mx);
      // Reclaim fully dead segments in passing (only the insert thread
      // relinks, and nobody can be waiting on `cur`: waiting requires
      // holding `prev`, which we hold). The tail is kept even when dead —
      // it is this insert's append target.
      if (cur != tail && cur->live == 0 && cur->used == cur->nodes.size()) {
        prev->next = cur->next;
        cur_lock.unlock();
        delete cur;
        cur = prev->next;
        continue;
      }
      for (std::size_t i = 0; i < cur->used; ++i) {
        Node& node = cur->nodes[i];
        if (node.removed || &node == added) continue;
        if (conflict_(node.cmd, c)) {
          node.out.push_back(added);
          if (cur == tail) {
            ++added->in_count;  // tail lock is already held
          } else {
            std::lock_guard tail_lock(tail->mx);
            ++added->in_count;
          }
        }
      }
      prev_lock.swap(cur_lock);
      prev = cur;
      cur = cur->next;
    }
    prev_lock.unlock();
  }

  // Publish and test readiness under the tail lock — the same lock a
  // remover holds when its decrement reaches zero, so exactly one side
  // observes the ready transition.
  bool is_ready = false;
  {
    std::lock_guard tail_lock(tail->mx);
    ++tail->used;
    ++tail->live;
    is_ready = added->in_count == 0;
  }
  population_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  cos_metrics().inserts.inc();
  if (is_ready) {
    cos_metrics().ready_enq.inc();
    ready_.release();
  }
  return true;
}

CosHandle StripedCos::get() {
  if (!ready_.acquire()) return {};  // closed
  cos_metrics().gets.inc();
  while (true) {
    Segment* prev = &head_;
    std::unique_lock prev_lock(prev->mx);
    Segment* cur = prev->next;
    while (cur != nullptr) {
      std::unique_lock cur_lock(cur->mx);
      for (std::size_t i = 0; i < cur->used; ++i) {
        Node& node = cur->nodes[i];
        if (!node.removed && !node.executing && node.in_count == 0) {
          node.executing = true;
          return {&node.cmd, &node};
        }
      }
      prev_lock.swap(cur_lock);
      prev = cur;
      cur = cur->next;
    }
    prev_lock.unlock();
    if (closed_.load(std::memory_order_acquire)) return {};
    std::this_thread::yield();
  }
}

void StripedCos::remove(CosHandle h) {
  auto* node = static_cast<Node*>(h.node);

  // Tombstone the node and snapshot its dependents under its own segment's
  // lock. The insert scan checks `removed` under this same lock before
  // recording an edge, so the snapshot is complete: any later edge can only
  // be added to a node the inserter saw alive, i.e., before this point.
  std::vector<Node*> dependents;
  bool segment_died = false;
  {
    std::lock_guard lock(node->segment->mx);
    node->removed = true;
    --node->segment->live;
    segment_died = node->segment->live == 0 &&
                   node->segment->used == node->segment->nodes.size();
    dependents.swap(node->out);
  }
  if (segment_died && extract_ != nullptr) {
    dead_segments_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
  }

  // Release dependents. One lock at a time (never while holding another),
  // so the direct jumps cannot deadlock with coupled traversals. A
  // dependent still carrying our edge cannot have executed, so its segment
  // is alive.
  int freed = 0;
  for (Node* dependent : dependents) {
    std::lock_guard lock(dependent->segment->mx);
    if (--dependent->in_count == 0 && !dependent->executing &&
        published_in_segment(*dependent)) {
      ++freed;
    }
  }

  population_.fetch_sub(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) approximate occupancy gauge
  cos_metrics().removes.inc();
  if (freed > 0) cos_metrics().ready_enq.inc(static_cast<std::uint64_t>(freed));
  ready_.release(freed);
  space_.release();
}

void StripedCos::sweep_dead_segments() {
  // Same coupled walk (and the same safety argument) as the pairwise
  // scan's in-passing reclamation. The last segment is skipped — it is the
  // next insert's append target — and is swept once a successor exists.
  int swept = 0;
  Segment* prev = &head_;
  std::unique_lock prev_lock(prev->mx);
  Segment* cur = prev->next;
  while (cur != nullptr) {
    std::unique_lock cur_lock(cur->mx);
    if (cur->next != nullptr && cur->live == 0 &&
        cur->used == cur->nodes.size()) {
      prev->next = cur->next;
      cur_lock.unlock();
      // Purge before delete: probes must never chase an entry into freed
      // memory. Entries may already be gone (pruned lazily by a probe).
      for (Node& node : cur->nodes) {
        index_.remove(extract_(node.cmd).keys, &node);
      }
      delete cur;
      ++swept;
      cur = prev->next;
      continue;
    }
    prev_lock.swap(cur_lock);
    prev = cur;
    cur = cur->next;
  }
  prev_lock.unlock();
  if (swept > 0) dead_segments_.fetch_sub(swept, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) sweep-trigger heuristic; threshold is approximate
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> StripedCos::debug_edges() {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  for (Segment* segment = head_.next; segment != nullptr;
       segment = segment->next) {
    std::lock_guard lock(segment->mx);
    for (std::size_t i = 0; i < segment->used; ++i) {
      Node& node = segment->nodes[i];
      if (node.removed) continue;
      for (const Node* dependent : node.out) {
        edges.emplace_back(node.cmd.id, dependent->cmd.id);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

void StripedCos::close() {
  closed_.store(true, std::memory_order_release);
  space_.close();
  ready_.close();
}

}  // namespace psmr
