// Wire codecs for commands and for the atomic-broadcast protocol messages.
//
// The in-process SimNetwork ships shared_ptr messages, so these codecs are
// not on its hot path; they define the portable wire format used by
// checkpoints/state transfer and by any real-socket transport. Every
// decoder tolerates arbitrary input (returns false instead of crashing).
#pragma once

#include <optional>

#include "broadcast/messages.h"
#include "codec/codec.h"
#include "cos/command.h"

namespace psmr {

void encode_command(const Command& c, ByteWriter& out);
bool decode_command(ByteReader& in, Command* out);

// Batch helpers (length-prefixed).
void encode_commands(const std::vector<Command>& cmds, ByteWriter& out);
bool decode_commands(ByteReader& in, std::vector<Command>* out);

// Protocol messages: encodes the type tag followed by the payload, so a
// stream decoder can dispatch. Returns nullptr / false for unknown tags or
// malformed payloads.
void encode_message(const Message& m, ByteWriter& out);
MessagePtr decode_message(std::span<const std::uint8_t> bytes);

}  // namespace psmr
