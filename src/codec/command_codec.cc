#include "codec/command_codec.h"

#include <algorithm>

namespace psmr {

void encode_command(const Command& c, ByteWriter& out) {
  out.put_varint(c.id);
  out.put_varint(c.client);
  out.put_varint(c.client_seq);
  out.put_u16(c.op);
  out.put_u8(static_cast<std::uint8_t>(c.mode));
  // Packed keys byte: low nibble = nkeys (conflict keys), high nibble =
  // total keys encoded. Slots past nkeys are service payload (e.g. the KV
  // user key); trailing zero slots are elided.
  std::uint8_t total = static_cast<std::uint8_t>(c.keys.size());
  while (total > c.nkeys && c.keys[total - 1] == 0) --total;
  out.put_u8(static_cast<std::uint8_t>(c.nkeys | (total << 4)));
  for (std::uint8_t i = 0; i < total; ++i) out.put_varint(c.keys[i]);
  out.put_varint(c.arg);
}

bool decode_command(ByteReader& in, Command* out) {
  Command c;
  c.id = in.get_varint();
  c.client = in.get_varint();
  c.client_seq = in.get_varint();
  c.op = in.get_u16();
  const std::uint8_t mode = in.get_u8();
  if (mode > 1) return false;
  c.mode = static_cast<AccessMode>(mode);
  const std::uint8_t packed = in.get_u8();
  c.nkeys = packed & 0x0f;
  const std::uint8_t total = packed >> 4;
  if (c.nkeys > c.keys.size() || total > c.keys.size() || total < c.nkeys) {
    return false;
  }
  for (std::uint8_t i = 0; i < total; ++i) c.keys[i] = in.get_varint();
  // Re-establish the Command invariant locally rather than trusting the
  // peer: conflict keys sorted ascending.
  std::sort(c.keys.begin(), c.keys.begin() + c.nkeys);
  c.arg = in.get_varint();
  if (!in.ok()) return false;
  *out = c;
  return true;
}

void encode_commands(const std::vector<Command>& cmds, ByteWriter& out) {
  out.put_varint(cmds.size());
  for (const Command& c : cmds) encode_command(c, out);
}

bool decode_commands(ByteReader& in, std::vector<Command>* out) {
  const std::uint64_t n = in.get_varint();
  // A command encodes to >= 8 bytes; reject length prefixes that could not
  // possibly fit (defends against allocation bombs from corrupt input).
  if (!in.ok() || n > in.remaining()) return false;
  out->clear();
  out->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Command c;
    if (!decode_command(in, &c)) return false;
    out->push_back(c);
  }
  return true;
}

namespace {

void encode_log_entries(const std::vector<LogEntrySummary>& entries,
                        ByteWriter& out) {
  out.put_varint(entries.size());
  for (const auto& entry : entries) {
    out.put_varint(entry.seq);
    out.put_varint(entry.view);
    encode_commands(entry.batch, out);
  }
}

bool decode_log_entries(ByteReader& in, std::vector<LogEntrySummary>* out) {
  const std::uint64_t n = in.get_varint();
  if (!in.ok() || n > in.remaining()) return false;
  out->clear();
  out->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LogEntrySummary entry;
    entry.seq = in.get_varint();
    entry.view = in.get_varint();
    if (!decode_commands(in, &entry.batch)) return false;
    out->push_back(std::move(entry));
  }
  return in.ok();
}

}  // namespace

void encode_message(const Message& m, ByteWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case msg::kRequest:
      encode_commands(static_cast<const RequestMsg&>(m).commands, out);
      break;
    case msg::kReply: {
      const auto& reply = static_cast<const ReplyMsg&>(m);
      out.put_varint(reply.client_seq);
      out.put_varint(reply.value);
      out.put_u8(reply.ok ? 1 : 0);
      break;
    }
    case msg::kAccept: {
      const auto& accept = static_cast<const AcceptMsg&>(m);
      out.put_varint(accept.view);
      out.put_varint(accept.seq);
      encode_commands(accept.batch, out);
      break;
    }
    case msg::kAccepted: {
      const auto& accepted = static_cast<const AcceptedMsg&>(m);
      out.put_varint(accepted.view);
      out.put_varint(accepted.seq);
      break;
    }
    case msg::kCommit: {
      const auto& commit = static_cast<const CommitMsg&>(m);
      out.put_varint(commit.view);
      out.put_varint(commit.seq);
      break;
    }
    case msg::kHeartbeat: {
      const auto& hb = static_cast<const HeartbeatMsg&>(m);
      out.put_varint(hb.view);
      out.put_varint(hb.committed_up_to);
      break;
    }
    case msg::kViewChange: {
      const auto& vc = static_cast<const ViewChangeMsg&>(m);
      out.put_varint(vc.new_view);
      encode_log_entries(vc.accepted_log, out);
      out.put_varint(vc.last_delivered);
      break;
    }
    case msg::kNewView: {
      const auto& nv = static_cast<const NewViewMsg&>(m);
      out.put_varint(nv.view);
      encode_log_entries(nv.log, out);
      break;
    }
    case msg::kStateRequest:
      out.put_varint(static_cast<const StateRequestMsg&>(m).last_delivered);
      break;
    case msg::kStateResponse: {
      const auto& sr = static_cast<const StateResponseMsg&>(m);
      out.put_varint(sr.checkpoint_seq);
      out.put_varint(sr.view);
      out.put_bytes(sr.snapshot);
      break;
    }
    default:
      break;
  }
}

MessagePtr decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint8_t type = in.get_u8();
  if (!in.ok()) return nullptr;
  switch (type) {
    case msg::kRequest: {
      std::vector<Command> cmds;
      if (!decode_commands(in, &cmds)) return nullptr;
      return make_message<RequestMsg>(std::move(cmds));
    }
    case msg::kReply: {
      const std::uint64_t seq = in.get_varint();
      const std::uint64_t value = in.get_varint();
      const std::uint8_t ok = in.get_u8();
      if (!in.ok() || ok > 1) return nullptr;
      return make_message<ReplyMsg>(seq, value, ok == 1);
    }
    case msg::kAccept: {
      const std::uint64_t view = in.get_varint();
      const std::uint64_t seq = in.get_varint();
      std::vector<Command> batch;
      if (!decode_commands(in, &batch)) return nullptr;
      return make_message<AcceptMsg>(view, seq, std::move(batch));
    }
    case msg::kAccepted: {
      const std::uint64_t view = in.get_varint();
      const std::uint64_t seq = in.get_varint();
      if (!in.ok()) return nullptr;
      return make_message<AcceptedMsg>(view, seq);
    }
    case msg::kCommit: {
      const std::uint64_t view = in.get_varint();
      const std::uint64_t seq = in.get_varint();
      if (!in.ok()) return nullptr;
      return make_message<CommitMsg>(view, seq);
    }
    case msg::kHeartbeat: {
      const std::uint64_t view = in.get_varint();
      const std::uint64_t committed = in.get_varint();
      if (!in.ok()) return nullptr;
      return make_message<HeartbeatMsg>(view, committed);
    }
    case msg::kViewChange: {
      const std::uint64_t new_view = in.get_varint();
      std::vector<LogEntrySummary> log;
      if (!decode_log_entries(in, &log)) return nullptr;
      const std::uint64_t delivered = in.get_varint();
      if (!in.ok()) return nullptr;
      return make_message<ViewChangeMsg>(new_view, std::move(log), delivered);
    }
    case msg::kNewView: {
      const std::uint64_t view = in.get_varint();
      std::vector<LogEntrySummary> log;
      if (!decode_log_entries(in, &log)) return nullptr;
      return make_message<NewViewMsg>(view, std::move(log));
    }
    case msg::kStateRequest: {
      const std::uint64_t have = in.get_varint();
      if (!in.ok()) return nullptr;
      return make_message<StateRequestMsg>(have);
    }
    case msg::kStateResponse: {
      const std::uint64_t seq = in.get_varint();
      const std::uint64_t view = in.get_varint();
      std::vector<std::uint8_t> snapshot = in.get_bytes();
      if (!in.ok()) return nullptr;
      return make_message<StateResponseMsg>(seq, view, std::move(snapshot));
    }
    default:
      return nullptr;
  }
}

}  // namespace psmr
