// Byte-level wire format: bounded reader / writer with little-endian
// fixed-width integers and LEB128 varints.
//
// Used for service checkpoints (snapshot/restore during state transfer) and
// for the command/message codecs in command_codec.h — i.e., everything that
// would cross a real wire crosses these encoders, so replacing the
// in-process SimNetwork with a socket transport is a transport swap, not a
// redesign.
//
// Reader is fully defensive: every get_* checks bounds and latches a failure
// flag instead of reading out of bounds, so arbitrary (malicious or
// corrupted) input can never crash a decoder — decoders check ok() at the
// end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace psmr {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_u16(std::uint16_t v) { put_fixed(v); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }

  // LEB128: 1 byte for values < 128, up to 10 bytes for 64-bit.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_bytes(std::span<const std::uint8_t> data) {
    put_varint(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void put_string(const std::string& s) {
    put_varint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  template <typename T>
  void put_fixed(T v) {
    std::uint8_t raw[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() { return get_fixed<std::uint8_t>(); }
  std::uint16_t get_u16() { return get_fixed<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_fixed<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_fixed<std::uint64_t>(); }

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) {
        failed_ = true;
        return 0;
      }
      const std::uint8_t byte = data_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::vector<std::uint8_t> get_bytes() {
    const std::uint64_t n = get_varint();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const std::uint64_t n = get_varint();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return !failed_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T get_fixed() {
    if (remaining() < sizeof(T)) {
      failed_ = true;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace psmr
