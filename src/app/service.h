// Deterministic replicated service interface.
//
// A Service is the state machine of SMR: executing the same sequence of
// conflicting commands from the same initial state must yield the same
// state and responses at every replica. Services declare their conflict
// relation (#C), which the scheduler uses to build the dependency graph; a
// service promises that commands the relation declares independent can be
// executed concurrently against its state without synchronization (e.g.,
// read-only operations).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cos/class_map.h"
#include "cos/command.h"
#include "cos/conflict.h"

namespace psmr {

struct Response {
  std::uint64_t client = 0;
  std::uint64_t client_seq = 0;
  std::uint64_t value = 0;  // service-specific result
  bool ok = false;
};

class Service {
 public:
  virtual ~Service() = default;

  // Executes one command. Thread-safety contract: concurrent calls are
  // allowed only for commands that conflict() declares independent.
  virtual Response execute(const Command& c) = 0;

  // The conflict relation under which execute() is safe.
  virtual ConflictFn conflict() const = 0;

  // Optional static class map for the early-scheduling policy
  // (cos/class_map.h). Must be sound for conflict(): conflicting commands
  // either map to the same worker or at least one is routed kSync.
  // nullptr (the default) sends every command through the barrier path —
  // always correct, never fast.
  virtual ClassMapFn class_map() const { return nullptr; }

  // Order-independent digest of the current state; used to check that
  // replicas converged. Must only be called when no execute() is running.
  virtual std::uint64_t state_digest() const = 0;

  // Checkpointing (state transfer for lagging/recovering replicas). Both
  // must only be called when no execute() is running; restore() replaces
  // the entire state and returns false on malformed input (leaving the
  // state unspecified — callers discard the replica on failure).
  virtual std::vector<std::uint8_t> snapshot() const = 0;
  virtual bool restore(std::span<const std::uint8_t> bytes) = 0;

  virtual const char* name() const = 0;
};

}  // namespace psmr
