#include "app/kv_service.h"

#include "codec/codec.h"

namespace psmr {

KvService::KvService(std::size_t shard_count) : shards_(shard_count) {}

Response KvService::execute(const Command& c) {
  Response r{c.client, c.client_seq, 0, false};
  // keys[0] is the conflict key (the shard); keys[1] carries the user key
  // and is excluded from conflict detection (nkeys == 1).
  auto& shard = shards_[c.keys[0]];
  const std::uint64_t user_key = c.keys[1];
  switch (c.op) {
    case kGet: {
      auto it = shard.find(user_key);
      if (it != shard.end()) {
        r.value = it->second;
        r.ok = true;
      }
      break;
    }
    case kPut:
      shard[user_key] = c.arg;
      r.ok = true;
      break;
    case kDel:
      r.ok = shard.erase(user_key) > 0;
      break;
    default:
      break;
  }
  return r;
}

std::uint64_t KvService::state_digest() const {
  // Order-independent: XOR of per-entry mixes, so iteration order of the
  // hash maps does not matter.
  std::uint64_t h = 0;
  for (const auto& shard : shards_) {
    for (const auto& [key, value] : shard) {
      std::uint64_t z = key * 0x9E3779B97F4A7C15ull + value;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      h ^= z ^ (z >> 27);
    }
  }
  return h;
}

std::size_t KvService::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.size();
  return n;
}

std::vector<std::uint8_t> KvService::snapshot() const {
  ByteWriter out;
  out.put_varint(shards_.size());
  for (const auto& shard : shards_) {
    out.put_varint(shard.size());
    for (const auto& [key, value] : shard) {
      out.put_varint(key);
      out.put_varint(value);
    }
  }
  return out.take();
}

bool KvService::restore(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint64_t shard_count = in.get_varint();
  if (!in.ok() || shard_count == 0 || shard_count > 1 << 20) return false;
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> shards(
      shard_count);
  for (auto& shard : shards) {
    const std::uint64_t entries = in.get_varint();
    if (!in.ok() || entries > in.remaining() + 1) return false;
    for (std::uint64_t i = 0; i < entries; ++i) {
      const std::uint64_t key = in.get_varint();
      const std::uint64_t value = in.get_varint();
      shard.emplace(key, value);
    }
  }
  if (!in.ok()) return false;
  shards_ = std::move(shards);
  return true;
}

Command KvService::make_get(std::uint64_t key) const {
  Command c;
  c.op = kGet;
  c.mode = AccessMode::kRead;
  c.nkeys = 1;
  c.keys[0] = shard_of(key);
  c.keys[1] = key;
  debug_assert_sorted_keys(c);
  return c;
}

Command KvService::make_put(std::uint64_t key, std::uint64_t value) const {
  Command c;
  c.op = kPut;
  c.mode = AccessMode::kWrite;
  c.nkeys = 1;
  c.keys[0] = shard_of(key);
  c.keys[1] = key;
  c.arg = value;
  debug_assert_sorted_keys(c);
  return c;
}

Command KvService::make_del(std::uint64_t key) const {
  Command c;
  c.op = kDel;
  c.mode = AccessMode::kWrite;
  c.nkeys = 1;
  c.keys[0] = shard_of(key);
  c.keys[1] = key;
  debug_assert_sorted_keys(c);
  return c;
}

}  // namespace psmr
