// Key-value store service with per-key conflicts.
//
// Unlike the paper's linked list (one shared variable), each key is its own
// variable: GETs are independent of everything except PUT/DEL on the same
// key. This exercises the keyset conflict relation and produces much sparser
// dependency graphs — the regime where parallel SMR shines.
//
// Concurrency model: the key space is statically sharded; commands on
// different shards never conflict, commands on the same shard conflict if
// one writes. A shard is a plain (unsynchronized) hash map — the COS
// discipline guarantees a writer is alone on its shard.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/service.h"

namespace psmr {

class KvService final : public Service {
 public:
  enum Op : std::uint16_t { kGet = 1, kPut = 2, kDel = 3 };

  explicit KvService(std::size_t shard_count = 64);

  Response execute(const Command& c) override;
  ConflictFn conflict() const override { return keyset_rw_conflict; }
  // Early scheduling: one class per shard group (shard id mod workers).
  ClassMapFn class_map() const override { return keyed_class_map; }
  std::uint64_t state_digest() const override;
  std::vector<std::uint8_t> snapshot() const override;
  bool restore(std::span<const std::uint8_t> bytes) override;
  const char* name() const override { return "kv-store"; }

  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }

  // Command builders. The conflict key is the *shard* of the user key, so
  // the declared conflict relation is (slightly conservatively) aligned with
  // the shard-level synchronization contract.
  Command make_get(std::uint64_t key) const;
  Command make_put(std::uint64_t key, std::uint64_t value) const;
  Command make_del(std::uint64_t key) const;

 private:
  std::uint64_t shard_of(std::uint64_t key) const {
    // splitmix-style mix so adjacent keys spread across shards.
    std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return (z ^ (z >> 27)) % shards_.size();
  }

  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> shards_;
};

}  // namespace psmr
