// The paper's evaluation application (§7.2): a sorted integer linked list
// exposing contains(i) — a read — and add(i) — a write. The whole list is
// one shared variable, so reads are mutually independent and writes conflict
// with everything (rw_conflict). Execution cost is governed by the list
// length: the paper initializes it with 1k, 10k and 100k entries for light,
// moderate and heavy per-command cost, and every operation traverses from
// the head.
#pragma once

#include <atomic>
#include <cstdint>

#include "app/service.h"

namespace psmr {

// Paper cost classes and their initial list sizes.
enum class ExecCost { kLight, kModerate, kHeavy };

inline constexpr std::size_t exec_cost_list_size(ExecCost cost) {
  switch (cost) {
    case ExecCost::kLight:
      return 1'000;
    case ExecCost::kModerate:
      return 10'000;
    case ExecCost::kHeavy:
      return 100'000;
  }
  return 0;
}

inline constexpr const char* exec_cost_name(ExecCost cost) {
  switch (cost) {
    case ExecCost::kLight:
      return "light";
    case ExecCost::kModerate:
      return "moderate";
    case ExecCost::kHeavy:
      return "heavy";
  }
  return "?";
}

class LinkedListService final : public Service {
 public:
  enum Op : std::uint16_t { kContains = 1, kAdd = 2 };

  // Initializes the list with values 0 .. initial_size-1, as in the paper.
  explicit LinkedListService(std::size_t initial_size);
  ~LinkedListService() override;

  Response execute(const Command& c) override;
  ConflictFn conflict() const override { return rw_conflict; }
  // Early scheduling: reads spread round-robin; every write is a barrier.
  ClassMapFn class_map() const override { return rw_class_map; }
  std::uint64_t state_digest() const override;
  std::vector<std::uint8_t> snapshot() const override;
  bool restore(std::span<const std::uint8_t> bytes) override;
  const char* name() const override { return "linked-list"; }

  std::size_t size() const { return size_; }

  // Command builders (the workload generator and clients use these).
  static Command make_contains(std::uint64_t value);
  static Command make_add(std::uint64_t value);

 private:
  struct ListNode {
    std::uint64_t value;
    ListNode* next;
  };

  bool contains(std::uint64_t value) const;
  bool add(std::uint64_t value);

  ListNode* head_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace psmr
