// Bank service: multi-key commands over a fixed set of accounts.
//
// Demonstrates the general form of the conflict relation: TRANSFER touches
// two accounts (both written), BALANCE reads one. Independent transfers on
// disjoint account pairs run concurrently; the conserved total balance is a
// strong cross-command invariant used by the integration and property tests
// (any lost update or ordering violation breaks conservation or determinism).
#pragma once

#include <cstdint>
#include <vector>

#include "app/service.h"

namespace psmr {

class BankService final : public Service {
 public:
  // Transfers keep keys[] sorted (the Command invariant): kTransfer moves
  // keys[0] -> keys[1], kTransferReversed moves keys[1] -> keys[0];
  // make_transfer picks the opcode that matches the account order.
  enum Op : std::uint16_t {
    kBalance = 1,
    kDeposit = 2,
    kTransfer = 3,
    kTransferReversed = 4,
  };

  BankService(std::size_t accounts, std::uint64_t initial_balance);

  Response execute(const Command& c) override;
  ConflictFn conflict() const override { return keyset_rw_conflict; }
  // Early scheduling: one class per account group; cross-group transfers
  // pay the barrier.
  ClassMapFn class_map() const override { return keyed_class_map; }
  std::uint64_t state_digest() const override;
  std::vector<std::uint8_t> snapshot() const override;
  bool restore(std::span<const std::uint8_t> bytes) override;
  const char* name() const override { return "bank"; }

  std::uint64_t total_balance() const;
  std::size_t account_count() const { return balances_.size(); }
  std::uint64_t balance(std::uint64_t account) const {
    return balances_[account];
  }

  static Command make_balance(std::uint64_t account);
  static Command make_deposit(std::uint64_t account, std::uint64_t amount);
  // Moves min(amount, balance(from)) from `from` to `to`.
  static Command make_transfer(std::uint64_t from, std::uint64_t to,
                               std::uint64_t amount);

 private:
  std::vector<std::uint64_t> balances_;
};

}  // namespace psmr
