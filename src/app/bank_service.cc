#include "app/bank_service.h"

#include <algorithm>

#include "codec/codec.h"

namespace psmr {

BankService::BankService(std::size_t accounts, std::uint64_t initial_balance)
    : balances_(accounts, initial_balance) {}

Response BankService::execute(const Command& c) {
  Response r{c.client, c.client_seq, 0, false};
  switch (c.op) {
    case kBalance:
      r.value = balances_[c.keys[0]];
      r.ok = true;
      break;
    case kDeposit:
      balances_[c.keys[0]] += c.arg;
      r.value = balances_[c.keys[0]];
      r.ok = true;
      break;
    case kTransfer:
    case kTransferReversed: {
      auto& from = balances_[c.keys[c.op == kTransfer ? 0 : 1]];
      auto& to = balances_[c.keys[c.op == kTransfer ? 1 : 0]];
      const std::uint64_t moved = std::min<std::uint64_t>(c.arg, from);
      from -= moved;
      to += moved;
      r.value = moved;
      r.ok = moved == c.arg;
      break;
    }
    default:
      break;
  }
  return r;
}

std::uint64_t BankService::total_balance() const {
  std::uint64_t total = 0;
  for (std::uint64_t b : balances_) total += b;
  return total;
}

std::uint64_t BankService::state_digest() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t b : balances_) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::uint8_t> BankService::snapshot() const {
  ByteWriter out;
  out.put_varint(balances_.size());
  for (std::uint64_t balance : balances_) out.put_varint(balance);
  return out.take();
}

bool BankService::restore(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint64_t count = in.get_varint();
  if (!in.ok() || count > in.remaining() * 10 + 1) return false;
  std::vector<std::uint64_t> balances;
  balances.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    balances.push_back(in.get_varint());
  }
  if (!in.ok()) return false;
  balances_ = std::move(balances);
  return true;
}

Command BankService::make_balance(std::uint64_t account) {
  Command c;
  c.op = kBalance;
  c.mode = AccessMode::kRead;
  c.nkeys = 1;
  c.keys[0] = account;
  debug_assert_sorted_keys(c);
  return c;
}

Command BankService::make_deposit(std::uint64_t account, std::uint64_t amount) {
  Command c;
  c.op = kDeposit;
  c.mode = AccessMode::kWrite;
  c.nkeys = 1;
  c.keys[0] = account;
  c.arg = amount;
  debug_assert_sorted_keys(c);
  return c;
}

Command BankService::make_transfer(std::uint64_t from, std::uint64_t to,
                                   std::uint64_t amount) {
  Command c;
  c.op = from <= to ? kTransfer : kTransferReversed;
  c.mode = AccessMode::kWrite;
  c.nkeys = 2;
  c.keys[0] = std::min(from, to);
  c.keys[1] = std::max(from, to);
  c.arg = amount;
  debug_assert_sorted_keys(c);
  return c;
}

}  // namespace psmr
