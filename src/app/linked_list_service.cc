#include "app/linked_list_service.h"

#include "codec/codec.h"

namespace psmr {

LinkedListService::LinkedListService(std::size_t initial_size) {
  // Build the sorted list 0..initial_size-1 back to front.
  for (std::size_t i = initial_size; i-- > 0;) {
    head_ = new ListNode{static_cast<std::uint64_t>(i), head_};
  }
  size_ = initial_size;
}

LinkedListService::~LinkedListService() {
  ListNode* node = head_;
  while (node != nullptr) {
    ListNode* next = node->next;
    delete node;
    node = next;
  }
}

Response LinkedListService::execute(const Command& c) {
  Response r{c.client, c.client_seq, 0, false};
  switch (c.op) {
    case kContains:
      r.ok = contains(c.arg);
      break;
    case kAdd:
      r.ok = add(c.arg);
      break;
    default:
      break;
  }
  return r;
}

bool LinkedListService::contains(std::uint64_t value) const {
  const ListNode* node = head_;
  while (node != nullptr && node->value < value) node = node->next;
  return node != nullptr && node->value == value;
}

bool LinkedListService::add(std::uint64_t value) {
  if (head_ == nullptr || head_->value > value) {
    head_ = new ListNode{value, head_};
    ++size_;
    return true;
  }
  ListNode* node = head_;
  while (node->next != nullptr && node->next->value < value) node = node->next;
  if (node->value == value ||
      (node->next != nullptr && node->next->value == value)) {
    return false;  // already present
  }
  node->next = new ListNode{value, node->next};
  ++size_;
  return true;
}

std::uint64_t LinkedListService::state_digest() const {
  // Order-sensitive FNV-style fold; identical lists => identical digests.
  std::uint64_t h = 1469598103934665603ull;
  for (const ListNode* node = head_; node != nullptr; node = node->next) {
    h ^= node->value;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::uint8_t> LinkedListService::snapshot() const {
  // Sorted ascending => delta encoding keeps most entries to 1 byte.
  ByteWriter out;
  out.put_varint(size_);
  std::uint64_t previous = 0;
  for (const ListNode* node = head_; node != nullptr; node = node->next) {
    out.put_varint(node->value - previous);
    previous = node->value;
  }
  return out.take();
}

bool LinkedListService::restore(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint64_t count = in.get_varint();
  if (!in.ok() || count > in.remaining() * 10) return false;  // sanity bound
  std::vector<std::uint64_t> values;
  values.reserve(count);
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    previous += in.get_varint();
    values.push_back(previous);
  }
  if (!in.ok()) return false;
  // Rebuild back-to-front (values are sorted ascending).
  ListNode* node = head_;
  while (node != nullptr) {
    ListNode* next = node->next;
    delete node;
    node = next;
  }
  head_ = nullptr;
  for (std::size_t i = values.size(); i-- > 0;) {
    head_ = new ListNode{values[i], head_};
  }
  size_ = values.size();
  return true;
}

Command LinkedListService::make_contains(std::uint64_t value) {
  Command c;
  c.op = kContains;
  c.mode = AccessMode::kRead;
  c.arg = value;
  return c;
}

Command LinkedListService::make_add(std::uint64_t value) {
  Command c;
  c.op = kAdd;
  c.mode = AccessMode::kWrite;
  c.arg = value;
  return c;
}

}  // namespace psmr
