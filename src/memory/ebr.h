// Epoch-based reclamation (EBR).
//
// The paper's lock-free DAG (§6) is written for a garbage-collected runtime:
// its traversal-safety argument says "garbage collection ensures that the
// by-passed node during helpedRemove will still be valid in memory since
// lfGet holds a reference to it". In C++ we reproduce exactly that guarantee
// with epochs: a thread *pins* the current epoch before traversing the graph
// and unpins afterwards; a node unlinked from the graph is *retired* with the
// epoch current at unlink time and only freed once the global epoch has moved
// two steps past it, at which point no traversal can still hold a reference.
//
// Design notes:
//  - Threads register lazily (thread-local cache keyed by a never-reused
//    domain id), so callers just do `auto g = domain.pin();`.
//  - Retired nodes go on the retiring thread's private limbo list; no
//    synchronization on the retire path except the epoch reads.
//  - Epoch advancement is attempted opportunistically on retire and can be
//    forced with flush() (used by destructors and tests).
//  - Memory orders are seq_cst on the pin/advance handshake, per the C++
//    Core Guidelines' advice to prefer the sequentially consistent model in
//    hand-written lock-free code; the cost is negligible next to the graph
//    operations themselves.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/debug_poison.h"
#include "common/padded.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

namespace psmr {

class EbrDomain {
 public:
  static constexpr std::size_t kMaxThreads = 512;
  static constexpr std::uint64_t kIdle = ~0ull;

  EbrDomain();
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // RAII pin on the current epoch. Movable, not copyable.
  class Guard {
   public:
    Guard(Guard&& other) noexcept : cell_(other.cell_) { other.cell_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() { release(); }

    // Early unpin (idempotent).
    void release() {
      if (cell_ != nullptr) {
        cell_->store(kIdle, std::memory_order_release);
        cell_ = nullptr;
      }
    }

   private:
    friend class EbrDomain;
    explicit Guard(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
    std::atomic<std::uint64_t>* cell_;
  };

  // Pins the calling thread to the current epoch. Nested pins on the same
  // thread are not supported (callers pin once per COS operation).
  Guard pin();

  // Defers destruction of `node` until no pinned thread can reference it.
  // Must be called after `node` became unreachable from the shared structure.
  template <typename T>
  void retire(T* node) {
#if PSMR_MEMORY_DEBUG
    // Poison after the destructor so a traversal that outlives its grace
    // period reads 0xDEAD garbage instead of stale-but-plausible bytes.
    retire_raw(node, [](void* p) {
      T* t = static_cast<T*>(p);
      t->~T();
      poison_memory(p, sizeof(T));
      if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        ::operator delete(p, std::align_val_t(alignof(T)));
      } else {
        ::operator delete(p);
      }
    });
#else
    retire_raw(node, [](void* p) { delete static_cast<T*>(p); });
#endif
  }

  void retire_raw(void* ptr, void (*deleter)(void*));

  // Debug invariant: every retire in this domain comes from one thread.
  // The lock-free COS relies on this (physical removal is confined to the
  // insert thread, §6.2.1); opting in records the first retirer's identity
  // and aborts if a different thread ever retires. No-op unless
  // PSMR_MEMORY_DEBUG.
  void debug_expect_single_remover() {
    single_remover_.store(true, std::memory_order_relaxed);
  }

  // Tries to advance the epoch and reclaim everything reclaimable from the
  // calling thread's limbo list. Returns the number of objects freed.
  std::size_t flush();

  // Drains every limbo list in the domain. Caller must guarantee no thread
  // is pinned and no further retires happen. Called by the destructor;
  // exposed for tests.
  void drain_all_unsafe();

  std::uint64_t current_epoch() const {
    return global_epoch_.value.load(std::memory_order_seq_cst);
  }

  // Statistics (approximate; for tests and the reclamation bench).
  std::size_t retired_pending() const;
  std::uint64_t total_freed() const {
    return total_freed_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct ThreadRec {
    Padded<std::atomic<std::uint64_t>> epoch;  // kIdle when not pinned
    std::atomic<bool> used{false};
    // kReclaim is the innermost rank: retire() may run under COS node or
    // segment locks, and the deleters it invokes take no locks at all.
    RankedMutex<lock_rank::kReclaim> limbo_mu;
    std::vector<Retired> limbo PSMR_GUARDED_BY(limbo_mu);
    ThreadRec() { epoch.value.store(kIdle, std::memory_order_relaxed); }
  };

  ThreadRec* rec_for_current_thread();
  bool try_advance();
  std::size_t reclaim(ThreadRec& rec);

  const std::uint64_t id_;
  Padded<std::atomic<std::uint64_t>> global_epoch_;
  std::unique_ptr<ThreadRec[]> recs_;
  std::atomic<std::size_t> high_water_{0};  // number of slots ever used
  Padded<std::atomic<std::uint64_t>> total_freed_;

  // Single-remover debug check (see debug_expect_single_remover). The
  // retirer identity is the address of a thread_local anchor — unique per
  // live thread, comparable without <thread>.
  std::atomic<bool> single_remover_{false};
  std::atomic<std::uintptr_t> debug_retirer_{0};
};

}  // namespace psmr
