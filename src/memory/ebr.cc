#include "memory/ebr.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace psmr {
namespace {

std::atomic<std::uint64_t> g_next_domain_id{1};

// Thread-local registration cache. Domain ids are never reused, so a stale
// entry for a destroyed domain can never be looked up again.
struct CacheEntry {
  std::uint64_t domain_id;
  void* rec;
};
thread_local std::vector<CacheEntry> t_cache;

}  // namespace

EbrDomain::EbrDomain()
    : id_(g_next_domain_id.fetch_add(1, std::memory_order_relaxed)),
      recs_(std::make_unique<ThreadRec[]>(kMaxThreads)) {
  global_epoch_.value.store(1, std::memory_order_relaxed);
  total_freed_.value.store(0, std::memory_order_relaxed);
}

EbrDomain::~EbrDomain() { drain_all_unsafe(); }

EbrDomain::ThreadRec* EbrDomain::rec_for_current_thread() {
  for (const auto& entry : t_cache) {
    if (entry.domain_id == id_) return static_cast<ThreadRec*>(entry.rec);
  }
  // Slow path: claim a fresh slot.
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (recs_[i].used.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      t_cache.push_back({id_, &recs_[i]});
      return &recs_[i];
    }
  }
  assert(false && "EbrDomain: more than kMaxThreads registered");
  return nullptr;
}

EbrDomain::Guard EbrDomain::pin() {
  ThreadRec* rec = rec_for_current_thread();
  std::uint64_t e;
  // Publish our pinned epoch and re-validate: if the global epoch moved
  // between the read and the store, re-publish. This guarantees that once
  // try_advance() observes every slot at epoch E (or idle), no thread is
  // still pinned below E.
  do {
    e = global_epoch_.value.load(std::memory_order_seq_cst);
    rec->epoch.value.store(e, std::memory_order_seq_cst);
  } while (global_epoch_.value.load(std::memory_order_seq_cst) != e);
  return Guard(&rec->epoch.value);
}

void EbrDomain::retire_raw(void* ptr, void (*deleter)(void*)) {
#if PSMR_MEMORY_DEBUG
  if (single_remover_.load(std::memory_order_relaxed)) {
    // Sticky first-retirer identity: the first retire claims the slot, any
    // retire from a different thread afterwards is an invariant violation.
    static thread_local char t_anchor;
    const auto tid = reinterpret_cast<std::uintptr_t>(&t_anchor);
    std::uintptr_t expected = 0;
    if (!debug_retirer_.compare_exchange_strong(expected, tid,
                                                std::memory_order_relaxed) &&
        expected != tid) {
      std::fprintf(stderr,
                   "EbrDomain: single-remover invariant violated — retire "
                   "from a second thread (first=%#zx this=%#zx)\n",
                   static_cast<std::size_t>(expected),
                   static_cast<std::size_t>(tid));
      std::abort();
    }
  }
#endif
  ThreadRec* rec = rec_for_current_thread();
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
  std::size_t limbo_size;
  {
    MutexLock lock(rec->limbo_mu);
    rec->limbo.push_back({ptr, deleter, e});
    limbo_size = rec->limbo.size();
  }
  // Amortize advancement attempts.
  if (limbo_size % 64 == 0) {
    try_advance();
    reclaim(*rec);
  }
}

bool EbrDomain::try_advance() {
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    const std::uint64_t v = recs_[i].epoch.value.load(std::memory_order_seq_cst);
    if (v != kIdle && v < e) return false;  // a thread is pinned behind
  }
  std::uint64_t expected = e;
  global_epoch_.value.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_seq_cst);
  return true;
}

std::size_t EbrDomain::reclaim(ThreadRec& rec) {
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
  std::size_t freed = 0;
  MutexLock lock(rec.limbo_mu);
  auto& limbo = rec.limbo;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < limbo.size(); ++i) {
    // A node retired in epoch r was unreachable before any thread could pin
    // epoch r+1; once the global epoch is r+2, every thread pinned at r or
    // earlier has unpinned, so the node is free to go.
    if (limbo[i].epoch + 2 <= e) {
      limbo[i].deleter(limbo[i].ptr);
      ++freed;
    } else {
      limbo[keep++] = limbo[i];
    }
  }
  limbo.resize(keep);
  total_freed_.value.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t EbrDomain::flush() {
  ThreadRec* rec = rec_for_current_thread();
  try_advance();
  try_advance();
  return reclaim(*rec);
}

void EbrDomain::drain_all_unsafe() {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t freed = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    MutexLock lock(recs_[i].limbo_mu);
    for (const auto& retired : recs_[i].limbo) {
      retired.deleter(retired.ptr);
      ++freed;
    }
    recs_[i].limbo.clear();
  }
  total_freed_.value.fetch_add(freed, std::memory_order_relaxed);
}

std::size_t EbrDomain::retired_pending() const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t pending = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    MutexLock lock(recs_[i].limbo_mu);
    pending += recs_[i].limbo.size();
  }
  return pending;
}

}  // namespace psmr
