// Hazard pointers (Michael, 2004).
//
// Included as the classical alternative to EBR for the reclamation ablation
// bench (`bench/ablation_reclaim`) and as a reusable component of the memory
// library. The lock-free COS itself uses EBR: its testReady path follows
// dep_on back-edges from a node to arbitrary predecessors, which under hazard
// pointers would require a validate-after-protect step against a structure
// that has no stable "reachability witness" for back-edges — a pin-based
// scheme matches the algorithm's GC-style argument directly, while hazard
// pointers match pointer-chasing structures like stacks and queues.
//
// Usage pattern:
//   HazardDomain<2> dom;           // 2 hazard slots per thread
//   auto h = dom.hazards();        // thread-local slot set
//   T* p = h.protect(0, head);     // loads head until stable, protects it
//   ... dereference p ...
//   h.clear();
//   dom.retire(old);               // deferred delete once unprotected
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/debug_poison.h"
#include "common/padded.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

namespace psmr {

template <std::size_t kSlotsPerThread = 2>
class HazardDomain {
 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct Rec {
    Padded<std::atomic<void*>> slots[kSlotsPerThread];
    std::atomic<bool> used{false};
    // kReclaim is the innermost rank: retire() may run under COS locks and
    // the deleters it invokes take no locks at all. Mutable so the const
    // statistics reads (retired_pending) can lock it — recs_ is a plain
    // array, unlike EbrDomain's unique_ptr, so const propagates into it.
    mutable RankedMutex<lock_rank::kReclaim> limbo_mu;
    std::vector<Retired> limbo PSMR_GUARDED_BY(limbo_mu);
  };

 public:
  static constexpr std::size_t kMaxThreads = 256;
  static constexpr std::size_t kScanThreshold = 64;

  HazardDomain() : id_(next_domain_id().fetch_add(1)) {}
  ~HazardDomain() { drain_all_unsafe(); }

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  class ThreadHazards {
   public:
    // Protects the value currently in `src` against reclamation: publishes
    // it to slot `i`, then re-reads `src` until the published value is the
    // live one. Returns the protected pointer (may be nullptr).
    template <typename T>
    T* protect(std::size_t i, const std::atomic<T*>& src) {
      T* p = src.load(std::memory_order_acquire);
      while (true) {
        rec_->slots[i].value.store(static_cast<void*>(p),
                                   std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    // Publishes an already-loaded pointer. Caller must re-validate that the
    // pointer is still reachable after this returns.
    void set(std::size_t i, void* p) {
      rec_->slots[i].value.store(p, std::memory_order_seq_cst);
    }

    void clear(std::size_t i) {
      rec_->slots[i].value.store(nullptr, std::memory_order_release);
    }

    void clear() {
      for (std::size_t i = 0; i < kSlotsPerThread; ++i) clear(i);
    }

   private:
    friend class HazardDomain;
    explicit ThreadHazards(Rec* rec) : rec_(rec) {}
    Rec* rec_;
  };

  // Returns (registering if needed) the calling thread's hazard slots.
  ThreadHazards hazards() { return ThreadHazards(rec_for_current_thread()); }

  // Defers deletion until no thread holds a hazard on `node`.
  template <typename T>
  void retire(T* node) {
#if PSMR_MEMORY_DEBUG
    // Poison after the destructor so a reader with a stale (unprotected)
    // pointer sees 0xDEAD garbage instead of stale-but-plausible bytes.
    retire_raw(node, [](void* p) {
      T* t = static_cast<T*>(p);
      t->~T();
      poison_memory(p, sizeof(T));
      if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        ::operator delete(p, std::align_val_t(alignof(T)));
      } else {
        ::operator delete(p);
      }
    });
#else
    retire_raw(node, [](void* p) { delete static_cast<T*>(p); });
#endif
  }

  // Debug invariant: every retire in this domain comes from one thread.
  // Parity with EbrDomain::debug_expect_single_remover() — callers that
  // confine physical removal to a single thread (the lock-free COS's
  // insert thread, §6.2.1) get the same abort-on-violation behavior no
  // matter which reclamation scheme backs them. No-op unless
  // PSMR_MEMORY_DEBUG.
  void debug_expect_single_remover() {
    single_remover_.store(true, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) debug-mode hint; set before sharing
  }

  void retire_raw(void* ptr, void (*deleter)(void*)) {
#if PSMR_MEMORY_DEBUG
    if (single_remover_.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) debug-mode hint; set before sharing
      // Sticky first-retirer identity (same scheme as ebr.cc): the first
      // retire claims the slot, any retire from a different thread
      // afterwards is an invariant violation.
      static thread_local char t_anchor;
      const auto tid = reinterpret_cast<std::uintptr_t>(&t_anchor);
      std::uintptr_t expected = 0;
      if (!debug_retirer_.compare_exchange_strong(expected, tid,
                                                  std::memory_order_relaxed) &&  // NOLINT(psmr-relaxed-order-audit) debug identity check; RMW atomicity suffices
          expected != tid) {
        std::fprintf(stderr,
                     "HazardDomain: single-remover invariant violated — "
                     "retire from a second thread (first=%#zx this=%#zx)\n",
                     static_cast<std::size_t>(expected),
                     static_cast<std::size_t>(tid));
        std::abort();
      }
    }
#endif
    Rec* rec = rec_for_current_thread();
    std::size_t limbo_size;
    {
      MutexLock lock(rec->limbo_mu);
      rec->limbo.push_back({ptr, deleter});
      limbo_size = rec->limbo.size();
    }
    if (limbo_size >= kScanThreshold) scan(*rec);
  }

  // Scans hazards and frees every retired object not currently protected.
  // Returns the number of objects freed.
  std::size_t scan() { return scan(*rec_for_current_thread()); }

  std::size_t retired_pending() const {
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    std::size_t pending = 0;
    for (std::size_t i = 0; i < hw; ++i) {
      MutexLock lock(recs_[i].limbo_mu);
      pending += recs_[i].limbo.size();
    }
    return pending;
  }

  std::uint64_t total_freed() const {
    return total_freed_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  }

  // Frees everything unconditionally. Caller must guarantee no hazards are
  // held and no further retires happen.
  void drain_all_unsafe() {
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < hw; ++i) {
      MutexLock lock(recs_[i].limbo_mu);
      for (const auto& r : recs_[i].limbo) r.deleter(r.ptr);
      total_freed_.fetch_add(recs_[i].limbo.size(), std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      recs_[i].limbo.clear();
    }
  }

 private:
  // Domain ids are process-unique and never reused, so a stale cache entry
  // for a destroyed domain can never be looked up again (keying by `this`
  // would alias a new domain constructed at a recycled address).
  static std::atomic<std::uint64_t>& next_domain_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter;
  }

  Rec* rec_for_current_thread() {
    thread_local std::vector<std::pair<std::uint64_t, Rec*>> cache;
    for (const auto& [dom, rec] : cache) {
      if (dom == id_) return rec;
    }
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (recs_[i].used.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
        std::size_t hw = high_water_.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat high-water mark
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        cache.emplace_back(id_, &recs_[i]);
        return &recs_[i];
      }
    }
    return nullptr;  // unreachable in practice; kMaxThreads exceeded
  }

  std::size_t scan(Rec& rec) {
    // Snapshot all live hazards.
    std::vector<void*> protected_ptrs;
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    protected_ptrs.reserve(hw * kSlotsPerThread);
    for (std::size_t i = 0; i < hw; ++i) {
      for (std::size_t s = 0; s < kSlotsPerThread; ++s) {
        void* p = recs_[i].slots[s].value.load(std::memory_order_seq_cst);
        if (p != nullptr) protected_ptrs.push_back(p);
      }
    }
    std::sort(protected_ptrs.begin(), protected_ptrs.end());

    MutexLock lock(rec.limbo_mu);
    std::size_t keep = 0;
    std::size_t freed = 0;
    for (std::size_t i = 0; i < rec.limbo.size(); ++i) {
      if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                             rec.limbo[i].ptr)) {
        rec.limbo[keep++] = rec.limbo[i];
      } else {
        rec.limbo[i].deleter(rec.limbo[i].ptr);
        ++freed;
      }
    }
    rec.limbo.resize(keep);
    total_freed_.fetch_add(freed, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    return freed;
  }

  const std::uint64_t id_;
  Rec recs_[kMaxThreads];
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> total_freed_{0};

  // Single-remover debug check (see debug_expect_single_remover). The
  // retirer identity is the address of a thread_local anchor — unique per
  // live thread, comparable without <thread>.
  std::atomic<bool> single_remover_{false};
  std::atomic<std::uintptr_t> debug_retirer_{0};
};

}  // namespace psmr
