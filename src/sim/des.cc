// Intentionally (nearly) empty: the DES engine is header-only; this
// translation unit pins the library target and catches ODR issues early.
#include "sim/des.h"

namespace psmr::sim {
// Nothing to define; see des.h.
}  // namespace psmr::sim
