// Exact model of the COS contents under the readers/writers conflict
// relation — the semantic core of the discrete-event simulator, and also
// usable as a reference model ("oracle") in tests: any handout order a real
// COS implementation produces must be permitted by this window.
//
// Semantics (matching rw_conflict): a read is ready iff no *older* write is
// present; a write is ready iff it is the oldest present command. Entries
// are identified by their absolute insertion index.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/des.h"

namespace psmr::sim {

class RwWindow {
 public:
  struct Cmd {
    bool is_write = false;
    int client = -1;  // -1 in standalone mode
    VirtualNs issued_ns = 0;
  };

  // Inserts at the tail; returns 1 if the new command is immediately ready
  // (inserting can never free anyone else).
  int insert(const Cmd& cmd) {
    const bool ready = cmd.is_write ? present_ == 0 : present_writes_ == 0;
    entries_.push_back({cmd, ready ? kReady : kWaiting});
    ++present_;
    if (cmd.is_write) ++present_writes_;
    if (ready) ready_queue_.push_back(base_ + entries_.size() - 1);
    return ready ? 1 : 0;
  }

  bool has_ready() const { return !ready_queue_.empty(); }

  // Takes the oldest ready command, marking it executing. Precondition:
  // has_ready().
  std::size_t pop_oldest_ready() {
    const std::size_t index = ready_queue_.front();
    ready_queue_.pop_front();
    entry(index).state = kExecuting;
    return index;
  }

  const Cmd& cmd(std::size_t index) const {
    return entries_[index - base_].cmd;
  }

  // Removes an executed command; returns how many commands became ready.
  int remove(std::size_t index) {
    Entry& removed = entry(index);
    removed.state = kRemoved;
    --present_;
    if (removed.cmd.is_write) --present_writes_;
    while (!entries_.empty() && entries_.front().state == kRemoved) {
      entries_.pop_front();
      ++base_;
    }
    // Newly ready commands can only exist in the prefix up to (and
    // including) the first present write. With no writes present, every
    // read was already ready at insertion.
    int freed = 0;
    bool saw_present = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry& e = entries_[i];
      if (e.state == kRemoved) continue;
      if (e.cmd.is_write) {
        if (!saw_present && e.state == kWaiting) {
          e.state = kReady;
          ready_queue_.push_back(base_ + i);
          ++freed;
        }
        break;  // nothing beyond the first present write can be ready
      }
      if (e.state == kWaiting) {
        e.state = kReady;
        ready_queue_.push_back(base_ + i);
        ++freed;
      }
      saw_present = true;
    }
    return freed;
  }

  std::size_t population() const { return present_; }
  std::size_t present_writes() const { return present_writes_; }

 private:
  enum State : std::uint8_t { kWaiting, kReady, kExecuting, kRemoved };
  struct Entry {
    Cmd cmd;
    State state;
  };

  Entry& entry(std::size_t index) { return entries_[index - base_]; }

  std::deque<Entry> entries_;
  std::size_t base_ = 0;
  std::size_t present_ = 0;
  std::size_t present_writes_ = 0;
  std::deque<std::size_t> ready_queue_;  // oldest-first ready indices
};

}  // namespace psmr::sim
