// Calibrated models of the three COS implementations (and of the SMR
// pipeline around them) on a simulated P-core machine.
//
// What is exact: the *semantics* of the conflict-ordered set under the
// paper's readers/writers conflict relation. The simulator tracks the real
// window of pending commands and computes readiness exactly (a read is
// ready iff no older write is present; a write is ready iff it is the
// oldest command), so scheduling dynamics — convoying behind writes, the
// ready/space semaphore interplay, insert-thread starvation — are faithful.
//
// What is modeled: *time*. Each operation costs virtual nanoseconds taken
// from a CostModel (linear in the population scanned), occupies a core for
// that time, and — for the two blocking algorithms — holds the graph
// critical section:
//  - coarse-grained: one FIFO mutex around insert/get/remove, exactly the
//    monitor of Alg. 2.
//  - fine-grained: hand-over-hand traversals cannot overtake, and with
//    sleeping mutexes the pipeline is dominated by wake-up convoys, so the
//    model serializes traversals too, with per-node costs measured from the
//    real implementation (which are several times the coarse-grained
//    per-node cost — matching the paper's observation that fine-grained
//    usually loses to coarse-grained).
//  - lock-free: no critical section; get/remove run concurrently with a
//    small CAS-contention inflation; insert stays sequential on the
//    scheduler thread (its rate 1/t_insert is the natural throughput
//    ceiling the paper reports for light/moderate workloads).
//
// Cost constants default to values calibrated on the reference host with
// bench/micro_cos; see EXPERIMENTS.md for the calibration table.
#pragma once

#include <cstdint>

#include "app/linked_list_service.h"
#include "common/histogram.h"
#include "cos/factory.h"
#include "sim/des.h"

namespace psmr::sim {

struct LinearCost {
  double base_ns = 0;
  double per_node_ns = 0;
  VirtualNs at(double population) const {
    double v = base_ns + per_node_ns * population;
    return v > 0 ? static_cast<VirtualNs>(v) : 0;
  }
};

struct CostModel {
  // Graph-operation costs as a function of scanned population. Defaults
  // are calibrated from bench/micro_cos on the reference host (see
  // EXPERIMENTS.md); override after measuring locally for best fidelity.
  // Fitted from BM_CosCycle at populations {0,25,75,149} and
  // BM_CosInsertOnly on the reference host (see EXPERIMENTS.md):
  //   coarse cycle  ~  60 + 3.8*pop ns   (single mutex, one scan each op)
  //   fine cycle    ~ 100 + 17*pop  ns   (three full lock-coupled walks)
  //   lock-free     ~ 133 + 8.3*pop ns   (insert dominates: node + edges)
  LinearCost coarse_insert{30, 2.2};
  LinearCost coarse_get{15, 1.0};
  LinearCost coarse_remove{15, 0.6};
  LinearCost fine_insert{35, 6.0};
  LinearCost fine_get{30, 5.0};
  LinearCost fine_remove{35, 6.0};
  LinearCost lf_insert{220, 4.0};
  LinearCost lf_get{20, 2.0};
  LinearCost lf_remove{30, 2.0};
  // Striped (segment-locked) extension: coarse-like per-node costs, but
  // traversals bounce through one lock per segment instead of one lock per
  // list, so the effective handoff is a fraction of the fine-grained one.
  LinearCost striped_insert{45, 2.6};
  LinearCost striped_get{25, 1.2};
  LinearCost striped_remove{30, 1.0};

  // Per-command execution cost for the paper's light/moderate/heavy list
  // sizes (1k/10k/100k sorted-list traversal), measured on the reference
  // host via the standalone driver.
  double exec_ns[3] = {1200, 12000, 140000};

  // Contended mutex handoff (futex wake-up) latency: paid by each granted
  // acquisition that found the lock busy. This is what plateaus the
  // blocking algorithms in the paper — the critical sections themselves
  // are short, the convoys are not. The fine-grained value is higher: its
  // hand-over-hand walks bounce through many short sleeps per traversal,
  // which shows up as a larger effective per-operation wake cost.
  double mutex_handoff_ns = 1500;
  double fine_handoff_ns = 2500;
  double striped_handoff_ns = 800;

  // Residual proportional inflation (cache-line ping-pong on shared data)
  // per extra active worker.
  double mutex_contention_coeff = 0.02;
  double fine_contention_coeff = 0.03;
  double lf_contention_coeff = 0.002;
};

struct SimConfig {
  psmr::CosKind kind = psmr::CosKind::kLockFree;
  bool sequential = false;  // classical SMR (SMR mode only): 1 executor, no COS
  int cores = 64;
  int workers = 8;
  double write_pct = 0.0;
  psmr::ExecCost cost = psmr::ExecCost::kLight;
  std::size_t graph_size = psmr::kPaperGraphSize;
  std::uint64_t seed = 7;
  VirtualNs warmup_ns = 20'000'000;     // 20 ms virtual
  VirtualNs measure_ns = 200'000'000;   // 200 ms virtual

  // SMR mode (fig. 4-6). When false, the insert source is infinite (the
  // standalone §7.3 harness).
  bool smr_mode = false;
  int clients = 200;
  int client_pipeline = 1;
  VirtualNs net_one_way_ns = 150'000;   // client<->replica / replica<->replica
  VirtualNs batch_timeout_ns = 500'000;
  std::size_t batch_max = 64;
  VirtualNs consensus_cpu_ns = 10'000;  // per-batch ordering CPU

  CostModel costs;
};

struct SimResult {
  double throughput_kops = 0.0;
  std::uint64_t completed = 0;
  double mean_population = 0.0;
  // SMR mode only:
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

// Runs one configuration to completion in virtual time.
SimResult simulate_cos(const SimConfig& config);

}  // namespace psmr::sim
