#include "sim/cos_models.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "sim/rw_window.h"

namespace psmr::sim {
namespace {

class Simulation {
 public:
  explicit Simulation(const SimConfig& config)
      : cfg_(config),
        rng_(config.seed),
        cores_(des_, config.cores),
        space_(des_, static_cast<std::int64_t>(config.graph_size)),
        ready_(des_, 0),
        graph_mutex_(des_,
                     static_cast<VirtualNs>(
                         config.kind == psmr::CosKind::kFineGrained
                             ? config.costs.fine_handoff_ns
                         : config.kind == psmr::CosKind::kStriped
                             ? config.costs.striped_handoff_ns
                             : config.costs.mutex_handoff_ns)),
        arrivals_(des_, 0) {
    exec_ns_ = static_cast<VirtualNs>(
        cfg_.costs.exec_ns[static_cast<int>(cfg_.cost)]);
    switch (cfg_.kind) {
      case psmr::CosKind::kCoarseGrained:
        insert_cost_ = cfg_.costs.coarse_insert;
        get_cost_ = cfg_.costs.coarse_get;
        remove_cost_ = cfg_.costs.coarse_remove;
        contention_ = cfg_.costs.mutex_contention_coeff;
        uses_mutex_ = true;
        break;
      case psmr::CosKind::kFineGrained:
        insert_cost_ = cfg_.costs.fine_insert;
        get_cost_ = cfg_.costs.fine_get;
        remove_cost_ = cfg_.costs.fine_remove;
        contention_ = cfg_.costs.fine_contention_coeff;
        uses_mutex_ = true;
        break;
      case psmr::CosKind::kLockFree:
        insert_cost_ = cfg_.costs.lf_insert;
        get_cost_ = cfg_.costs.lf_get;
        remove_cost_ = cfg_.costs.lf_remove;
        contention_ = cfg_.costs.lf_contention_coeff;
        uses_mutex_ = false;
        break;
      case psmr::CosKind::kStriped:
        insert_cost_ = cfg_.costs.striped_insert;
        get_cost_ = cfg_.costs.striped_get;
        remove_cost_ = cfg_.costs.striped_remove;
        contention_ = cfg_.costs.mutex_contention_coeff;
        uses_mutex_ = true;
        break;
    }
  }

  SimResult run() {
    if (cfg_.smr_mode) {
      for (int c = 0; c < cfg_.clients; ++c) {
        for (int p = 0; p < cfg_.client_pipeline; ++p) client_issue(c);
      }
      if (cfg_.sequential) {
        sequential_executor_loop();
      } else {
        smr_scheduler_loop();
        for (int w = 0; w < cfg_.workers; ++w) worker_loop();
      }
    } else {
      standalone_scheduler_loop();
      for (int w = 0; w < cfg_.workers; ++w) worker_loop();
    }

    des_.at(cfg_.warmup_ns, [this] {
      completed_at_warmup_ = completed_;
      measuring_ = true;
    });
    const VirtualNs end = cfg_.warmup_ns + cfg_.measure_ns;
    des_.run_until(end);

    SimResult result;
    result.completed = completed_ - completed_at_warmup_;
    result.throughput_kops = static_cast<double>(result.completed) /
                             (static_cast<double>(cfg_.measure_ns) * 1e-9) /
                             1000.0;
    result.mean_population =
        population_samples_ > 0
            ? static_cast<double>(population_sum_) /
                  static_cast<double>(population_samples_)
            : 0.0;
    if (latency_.count() > 0) {
      result.mean_latency_ms = latency_.mean() * 1e-6;
      result.p95_latency_ms =
          static_cast<double>(latency_.percentile(95)) * 1e-6;
    }
    return result;
  }

 private:
  // Contention-inflated duration of a worker-side operation.
  VirtualNs worker_op(const LinearCost& cost) const {
    const double population = static_cast<double>(window_.population());
    const double active =
        static_cast<double>(std::min(cfg_.workers, cfg_.cores));
    const double inflation = 1.0 + contention_ * (active - 1.0);
    return static_cast<VirtualNs>(cost.at(population) * inflation);
  }

  bool next_is_write() { return rng_.uniform() * 100.0 < cfg_.write_pct; }

  void sample_population() {
    population_sum_ += window_.population();
    ++population_samples_;
  }

  // ---- standalone (§7.3): infinite command source ----
  void standalone_scheduler_loop() {
    space_.acquire([this] {
      const VirtualNs cost = static_cast<VirtualNs>(
          insert_cost_.at(static_cast<double>(window_.population())));
      auto do_insert = [this, cost] {
        cores_.burst(cost, [this] {
          RwWindow::Cmd cmd;
          cmd.is_write = next_is_write();
          const int freed = window_.insert(cmd);
          sample_population();
          if (uses_mutex_) graph_mutex_.release();
          ready_.release(freed);
          standalone_scheduler_loop();
        });
      };
      if (uses_mutex_) {
        graph_mutex_.acquire(do_insert);
      } else {
        do_insert();
      }
    });
  }

  // ---- SMR mode: clients -> batching -> consensus -> scheduler ----
  void client_issue(int client) {
    RwWindow::Cmd cmd;
    cmd.is_write = next_is_write();
    cmd.client = client;
    cmd.issued_ns = des_.now();
    // One-way trip to the leader.
    des_.after(cfg_.net_one_way_ns, [this, cmd] { leader_receive(cmd); });
  }

  void leader_receive(const RwWindow::Cmd& cmd) {
    pending_.push_back(cmd);
    if (pending_.size() >= cfg_.batch_max) {
      flush_batch();
    } else if (pending_.size() == 1) {
      const std::uint64_t epoch = ++batch_epoch_;
      des_.after(cfg_.batch_timeout_ns, [this, epoch] {
        if (epoch == batch_epoch_ && !pending_.empty()) flush_batch();
      });
    }
  }

  void flush_batch() {
    ++batch_epoch_;  // cancel any outstanding timeout
    std::deque<RwWindow::Cmd> batch;
    batch.swap(pending_);
    // ACCEPT/ACCEPTED/COMMIT round: one replica->replica round trip plus
    // per-batch ordering CPU.
    const VirtualNs latency = 2 * cfg_.net_one_way_ns + cfg_.consensus_cpu_ns;
    des_.after(latency, [this, batch = std::move(batch)]() mutable {
      for (const auto& cmd : batch) arrival_queue_.push_back(cmd);
      arrivals_.release(static_cast<std::int64_t>(batch.size()));
    });
  }

  void smr_scheduler_loop() {
    arrivals_.acquire([this] {
      space_.acquire([this] {
        const VirtualNs cost = static_cast<VirtualNs>(
            insert_cost_.at(static_cast<double>(window_.population())));
        auto do_insert = [this, cost] {
          cores_.burst(cost, [this] {
            RwWindow::Cmd cmd = arrival_queue_.front();
            arrival_queue_.pop_front();
            const int freed = window_.insert(cmd);
            sample_population();
            if (uses_mutex_) graph_mutex_.release();
            ready_.release(freed);
            smr_scheduler_loop();
          });
        };
        if (uses_mutex_) {
          graph_mutex_.acquire(do_insert);
        } else {
          do_insert();
        }
      });
    });
  }

  void sequential_executor_loop() {
    arrivals_.acquire([this] {
      cores_.burst(exec_ns_, [this] {
        const RwWindow::Cmd cmd = arrival_queue_.front();
        arrival_queue_.pop_front();
        complete_command(cmd);
        sequential_executor_loop();
      });
    });
  }

  void complete_command(const RwWindow::Cmd& cmd) {
    ++completed_;
    if (cmd.client >= 0) {
      if (measuring_) {
        latency_.record(des_.now() + cfg_.net_one_way_ns - cmd.issued_ns);
      }
      // Reply travels back; the closed-loop client then issues the next
      // command.
      des_.after(cfg_.net_one_way_ns,
                 [this, client = cmd.client] { client_issue(client); });
    }
  }

  // ---- worker threads (both modes) ----
  void worker_loop() {
    ready_.acquire([this] {
      const VirtualNs get_cost = worker_op(get_cost_);
      auto do_get = [this, get_cost] {
        cores_.burst(get_cost, [this] {
          const std::size_t index = window_.pop_oldest_ready();
          if (uses_mutex_) graph_mutex_.release();
          cores_.burst(exec_ns_, [this, index] {
            complete_command(window_.cmd(index));
            const VirtualNs remove_cost = worker_op(remove_cost_);
            auto do_remove = [this, index, remove_cost] {
              cores_.burst(remove_cost, [this, index] {
                const int freed = window_.remove(index);
                if (uses_mutex_) graph_mutex_.release();
                ready_.release(freed);
                space_.release();
                worker_loop();
              });
            };
            if (uses_mutex_) {
              graph_mutex_.acquire(do_remove);
            } else {
              do_remove();
            }
          });
        });
      };
      if (uses_mutex_) {
        graph_mutex_.acquire(do_get);
      } else {
        do_get();
      }
    });
  }

  const SimConfig cfg_;
  psmr::Xoshiro256 rng_;
  Des des_;
  SimCores cores_;
  SimSemaphore space_;
  SimSemaphore ready_;
  SimMutex graph_mutex_;
  SimSemaphore arrivals_;
  RwWindow window_;
  std::deque<RwWindow::Cmd> pending_;        // leader batch buffer
  std::deque<RwWindow::Cmd> arrival_queue_;  // delivered, not yet inserted
  std::uint64_t batch_epoch_ = 0;

  LinearCost insert_cost_{}, get_cost_{}, remove_cost_{};
  double contention_ = 0.0;
  bool uses_mutex_ = false;
  VirtualNs exec_ns_ = 0;

  std::uint64_t completed_ = 0;
  std::uint64_t completed_at_warmup_ = 0;
  bool measuring_ = false;
  std::uint64_t population_sum_ = 0;
  std::uint64_t population_samples_ = 0;
  psmr::Histogram latency_;
};

}  // namespace

SimResult simulate_cos(const SimConfig& config) {
  Simulation simulation(config);
  return simulation.run();
}

}  // namespace psmr::sim
