// Minimal discrete-event simulation (DES) engine with virtual time.
//
// Why this exists: the paper's headline result is *scalability* — linear
// speedup of the lock-free scheduler up to 64 worker threads on a 64-core
// machine. The reproduction host may have far fewer cores (the reference
// run has one), where real threads time-slice and no algorithm can speed
// up. The DES models P cores and the synchronization structure of each
// algorithm in virtual time, with cost constants calibrated from
// microbenchmarks of the real implementations (bench/micro_cos), so the
// figures' shapes can be reproduced at the paper's scale. See DESIGN.md §3.
//
// Programming model: continuation-passing. A "process" is a chain of
// callbacks; blocking primitives (semaphore, FIFO mutex, core pool) take
// the continuation to run once the resource is granted. Determinism: ties
// are broken by insertion sequence and there is no wall-clock anywhere.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace psmr::sim {

using Task = std::function<void()>;
using VirtualNs = std::uint64_t;

class Des {
 public:
  VirtualNs now() const { return now_; }

  void at(VirtualNs time, Task task) {
    events_.push(Event{time, next_sequence_++, std::move(task)});
  }

  void after(VirtualNs delay, Task task) { at(now_ + delay, std::move(task)); }

  // Runs one event; returns false when the queue is empty.
  bool step() {
    if (events_.empty()) return false;
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.task();
    return true;
  }

  // Runs events until virtual time exceeds `end` (events at exactly `end`
  // still run) or the queue empties.
  void run_until(VirtualNs end) {
    while (!events_.empty() && events_.top().time <= end) step();
    if (now_ < end) now_ = end;
  }

  std::size_t pending_events() const { return events_.size(); }

 private:
  struct Event {
    VirtualNs time;
    std::uint64_t sequence;
    Task task;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time
                                : sequence > other.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  VirtualNs now_ = 0;
  std::uint64_t next_sequence_ = 0;
};

// Counting semaphore: acquire() parks the continuation until a permit is
// available (FIFO).
class SimSemaphore {
 public:
  SimSemaphore(Des& des, std::int64_t initial) : des_(des), count_(initial) {}

  void acquire(Task continuation) {
    if (count_ > 0) {
      --count_;
      des_.after(0, std::move(continuation));
    } else {
      waiters_.push_back(std::move(continuation));
    }
  }

  bool try_acquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void release(std::int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      Task waiter = std::move(waiters_.front());
      waiters_.pop_front();
      des_.after(0, std::move(waiter));
      --n;
    }
    count_ += n;
  }

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Des& des_;
  std::int64_t count_;
  std::deque<Task> waiters_;
};

// FIFO mutex modeling a sleeping (futex-style) lock: an acquisition that
// finds the mutex busy pays `handoff_ns` of wake-up latency when it is
// finally granted — the convoy effect that dominates contended monitors.
// Uncontended acquisitions are free.
class SimMutex {
 public:
  explicit SimMutex(Des& des, VirtualNs handoff_ns = 0)
      : des_(des), handoff_ns_(handoff_ns) {}

  void acquire(Task continuation) {
    if (!busy_) {
      busy_ = true;
      des_.after(0, std::move(continuation));
    } else {
      waiters_.push_back(std::move(continuation));
    }
  }

  void release() {
    if (waiters_.empty()) {
      busy_ = false;
      return;
    }
    Task next = std::move(waiters_.front());
    waiters_.pop_front();
    des_.after(handoff_ns_, std::move(next));  // stays busy through handoff
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Des& des_;
  const VirtualNs handoff_ns_;
  bool busy_ = false;
  std::deque<Task> waiters_;
};

// A pool of P cores. burst() occupies one core for `duration` of virtual
// time, then runs the continuation (still conceptually on-CPU; the caller
// chains bursts). Threads blocked on semaphores hold no core, like real
// threads sleeping in a futex.
class SimCores {
 public:
  SimCores(Des& des, int cores) : des_(des), free_(des, cores) {}

  void burst(VirtualNs duration, Task continuation) {
    free_.acquire([this, duration, k = std::move(continuation)]() mutable {
      des_.after(duration, [this, k = std::move(k)]() mutable {
        free_.release();
        k();
      });
    });
  }

  // Accumulated busy time can be derived by the caller; the pool itself
  // stays minimal.

 private:
  Des& des_;
  SimSemaphore free_;
};

}  // namespace psmr::sim
