#include "broadcast/sequenced_broadcast.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace psmr {

SequencedBroadcast::SequencedBroadcast(Transport& net, NodeId self, int index,
                                       std::vector<NodeId> replicas,
                                       Config config, DeliverFn deliver)
    : net_(net),
      self_(self),
      index_(index),
      replicas_(std::move(replicas)),
      config_(config),
      deliver_(std::move(deliver)),
      metrics_{MetricsRegistry::global().counter("broadcast.proposals"),
               MetricsRegistry::global().counter("broadcast.delivered_batches"),
               MetricsRegistry::global().counter(
                   "broadcast.delivered_commands"),
               MetricsRegistry::global().counter("broadcast.heartbeats"),
               MetricsRegistry::global().counter("broadcast.gap_reports"),
               MetricsRegistry::global().counter(
                   "broadcast.checkpoint_installs"),
               MetricsRegistry::global().counter("broadcast.view_changes"),
               MetricsRegistry::global().gauge("broadcast.seq_lag")} {}

SequencedBroadcast::~SequencedBroadcast() { stop(); }

void SequencedBroadcast::start() {
  if (started_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    last_leader_activity_ns_ = now_ns();
  }
  timer_ = std::thread([this] { timer_loop(); });
}

void SequencedBroadcast::stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

bool SequencedBroadcast::is_leader() const {
  MutexLock lock(mu_);
  return leader_of(view_) == index_ && !view_changing_;
}

std::uint64_t SequencedBroadcast::view() const {
  MutexLock lock(mu_);
  return view_;
}

std::uint64_t SequencedBroadcast::last_delivered() const {
  MutexLock lock(mu_);
  return last_delivered_;
}

bool SequencedBroadcast::submit(const std::vector<Command>& cmds) {
  MutexLock lock(mu_);
  if (leader_of(view_) != index_ || view_changing_) return false;
  if (pending_.empty()) pending_since_ns_ = now_ns();
  pending_.insert(pending_.end(), cmds.begin(), cmds.end());
  if (pending_.size() >= config_.batch_max) propose_locked();
  return true;
}

void SequencedBroadcast::broadcast_to_replicas_locked(const MessagePtr& m) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == index_) continue;
    net_.send(self_, replicas_[i], m);
  }
}

void SequencedBroadcast::propose_locked() {
  while (!pending_.empty()) {
    const std::size_t take = std::min(pending_.size(), config_.batch_max);
    std::vector<Command> batch(pending_.begin(),
                               pending_.begin() + static_cast<long>(take));
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(take));

    const std::uint64_t seq = next_seq_++;
    metrics_.proposals.inc();
    Slot& slot = log_[seq];
    slot.view = view_;
    slot.batch = batch;
    slot.acks = {index_};
    broadcast_to_replicas_locked(
        make_message<AcceptMsg>(view_, seq, std::move(batch)));

    // Single-replica deployments (n = 1): self-ack is already a majority.
    if (slot.acks.size() * 2 > replicas_.size()) {
      slot.committed = true;
      broadcast_to_replicas_locked(make_message<CommitMsg>(view_, seq));
    }
    last_heartbeat_sent_ns_ = now_ns();  // proposals count as liveness
  }
  try_deliver_locked();
}

void SequencedBroadcast::try_deliver_locked() {
  if (delivering_) return;  // the active deliverer will pick up new commits
  delivering_ = true;
  while (true) {
    auto it = log_.find(last_delivered_ + 1);
    if (it == log_.end() || !it->second.committed || it->second.delivered) {
      break;
    }
    it->second.delivered = true;
    const std::uint64_t seq = ++last_delivered_;
    std::vector<Command> batch = it->second.batch;  // keep for view changes
    metrics_.delivered_batches.inc();
    metrics_.delivered_commands.inc(batch.size());
    // Deliver outside mu_ (the callback pushes into the scheduler queue and
    // must not see the broadcast lock held); delivering_ keeps this loop
    // single-threaded across the gap.
    mu_.unlock();
    if (!batch.empty()) deliver_(seq, batch);
    mu_.lock();
    // Prune ancient slots beyond the retention window; a replica lagging
    // past this needs state transfer (install_checkpoint).
    while (!log_.empty() &&
           log_.begin()->first + config_.retained_slots < last_delivered_) {
      log_.erase(log_.begin());
    }
  }
  delivering_ = false;
  // Lag behind the highest slot we know of (committed or not); 0 when the
  // log is fully delivered or empty.
  const std::uint64_t top = log_.empty() ? last_delivered_
                                         : std::max(log_.rbegin()->first,
                                                    last_delivered_);
  metrics_.seq_lag.set(static_cast<std::int64_t>(top - last_delivered_));
}

void SequencedBroadcast::handle(NodeId from, const MessagePtr& m) {
  int from_index = -1;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i] == from) from_index = static_cast<int>(i);
  }
  if (from_index < 0) return;  // not a replica

  switch (m->type) {
    case msg::kAccept:
      on_accept(from_index, message_as<AcceptMsg>(m));
      break;
    case msg::kAccepted:
      on_accepted(from_index, message_as<AcceptedMsg>(m));
      break;
    case msg::kCommit:
      on_commit(message_as<CommitMsg>(m));
      break;
    case msg::kHeartbeat:
      on_heartbeat(from_index, message_as<HeartbeatMsg>(m));
      break;
    case msg::kViewChange: {
      const auto& vc = message_as<ViewChangeMsg>(m);
      MutexLock lock(mu_);
      process_view_change_locked(from_index, vc);
      try_deliver_locked();
      break;
    }
    case msg::kNewView: {
      const auto& nv = message_as<NewViewMsg>(m);
      MutexLock lock(mu_);
      adopt_new_view_locked(nv);
      try_deliver_locked();
      break;
    }
    default:
      break;
  }
}

void SequencedBroadcast::on_accept(int from_index, const AcceptMsg& m) {
  MutexLock lock(mu_);
  if (m.view != view_ || view_changing_) {
    // A higher-view ACCEPT means we missed a NEWVIEW; join the newer view
    // optimistically (its leader is alive and proposing).
    if (m.view > view_) {
      view_ = m.view;
      view_changing_ = false;
    } else {
      return;
    }
  }
  last_leader_activity_ns_ = now_ns();
  maybe_report_gap_locked(from_index, m.seq);
  Slot& slot = log_[m.seq];
  if (!slot.delivered) {
    slot.view = m.view;
    slot.batch = m.batch;
  }
  net_.send(self_, replicas_[static_cast<std::size_t>(leader_of(view_))],
            make_message<AcceptedMsg>(m.view, m.seq));
}

void SequencedBroadcast::on_accepted(int from_index, const AcceptedMsg& m) {
  MutexLock lock(mu_);
  if (m.view != view_ || leader_of(view_) != index_) return;
  auto it = log_.find(m.seq);
  if (it == log_.end()) return;
  Slot& slot = it->second;
  if (slot.committed) {
    // Late ACCEPTED (typically after a view change) for a slot we already
    // committed: the sender may still be missing the COMMIT, so re-send it
    // point-to-point.
    net_.send(self_, replicas_[static_cast<std::size_t>(from_index)],
              make_message<CommitMsg>(view_, m.seq));
    return;
  }
  slot.acks.insert(from_index);
  if (!slot.committed && slot.acks.size() * 2 > replicas_.size()) {
    slot.committed = true;
    broadcast_to_replicas_locked(make_message<CommitMsg>(view_, m.seq));
    try_deliver_locked();
  }
}

void SequencedBroadcast::on_commit(const CommitMsg& m) {
  MutexLock lock(mu_);
  last_leader_activity_ns_ = now_ns();
  auto it = log_.find(m.seq);
  if (it == log_.end() || it->second.batch.empty()) {
    // Links are reliable FIFO, so the ACCEPT always precedes the COMMIT on
    // the leader->us link; an unknown slot here means it was pruned
    // (already delivered).
    return;
  }
  it->second.committed = true;
  try_deliver_locked();
}

void SequencedBroadcast::on_heartbeat(int from_index, const HeartbeatMsg& m) {
  MutexLock lock(mu_);
  if (m.view >= view_) {
    if (m.view > view_) {
      view_ = m.view;
      view_changing_ = false;
    }
    last_leader_activity_ns_ = now_ns();
  }
  maybe_report_gap_locked(from_index, m.committed_up_to);
}

// Requires mu_. Fires the gap handler (throttled) when a peer demonstrably
// has history we can no longer obtain through ordinary delivery.
void SequencedBroadcast::maybe_report_gap_locked(int from_index,
                                                 std::uint64_t their_seq) {
  if (!on_gap_) return;
  if (their_seq <= last_delivered_ + config_.retained_slots) return;
  const std::uint64_t now = now_ns();
  if (now - last_gap_report_ns_ <
      config_.gap_report_interval_ms * 1'000'000ull) {
    return;
  }
  last_gap_report_ns_ = now;
  metrics_.gap_reports.inc();
  on_gap_(replicas_[static_cast<std::size_t>(from_index)], last_delivered_);
}

void SequencedBroadcast::install_checkpoint(std::uint64_t seq) {
  MutexLock lock(mu_);
  if (seq <= last_delivered_) return;
  metrics_.checkpoint_installs.inc();
  last_delivered_ = seq;
  while (!log_.empty() && log_.begin()->first <= seq) {
    log_.erase(log_.begin());
  }
  try_deliver_locked();  // slots beyond the checkpoint may be committed
}

std::vector<LogEntrySummary> SequencedBroadcast::accepted_log_locked() const {
  std::vector<LogEntrySummary> entries;
  entries.reserve(log_.size());
  for (const auto& [seq, slot] : log_) {
    if (!slot.batch.empty()) entries.push_back({seq, slot.view, slot.batch});
  }
  return entries;
}

void SequencedBroadcast::start_view_change_locked(std::uint64_t target_view) {
  metrics_.view_changes.inc();
  view_changing_ = true;
  target_view_ = target_view;
  view_change_msgs_.clear();
  pending_.clear();  // clients will retransmit
  last_leader_activity_ns_ = now_ns();

  auto vc = std::make_shared<const ViewChangeMsg>(
      target_view, accepted_log_locked(), last_delivered_);
  const int new_leader = leader_of(target_view);
  if (new_leader == index_) {
    process_view_change_locked(index_, *vc);
  } else {
    net_.send(self_, replicas_[static_cast<std::size_t>(new_leader)], vc);
  }
}

void SequencedBroadcast::process_view_change_locked(int from_index,
                                                    const ViewChangeMsg& vc) {
  if (vc.new_view < view_ || (view_ == vc.new_view && !view_changing_)) {
    return;  // stale
  }
  if (leader_of(vc.new_view) != index_) {
    // Someone else timed out before us; join their view change.
    if (!view_changing_ || target_view_ < vc.new_view) {
      start_view_change_locked(vc.new_view);
    }
    return;
  }
  if (!view_changing_ || target_view_ != vc.new_view) {
    start_view_change_locked(vc.new_view);
  }
  view_change_msgs_.emplace(from_index, vc);
  if (view_change_msgs_.size() * 2 <= replicas_.size()) return;

  // Majority collected: compute the new log — per slot, the entry accepted
  // in the highest view wins. Committed entries are majority-replicated, so
  // the majority intersection guarantees they are all present.
  std::map<std::uint64_t, LogEntrySummary> merged;
  for (const auto& [idx, msg_vc] : view_change_msgs_) {
    for (const auto& entry : msg_vc.accepted_log) {
      auto it = merged.find(entry.seq);
      if (it == merged.end() || it->second.view < entry.view) {
        merged[entry.seq] = entry;
      }
    }
  }
  // Install locally.
  view_ = vc.new_view;
  view_changing_ = false;
  view_change_msgs_.clear();
  std::uint64_t max_seq = last_delivered_;
  for (auto& [seq, entry] : merged) {
    max_seq = std::max(max_seq, seq);
    Slot& slot = log_[seq];
    if (slot.delivered) continue;
    slot.view = view_;
    slot.batch = entry.batch;
    slot.acks = {index_};
    slot.committed = false;
  }
  next_seq_ = max_seq + 1;

  std::vector<LogEntrySummary> install;
  install.reserve(merged.size());
  for (auto& [seq, entry] : merged) {
    install.push_back({seq, view_, entry.batch});
  }
  broadcast_to_replicas_locked(make_message<NewViewMsg>(view_, install));
  last_heartbeat_sent_ns_ = 0;  // heartbeat immediately
}

void SequencedBroadcast::adopt_new_view_locked(const NewViewMsg& nv) {
  if (nv.view < view_) return;
  view_ = nv.view;
  view_changing_ = false;
  view_change_msgs_.clear();
  last_leader_activity_ns_ = now_ns();
  const int leader = leader_of(view_);
  for (const auto& entry : nv.log) {
    Slot& slot = log_[entry.seq];
    if (slot.delivered) continue;
    slot.view = view_;
    slot.batch = entry.batch;
    net_.send(self_, replicas_[static_cast<std::size_t>(leader)],
              make_message<AcceptedMsg>(view_, entry.seq));
  }
}

void SequencedBroadcast::timer_loop() {
  MutexLock lock(mu_);
  while (!stopping_) {
    timer_cv_.wait_for(mu_,
                       std::chrono::milliseconds(config_.tick_interval_ms));
    if (stopping_) return;
    const std::uint64_t now = now_ns();
    const bool am_leader = leader_of(view_) == index_ && !view_changing_;
    if (am_leader) {
      if (!pending_.empty() &&
          now - pending_since_ns_ >= config_.batch_timeout_us * 1000ull) {
        propose_locked();
      }
      if (now - last_heartbeat_sent_ns_ >=
          config_.heartbeat_interval_ms * 1'000'000ull) {
        metrics_.heartbeats.inc();
        broadcast_to_replicas_locked(
            make_message<HeartbeatMsg>(view_, last_delivered_));
        last_heartbeat_sent_ns_ = now;
      }
    } else {
      const std::uint64_t timeout_ns =
          config_.leader_timeout_ms * 1'000'000ull;
      if (now - last_leader_activity_ns_ >= timeout_ns) {
        // Escalate past views whose leader never materialized.
        const std::uint64_t next =
            view_changing_ ? target_view_ + 1 : view_ + 1;
        start_view_change_locked(next);
      }
    }
  }
}

}  // namespace psmr
