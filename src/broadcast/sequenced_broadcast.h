// Sequenced atomic broadcast — the ordering substrate under each replica.
//
// Substitute for BFT-SMaRt's ordering protocol in its crash-fault
// configuration: a leader-based, majority-ack sequenced broadcast over
// n = 2f+1 replicas (Paxos phase-2 pattern with a stable leader, plus a
// Viewstamped-Replication-style view change for leader failure).
//
// Normal case:
//   submit(cmds) at the leader appends to the pending batch; the batch is
//   proposed when it reaches batch_max commands or batch_timeout elapses.
//   The leader assigns the next sequence number and sends ACCEPT(view, seq,
//   batch); replicas log it and answer ACCEPTED; on a majority (counting
//   itself) the leader sends COMMIT; every replica delivers committed
//   batches in sequence order (gap-free) through the deliver callback.
//
// Leader failure:
//   The leader heartbeats when idle. A replica that hears nothing for
//   leader_timeout starts view change v+1: it sends VIEWCHANGE(v+1, its
//   accepted log) to the new leader (view round-robin). The new leader
//   collects a majority of VIEWCHANGE messages, selects for each slot the
//   entry accepted in the highest view (committed entries are majority-
//   replicated, so they always survive the majority intersection), fills
//   holes with no-op batches, and installs the result with NEWVIEW, after
//   which normal case resumes. Uncommitted entries may be re-proposed; the
//   SMR layer deduplicates by (client, client_seq) so re-execution never
//   happens.
//
// Delivery ordering guarantee (uniform total order): all replicas deliver
// the same batches in the same sequence order; delivery is gap-free and
// each batch is delivered at most once per replica.
//
// Threading: handle() is invoked by the network endpoint dispatcher;
// submit() by any thread; an internal timer thread drives batching,
// heartbeats and failure detection. All state is guarded by one mutex; the
// deliver callback is invoked while *not* holding it, in delivery order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "broadcast/messages.h"
#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace psmr {

class SequencedBroadcast {
 public:
  struct Config {
    std::size_t batch_max = 64;
    std::uint64_t batch_timeout_us = 500;
    std::uint64_t heartbeat_interval_ms = 10;
    std::uint64_t leader_timeout_ms = 100;
    std::uint64_t tick_interval_ms = 2;
    // Delivered slots retained for view changes / laggards; a replica that
    // falls further behind than this needs state transfer (see on_gap).
    std::uint64_t retained_slots = 1024;
    std::uint64_t gap_report_interval_ms = 200;
  };

  // `deliver` receives each committed batch exactly once, in sequence
  // order, possibly from the timer or dispatcher thread — it must not block
  // for long (the SMR replica hands off to its scheduler queue).
  using DeliverFn = std::function<void(std::uint64_t seq,
                                       const std::vector<Command>& batch)>;

  // Invoked (throttled) when a peer's traffic shows this replica lags
  // beyond the retention window and ordinary delivery can no longer catch
  // it up; `peer` is a replica that has the missing history and
  // `our_delivered` is this replica's delivery watermark. The SMR layer
  // reacts with a state-transfer request. NOTE: invoked with the engine's
  // internal mutex held — the handler must not call back into this engine.
  using GapFn = std::function<void(NodeId peer, std::uint64_t our_delivered)>;

  SequencedBroadcast(Transport& net, NodeId self, int index,
                     std::vector<NodeId> replicas, Config config,
                     DeliverFn deliver);

  void set_gap_handler(GapFn on_gap) {
    MutexLock lock(mu_);
    on_gap_ = std::move(on_gap);
  }

  // State-transfer install: everything up to and including `seq` is covered
  // by an externally restored checkpoint. Prunes the log below it and moves
  // the delivery watermark; later committed slots resume delivering
  // normally. No-op if `seq` is not ahead of the watermark.
  void install_checkpoint(std::uint64_t seq);
  ~SequencedBroadcast();

  SequencedBroadcast(const SequencedBroadcast&) = delete;
  SequencedBroadcast& operator=(const SequencedBroadcast&) = delete;

  void start();
  void stop();

  // Feeds protocol messages (types msg::kAccept .. msg::kNewView).
  void handle(NodeId from, const MessagePtr& m);

  // Atomic-broadcast "broadcast" primitive: enqueues commands for ordering.
  // Only effective at the current leader; callers forward client requests
  // to every replica and non-leaders ignore them. Returns false if this
  // replica does not believe itself leader (so callers may drop or buffer).
  bool submit(const std::vector<Command>& cmds);

  bool is_leader() const;
  std::uint64_t view() const;
  std::uint64_t last_delivered() const;

 private:
  struct Slot {
    std::uint64_t view = 0;  // view in which the current value was accepted
    std::vector<Command> batch;
    std::set<int> acks;  // replica indices that ACCEPTED (leader only)
    bool committed = false;
    bool delivered = false;
  };

  int leader_of(std::uint64_t v) const {
    return static_cast<int>(v % replicas_.size());
  }

  struct Metrics {
    Counter& proposals;           // batches proposed (leader side)
    Counter& delivered_batches;   // batches delivered in order
    Counter& delivered_commands;  // commands in those batches
    Counter& heartbeats;          // heartbeats sent while leader
    Counter& gap_reports;         // gap handler firings (throttled)
    Counter& checkpoint_installs;
    Counter& view_changes;        // view changes this replica initiated
    Gauge& seq_lag;               // highest slot seen minus delivered
  };

  // All of the following require mu_ held. try_deliver_locked releases and
  // reacquires mu_ around the deliver callback (directly on the mutex, so
  // the static analysis and the rank checker both track it).
  void propose_locked() PSMR_REQUIRES(mu_);
  void try_deliver_locked() PSMR_REQUIRES(mu_);
  void broadcast_to_replicas_locked(const MessagePtr& m) PSMR_REQUIRES(mu_);
  void start_view_change_locked(std::uint64_t target_view)
      PSMR_REQUIRES(mu_);
  void process_view_change_locked(int from_index, const ViewChangeMsg& vc)
      PSMR_REQUIRES(mu_);
  void adopt_new_view_locked(const NewViewMsg& nv) PSMR_REQUIRES(mu_);
  std::vector<LogEntrySummary> accepted_log_locked() const
      PSMR_REQUIRES(mu_);

  void on_accept(int from_index, const AcceptMsg& m);
  void on_accepted(int from_index, const AcceptedMsg& m);
  void on_commit(const CommitMsg& m);
  void on_heartbeat(int from_index, const HeartbeatMsg& m);
  void maybe_report_gap_locked(int from_index, std::uint64_t their_seq)
      PSMR_REQUIRES(mu_);

  void timer_loop();

  Transport& net_;
  const NodeId self_;
  const int index_;
  const std::vector<NodeId> replicas_;
  const Config config_;
  const DeliverFn deliver_;
  GapFn on_gap_ PSMR_GUARDED_BY(mu_);

  // mu_ is held across net_.send (broadcast rank precedes transport rank)
  // and released around the deliver callback.
  mutable RankedMutex<lock_rank::kBroadcast> mu_;
  std::uint64_t view_ PSMR_GUARDED_BY(mu_) = 0;
  // next_seq_: leader's next slot to assign; last_delivered_: highest
  // gap-free delivered slot.
  std::uint64_t next_seq_ PSMR_GUARDED_BY(mu_) = 1;
  std::uint64_t last_delivered_ PSMR_GUARDED_BY(mu_) = 0;
  std::map<std::uint64_t, Slot> log_ PSMR_GUARDED_BY(mu_);
  std::vector<Command> pending_ PSMR_GUARDED_BY(mu_);
  std::uint64_t pending_since_ns_ PSMR_GUARDED_BY(mu_) = 0;
  std::uint64_t last_leader_activity_ns_ PSMR_GUARDED_BY(mu_) = 0;
  std::uint64_t last_heartbeat_sent_ns_ PSMR_GUARDED_BY(mu_) = 0;

  // Single-deliverer guard for try_deliver_locked.
  bool delivering_ PSMR_GUARDED_BY(mu_) = false;

  std::uint64_t last_gap_report_ns_ PSMR_GUARDED_BY(mu_) = 0;

  // View-change state.
  bool view_changing_ PSMR_GUARDED_BY(mu_) = false;
  std::uint64_t target_view_ PSMR_GUARDED_BY(mu_) = 0;
  std::map<int, ViewChangeMsg> view_change_msgs_
      PSMR_GUARDED_BY(mu_);  // by replica index

  const Metrics metrics_;

  std::thread timer_;
  CondVar timer_cv_;
  bool stopping_ PSMR_GUARDED_BY(mu_) = false;
  std::atomic<bool> started_{false};
};

}  // namespace psmr
