// Wire messages of the sequenced atomic broadcast (see
// sequenced_broadcast.h for the protocol) and of the client/replica
// interaction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cos/command.h"
#include "net/message.h"

namespace psmr {

namespace msg {
inline constexpr int kRequest = 1;        // client -> replicas
inline constexpr int kReply = 2;          // replica -> client
inline constexpr int kAccept = 3;         // leader -> replicas
inline constexpr int kAccepted = 4;       // replica -> leader
inline constexpr int kCommit = 5;         // leader -> replicas
inline constexpr int kHeartbeat = 6;      // leader -> replicas
inline constexpr int kViewChange = 7;     // replica -> new leader
inline constexpr int kNewView = 8;        // new leader -> replicas
inline constexpr int kStateRequest = 9;   // lagging replica -> peer
inline constexpr int kStateResponse = 10; // peer -> lagging replica
}  // namespace msg

struct RequestMsg final : Message {
  explicit RequestMsg(std::vector<Command> cmds)
      : Message(msg::kRequest), commands(std::move(cmds)) {}
  std::vector<Command> commands;
};

struct ReplyMsg final : Message {
  ReplyMsg(std::uint64_t seq, std::uint64_t val, bool okay)
      : Message(msg::kReply), client_seq(seq), value(val), ok(okay) {}
  std::uint64_t client_seq;
  std::uint64_t value;
  bool ok;
};

struct AcceptMsg final : Message {
  AcceptMsg(std::uint64_t v, std::uint64_t s, std::vector<Command> b)
      : Message(msg::kAccept), view(v), seq(s), batch(std::move(b)) {}
  std::uint64_t view;
  std::uint64_t seq;
  std::vector<Command> batch;
};

struct AcceptedMsg final : Message {
  AcceptedMsg(std::uint64_t v, std::uint64_t s)
      : Message(msg::kAccepted), view(v), seq(s) {}
  std::uint64_t view;
  std::uint64_t seq;
};

struct CommitMsg final : Message {
  CommitMsg(std::uint64_t v, std::uint64_t s)
      : Message(msg::kCommit), view(v), seq(s) {}
  std::uint64_t view;
  std::uint64_t seq;
};

struct HeartbeatMsg final : Message {
  HeartbeatMsg(std::uint64_t v, std::uint64_t committed)
      : Message(msg::kHeartbeat), view(v), committed_up_to(committed) {}
  std::uint64_t view;
  std::uint64_t committed_up_to;
};

// A replica's knowledge of one log slot, shipped during view changes.
struct LogEntrySummary {
  std::uint64_t seq;
  std::uint64_t view;  // view in which the entry was accepted
  std::vector<Command> batch;
};

struct ViewChangeMsg final : Message {
  ViewChangeMsg(std::uint64_t nv, std::vector<LogEntrySummary> log,
                std::uint64_t delivered)
      : Message(msg::kViewChange),
        new_view(nv),
        accepted_log(std::move(log)),
        last_delivered(delivered) {}
  std::uint64_t new_view;
  std::vector<LogEntrySummary> accepted_log;
  std::uint64_t last_delivered;
};

struct NewViewMsg final : Message {
  NewViewMsg(std::uint64_t v, std::vector<LogEntrySummary> log)
      : Message(msg::kNewView), view(v), log(std::move(log)) {}
  std::uint64_t view;
  std::vector<LogEntrySummary> log;
};

// State transfer: a replica that detects it is lagging beyond the peers'
// log-retention window asks a peer for a checkpoint (see smr/replica.cc).
struct StateRequestMsg final : Message {
  explicit StateRequestMsg(std::uint64_t have)
      : Message(msg::kStateRequest), last_delivered(have) {}
  std::uint64_t last_delivered;
};

struct StateResponseMsg final : Message {
  StateResponseMsg(std::uint64_t seq, std::uint64_t v,
                   std::vector<std::uint8_t> snap)
      : Message(msg::kStateResponse),
        checkpoint_seq(seq),
        view(v),
        snapshot(std::move(snap)) {}
  std::uint64_t checkpoint_seq;  // everything <= this is in the snapshot
  std::uint64_t view;
  std::vector<std::uint8_t> snapshot;  // Service::snapshot() bytes
};

}  // namespace psmr
