// Bounded single-producer/single-consumer lock-free ring buffer.
//
// Utility for single-producer/single-consumer hand-offs (e.g., a socket
// reader feeding a replica scheduler when the simulated network is replaced
// by a real transport). The in-process replica currently uses the blocking
// queue for its delivery path because it also needs close() semantics and
// unbounded control batches.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "common/debug_poison.h"
#include "common/padded.h"

// PSMR_SPSC_CHECKS: 1 = try_push/try_pop verify the single-producer/
// single-consumer contract at runtime (sticky thread identity per role,
// abort on violation), 0 = contract is the caller's problem, zero overhead.
// Defaults on whenever memory debugging is on or the build is a debug build;
// tests can force it per-TU before including this header (the header is
// self-contained, so a forced TU never ODR-clashes with library code).
#if !defined(PSMR_SPSC_CHECKS)
#if PSMR_MEMORY_DEBUG
#define PSMR_SPSC_CHECKS 1
#elif defined(NDEBUG)
#define PSMR_SPSC_CHECKS 0
#else
#define PSMR_SPSC_CHECKS 1
#endif
#endif

namespace psmr {

#if PSMR_SPSC_CHECKS
namespace spsc_detail {
// Thread identity as the address of a thread_local anchor — unique per live
// thread, comparable without <thread> (same scheme as the EBR/hazard
// single-remover checks).
inline std::uintptr_t thread_identity() {
  thread_local char anchor;
  return reinterpret_cast<std::uintptr_t>(&anchor);
}
}  // namespace spsc_detail
#endif

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when full.
  bool try_push(T item) {
    check_role(producer_id_, "producer (try_push)");
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_cache_;
    if (head - tail > mask_) {
      tail_cache_ = tail_.value.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    check_role(consumer_id_, "consumer (try_pop)");
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.value.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T item = std::move(slots_[tail & mask_]);
    tail_.value.store(tail + 1, std::memory_order_release);
    return item;
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Checked builds pin each role (producer / consumer) to the first thread
  // that exercises it and abort if a second thread ever takes that role.
  // A deliberate, externally synchronized ownership hand-off (producer
  // thread retires, a new one takes over) must call this at the hand-off
  // point; it is NOT a license for concurrent access. No-op when checks
  // are compiled out.
  void debug_reset_roles() {
#if PSMR_SPSC_CHECKS
    producer_id_.store(0, std::memory_order_relaxed);
    consumer_id_.store(0, std::memory_order_relaxed);
#endif
  }

  // Approximate; exact only when quiesced.
  std::size_t size() const {
    return head_.value.load(std::memory_order_acquire) -
           tail_.value.load(std::memory_order_acquire);
  }

 private:
#if PSMR_SPSC_CHECKS
  // Sticky role identity: first CAS claims the role for the calling thread,
  // any later call from a different thread is a contract violation.
  void check_role(std::atomic<std::uintptr_t>& claimed, const char* role) {
    const std::uintptr_t tid = spsc_detail::thread_identity();
    std::uintptr_t expected = 0;
    if (!claimed.compare_exchange_strong(expected, tid,
                                         std::memory_order_relaxed) &&
        expected != tid) {
      std::fprintf(stderr,
                   "SpscRing: single-%s contract violated — second thread "
                   "in role (first=%#zx this=%#zx)\n",
                   role, static_cast<std::size_t>(expected),
                   static_cast<std::size_t>(tid));
      std::abort();
    }
  }
  std::atomic<std::uintptr_t> producer_id_{0};
  std::atomic<std::uintptr_t> consumer_id_{0};
#else
  void check_role(int /*unused*/, const char* /*unused*/) {}
  // Placeholders so the call sites compile identically in both modes.
  static constexpr int producer_id_ = 0;
  static constexpr int consumer_id_ = 0;
#endif

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  Padded<std::atomic<std::size_t>> head_{};  // producer writes
  Padded<std::atomic<std::size_t>> tail_{};  // consumer writes
  // Producer-local / consumer-local cached views of the opposite index.
  alignas(kCacheLineSize) std::size_t tail_cache_ = 0;
  alignas(kCacheLineSize) std::size_t head_cache_ = 0;
};

}  // namespace psmr
