// Bounded single-producer/single-consumer lock-free ring buffer.
//
// Utility for single-producer/single-consumer hand-offs (e.g., a socket
// reader feeding a replica scheduler when the simulated network is replaced
// by a real transport). The in-process replica currently uses the blocking
// queue for its delivery path because it also needs close() semantics and
// unbounded control batches.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/padded.h"

namespace psmr {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when full.
  bool try_push(T item) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_cache_;
    if (head - tail > mask_) {
      tail_cache_ = tail_.value.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.value.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T item = std::move(slots_[tail & mask_]);
    tail_.value.store(tail + 1, std::memory_order_release);
    return item;
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Approximate; exact only when quiesced.
  std::size_t size() const {
    return head_.value.load(std::memory_order_acquire) -
           tail_.value.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  Padded<std::atomic<std::size_t>> head_{};  // producer writes
  Padded<std::atomic<std::size_t>> tail_{};  // consumer writes
  // Producer-local / consumer-local cached views of the opposite index.
  alignas(kCacheLineSize) std::size_t tail_cache_ = 0;
  alignas(kCacheLineSize) std::size_t head_cache_ = 0;
};

}  // namespace psmr
