// Deterministic, fast PRNG (xoshiro256**) with splitmix64 seeding.
//
// Every randomized component in the repository (workload generators, network
// latency jitter, the discrete-event simulator) takes an explicit seed so
// experiments are reproducible run-to-run.
#pragma once

#include <cstdint>

namespace psmr {

// splitmix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Unbiased enough for workload generation
  // (Lemire's multiply-shift reduction).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace psmr
