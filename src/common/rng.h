// Deterministic, fast PRNG (xoshiro256**) with splitmix64 seeding.
//
// Every randomized component in the repository (workload generators, network
// latency jitter, the discrete-event simulator) takes an explicit seed so
// experiments are reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>

namespace psmr {

// splitmix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Unbiased enough for workload generation
  // (Lemire's multiply-shift reduction).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// Zipf-distributed integers in [0, n) with skew theta in [0, 1) — the
// classic Gray et al. zipfian generator (as popularized by YCSB). theta = 0
// degenerates to uniform; theta -> 1 concentrates mass on few hot keys.
// Construction is O(n) (harmonic sum); draws are O(1). Item 0 is the
// hottest key; callers wanting scattered hot keys should hash the result.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (theta_ <= 0.0) return;  // uniform mode
    for (std::uint64_t i = 0; i < n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    }
    const double zeta2 = 1.0 + std::pow(0.5, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t operator()(Xoshiro256& rng) {
    if (theta_ <= 0.0) return rng.below(n_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto pick = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return pick < n_ ? pick : n_ - 1;
  }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace psmr
