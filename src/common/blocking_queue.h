// Unbounded MPMC blocking queue with close() semantics.
//
// Used as the inbox of simulated-network endpoints and as the hand-off
// between the atomic-broadcast delivery path and the replica scheduler.
//
// Locking: transports push() while holding their own mutex, so mu_ ranks
// below the transport layer and above the COS locks the scheduler takes
// after popping (DESIGN.md "Lock hierarchy").
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

namespace psmr {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (the item is dropped).
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    pop_wakeup_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) pop_wakeup_.wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Closing wakes all blocked consumers; items already queued can still be
  // popped ("close and drain").
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    pop_wakeup_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable RankedMutex<lock_rank::kQueue> mu_;
  CondVar pop_wakeup_;
  std::deque<T> items_ PSMR_GUARDED_BY(mu_);
  bool closed_ PSMR_GUARDED_BY(mu_) = false;
};

}  // namespace psmr
