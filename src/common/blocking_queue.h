// Unbounded MPMC blocking queue with close() semantics.
//
// Used as the inbox of simulated-network endpoints and as the hand-off
// between the atomic-broadcast delivery path and the replica scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace psmr {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (the item is dropped).
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.pop_wakeup.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.pop_wakeup.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Closing wakes all blocked consumers; items already queued can still be
  // popped ("close and drain").
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.pop_wakeup.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  struct {
    std::condition_variable pop_wakeup;
  } cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace psmr
