// Unified low-overhead metrics layer: a process-wide registry of named
// counters, gauges and histograms, snapshotted on read.
//
// The paper's evaluation (§7) is metric-driven — throughput per worker,
// ready-set occupancy, scheduler stall time — so every layer of this stack
// (COS variants, replica scheduler/workers, sequenced broadcast, both
// transports, the client) exports its hot-path counts here instead of
// growing ad-hoc accessors. Consumers are tools/psmr_node.cc
// (--metrics-dump-ms periodic JSON / Prometheus dump) and bench/bench_util.h
// (a "metrics" object appended to benchmark JSON).
//
// Overhead budget (Release, metrics ON):
//   - Counter::inc() is one thread-local read plus one relaxed fetch_add on
//     a cache-line-padded shard — no locks, no shared-line ping-pong among
//     the fixed worker pool.
//   - Gauge updates are single relaxed atomic ops.
//   - HistogramMetric::record() takes a private mutex and is therefore kept
//     OFF per-message hot paths: only per-batch / per-block events use it.
//   - Registration (MetricsRegistry::counter(name) etc.) takes the registry
//     mutex; call sites register once at construction and cache the
//     reference.
//
// PSMR_METRICS=OFF (CMake option -> PSMR_METRICS_ENABLED=0) compiles every
// metric type down to an empty no-op — enforced by static_asserts below —
// so the ±20% bench gate on BENCH_cos.json can be re-validated against a
// metrics-free build at any time.
//
// The registry mutex is a plain std::mutex, invisible to the lock-rank
// checker by design: it is a leaf (nothing is acquired while it is held)
// and registration may happen under any component lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/padded.h"

#ifndef PSMR_METRICS_ENABLED
#define PSMR_METRICS_ENABLED 1
#endif

namespace psmr {

inline constexpr bool kMetricsEnabled = PSMR_METRICS_ENABLED != 0;

// Point-in-time copy of every registered metric. Concurrent increments make
// the snapshot approximate (each counter is summed shard by shard), but a
// quiescent registry snapshots exactly.
struct MetricsSnapshot {
  struct HistStats {
    std::uint64_t count = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistStats> histograms;

  // 0 when the name is not present (e.g. metrics compiled out).
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Single-line JSON object: {"cos.inserts":123,...}; histograms become
  // nested objects with count/mean/p50/p99/max.
  std::string to_json() const;
  // Prometheus text exposition format; names are prefixed "psmr_" with
  // dots mapped to underscores.
  std::string to_prometheus() const;
};

#if PSMR_METRICS_ENABLED

// Monotonic counter, sharded to keep concurrent writers off each other's
// cache lines. Threads are spread over the shards round-robin by a
// thread-local index assigned on first use.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void inc(std::uint64_t delta = 1) {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static std::size_t shard_index() {
    thread_local const std::size_t index =
        next_thread_.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }

  static inline std::atomic<std::size_t> next_thread_{0};
  std::array<Padded<std::atomic<std::uint64_t>>, kShards> shards_{};
};

// Instantaneous value (queue depth, pipeline occupancy). Writers are few,
// so a single relaxed atomic suffices.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Mutex-guarded wrapper over the log-bucketed Histogram. record() is NOT
// for per-message hot paths — per-batch and per-block-event only.
class HistogramMetric {
 public:
  void record(std::uint64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.record(v);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;  // NOLINT(psmr-raw-mutex) leaf lock below the rank hierarchy; metrics are callable under any lock
  Histogram hist_;  // NOLINT(psmr-guarded-by-coverage) all access through record(), under mu_
};

// Name -> metric registry. Metrics are created on first lookup and live for
// the process lifetime (references stay valid forever), Prometheus-default-
// registry style: components constructed multiple times in one process
// (tests, the Deployment harness) share and accumulate into the same
// metrics.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;  // NOLINT(psmr-raw-mutex) leaf lock below the rank hierarchy; metrics are callable under any lock
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;  // NOLINT(psmr-guarded-by-coverage) guarded by mu_; node stability lets callers hold refs lock-free
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;  // NOLINT(psmr-guarded-by-coverage) guarded by mu_; node stability lets callers hold refs lock-free
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;  // NOLINT(psmr-guarded-by-coverage) guarded by mu_; node stability lets callers hold refs lock-free
};

#else  // !PSMR_METRICS_ENABLED — every call compiles to nothing.

class Counter {
 public:
  void inc(std::uint64_t /*delta*/ = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  void sub(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

class HistogramMetric {
 public:
  void record(std::uint64_t) {}
  Histogram snapshot() const { return {}; }
};

// The OFF build must carry no per-metric state at all.
static_assert(sizeof(Counter) == 1, "metrics-OFF Counter must be empty");
static_assert(sizeof(Gauge) == 1, "metrics-OFF Gauge must be empty");
static_assert(sizeof(HistogramMetric) == 1,
              "metrics-OFF HistogramMetric must be empty");

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  HistogramMetric& histogram(std::string_view) { return histogram_; }

  MetricsSnapshot snapshot() const { return {}; }

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric histogram_;
};

#endif  // PSMR_METRICS_ENABLED

}  // namespace psmr
