// Log-bucketed latency histogram and throughput accounting.
//
// HdrHistogram-style: values are bucketed with ~1.5% relative precision,
// which is plenty for the latency-vs-throughput curves of Fig. 6 while
// keeping record() allocation-free and O(1).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>

namespace psmr {

class Histogram {
 public:
  // Covers [0, 2^40) nanoseconds (~18 minutes) with 64 sub-buckets per
  // power of two.
  static constexpr int kSubBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp) * kSubBuckets;

  void record(std::uint64_t value_ns) {
    counts_[index_of(value_ns)]++;
    total_count_++;
    total_sum_ += value_ns;
    max_ = std::max(max_, value_ns);
    min_ = std::min(min_, value_ns);
  }

  // Merges another histogram into this one (used to aggregate per-thread
  // recorders without sharing cache lines during measurement).
  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
    total_count_ += other.total_count_;
    total_sum_ += other.total_sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
  }

  std::uint64_t count() const { return total_count_; }
  std::uint64_t max() const { return total_count_ ? max_ : 0; }
  std::uint64_t min() const { return total_count_ ? min_ : 0; }

  double mean() const {
    return total_count_ ? static_cast<double>(total_sum_) /
                              static_cast<double>(total_count_)
                        : 0.0;
  }

  // p in [0, 100]. Returns a representative value (upper bound of bucket).
  std::uint64_t percentile(double p) const {
    if (total_count_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total_count_) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i];
      if (seen >= target) return upper_bound_of(i);
    }
    return max_;
  }

  void reset() {
    counts_.fill(0);
    total_count_ = 0;
    total_sum_ = 0;
    max_ = 0;
    min_ = ~0ull;
  }

 private:
  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int exp = 63 - std::countl_zero(v);  // exp >= kSubBits
    const int shift = exp - kSubBits;
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
    std::size_t bucket = static_cast<std::size_t>(exp - kSubBits + 1);
    if (bucket >= kMaxExp) bucket = kMaxExp - 1;
    return bucket * kSubBuckets + sub;
  }

  static std::uint64_t upper_bound_of(std::size_t index) {
    const std::size_t bucket = index / kSubBuckets;
    const std::uint64_t sub = index % kSubBuckets;
    if (bucket == 0) return sub;
    const int shift = static_cast<int>(bucket) - 1;
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_count_ = 0;
  std::uint64_t total_sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ull;
};

}  // namespace psmr
