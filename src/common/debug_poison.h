// Debug poisoning of reclaimed memory.
//
// Deferred-reclamation bugs (a traversal dereferencing a node after its
// grace period was mis-computed) are silent in a normal build: the freed
// memory usually still holds the old bytes. PSMR_MEMORY_DEBUG makes them
// loud — retired objects are destroyed, filled with a 0xDEAD byte pattern,
// and only then returned to the allocator, so a stale reader sees garbage
// immediately (and ASan additionally traps the use-after-free itself).
//
// PSMR_MEMORY_DEBUG defaults to on in debug builds (!NDEBUG); the build
// system forces it on for sanitizer configurations (see PSMR_ASAN in the
// top-level CMakeLists.txt).
#pragma once

#include <cstddef>

#ifndef PSMR_MEMORY_DEBUG
#ifdef NDEBUG
#define PSMR_MEMORY_DEBUG 0
#else
#define PSMR_MEMORY_DEBUG 1
#endif
#endif

namespace psmr {

// Fills [p, p+n) with the alternating pattern 0xDE 0xAD 0xDE 0xAD ...
inline void poison_memory(void* p, std::size_t n) {
  auto* bytes = static_cast<unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = (i & 1) == 0 ? 0xDEu : 0xADu;
  }
}

}  // namespace psmr
