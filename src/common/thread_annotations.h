// Clang Thread Safety Analysis annotation macros.
//
// Wraps the clang `capability` attribute family (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so annotated code
// builds on any compiler: under clang the attributes feed
// -Wthread-safety (the CI clang job promotes it to -Werror=thread-safety);
// under GCC they expand to nothing. The names mirror the upstream
// documentation (and Abseil), prefixed PSMR_ to avoid collisions.
//
// Which invariants are checked statically vs. at runtime vs. by sanitizers
// is catalogued in DESIGN.md ("Lock hierarchy and concurrency enforcement").
#pragma once

#if defined(__clang__)
#define PSMR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PSMR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on GCC and others
#endif

// Class attributes.
#define PSMR_CAPABILITY(x) PSMR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define PSMR_SCOPED_CAPABILITY PSMR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data-member attributes.
#define PSMR_GUARDED_BY(x) PSMR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#define PSMR_PT_GUARDED_BY(x) PSMR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#define PSMR_ACQUIRED_BEFORE(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define PSMR_ACQUIRED_AFTER(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// Function attributes.
#define PSMR_REQUIRES(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define PSMR_REQUIRES_SHARED(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#define PSMR_ACQUIRE(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define PSMR_ACQUIRE_SHARED(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define PSMR_RELEASE(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define PSMR_RELEASE_SHARED(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define PSMR_RELEASE_GENERIC(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
#define PSMR_TRY_ACQUIRE(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define PSMR_EXCLUDES(...) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define PSMR_ASSERT_CAPABILITY(x) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define PSMR_RETURN_CAPABILITY(x) \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#define PSMR_NO_THREAD_SAFETY_ANALYSIS \
  PSMR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
