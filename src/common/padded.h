// Cache-line padding helpers.
//
// Per-worker counters and the lock-free node state live on hot paths; false
// sharing between them would distort exactly the contention effects the
// benchmarks measure, so anything indexed per-thread is padded.
#pragma once

#include <cstddef>
#include <new>

namespace psmr {

// 64 bytes on every mainstream x86/ARM server part; fixed rather than
// std::hardware_destructive_interference_size so the ABI does not shift
// with compiler flags.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace psmr
