// Rank-checked mutex wrappers enforcing the repo-wide lock hierarchy.
//
// Every mutex in the codebase carries a compile-time *rank*; a thread may
// only acquire a mutex whose rank is strictly greater than the highest rank
// it already holds (equal ranks are allowed only for mutex families that
// opt into hand-over-hand coupling, where list/segment order is the
// intra-rank tiebreak and is validated by TSan's lock-order graph instead).
// A violation means the acquisition could participate in a deadlock cycle,
// and the checked build aborts immediately with both ranks printed — no
// waiting for the four-way timing coincidence an actual deadlock needs.
//
// Three layers, all in this header:
//   - lock_rank::   rank constants (the documented hierarchy, DESIGN.md)
//                   and the thread-local held-rank bookkeeping.
//   - CheckedRankedMutex / PlainRankedMutex
//                   std::mutex wrappers with identical APIs; the checked
//                   one validates every acquire/release against the
//                   thread's held set. `RankedMutex` aliases the checked
//                   wrapper when PSMR_LOCK_RANK_CHECKS is on (default:
//                   non-Release builds) and the plain one otherwise, so
//                   Release binaries pay nothing.
//   - MutexLock / CondVar
//                   scoped lock and condition variable that work with the
//                   wrappers AND carry Clang Thread Safety annotations
//                   (thread_annotations.h). libstdc++'s std::unique_lock /
//                   std::condition_variable are opaque to TSA, so code
//                   that wants static checking uses these instead. CondVar
//                   waits release/reacquire *through* the wrapper, keeping
//                   the rank bookkeeping (and TSA's lock sets) exact
//                   across the wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/thread_annotations.h"

// PSMR_LOCK_RANK_CHECKS: 1 = RankedMutex checks ranks at runtime, 0 =
// RankedMutex is a plain std::mutex wrapper. CMake sets it from the
// PSMR_RANK_CHECKS option (AUTO: on except in Release); standalone
// inclusion defaults from NDEBUG.
#if !defined(PSMR_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define PSMR_LOCK_RANK_CHECKS 0
#else
#define PSMR_LOCK_RANK_CHECKS 1
#endif
#endif

namespace psmr {
namespace lock_rank {

// The hierarchy, outermost (acquired first) to innermost. Gaps leave room
// for future layers without renumbering. Rationale for each ordering edge
// is in DESIGN.md "Lock hierarchy and concurrency enforcement".
inline constexpr int kSmrClient = 100;       // SmrClient::mu_
inline constexpr int kReplicaClients = 120;  // Replica::clients_mu_
inline constexpr int kBroadcast = 200;       // SequencedBroadcast::mu_
inline constexpr int kTransport = 300;       // TcpTransport/SimNetwork mu_
inline constexpr int kQueue = 400;           // BlockingQueue::mu_
inline constexpr int kCosMonitor = 500;      // CoarseGrainedCos::mu_
inline constexpr int kCosSegment = 520;      // StripedCos segment locks
inline constexpr int kCosShard = 530;        // ParallelInsertCos shard locks
inline constexpr int kCosIndex = 540;        // FineGrainedCos::index_mu_
inline constexpr int kCosNode = 560;         // FineGrainedCos node locks
inline constexpr int kSemaphore = 700;       // Semaphore::mu_ (COS blocking)
inline constexpr int kReclaim = 800;         // EBR / hazard limbo lists

// Per-thread multiset of held ranks. Sized for the deepest legal chain
// (client -> broadcast -> transport -> queue is four; hand-over-hand holds
// two same-rank locks); kMaxDistinct is a hard cap, overflow aborts.
struct HeldRanks {
  static constexpr int kMaxDistinct = 16;
  int rank[kMaxDistinct];
  int count[kMaxDistinct];
  int distinct = 0;
};

inline thread_local HeldRanks t_held;

inline int max_held_rank() {
  int max = -1;
  for (int i = 0; i < t_held.distinct; ++i) {
    if (t_held.rank[i] > max) max = t_held.rank[i];
  }
  return max;
}

[[noreturn]] inline void die(const char* what, int acquiring, int held) {
  std::fprintf(stderr,
               "psmr lock-rank violation: %s (acquiring rank %d, highest "
               "held rank %d)\n",
               what, acquiring, held);
  std::fflush(stderr);
  std::abort();
}

// Validates an acquisition *before* blocking on the mutex, so a hierarchy
// violation aborts even when the buggy interleaving would have deadlocked.
inline void check_acquire(int rank, bool allow_same_rank) {
  const int held = max_held_rank();
  if (held > rank) {
    die("rank must exceed every held rank", rank, held);
  }
  if (held == rank && !allow_same_rank) {
    die("same-rank nesting is reserved for coupled (hand-over-hand) locks",
        rank, held);
  }
}

inline void record_acquire(int rank) {
  for (int i = 0; i < t_held.distinct; ++i) {
    if (t_held.rank[i] == rank) {
      ++t_held.count[i];
      return;
    }
  }
  if (t_held.distinct == HeldRanks::kMaxDistinct) {
    die("held-rank table overflow (raise HeldRanks::kMaxDistinct)", rank,
        max_held_rank());
  }
  t_held.rank[t_held.distinct] = rank;
  t_held.count[t_held.distinct] = 1;
  ++t_held.distinct;
}

// Releases may happen in any order (unique_lock::swap during coupling
// releases the *earlier* lock first), so this is multiset removal, not a
// stack pop.
inline void record_release(int rank) {
  for (int i = 0; i < t_held.distinct; ++i) {
    if (t_held.rank[i] != rank) continue;
    if (--t_held.count[i] == 0) {
      --t_held.distinct;
      t_held.rank[i] = t_held.rank[t_held.distinct];
      t_held.count[i] = t_held.count[t_held.distinct];
    }
    return;
  }
  die("releasing a rank this thread does not hold", rank, max_held_rank());
}

}  // namespace lock_rank

// Always-checking wrapper. Tests instantiate this directly so the death
// tests exercise real checking logic in every build type; production code
// goes through the RankedMutex alias below.
template <int Rank, bool AllowSameRank = false>
class PSMR_CAPABILITY("mutex") CheckedRankedMutex {
 public:
  static constexpr int kRank = Rank;

  CheckedRankedMutex() = default;
  CheckedRankedMutex(const CheckedRankedMutex&) = delete;
  CheckedRankedMutex& operator=(const CheckedRankedMutex&) = delete;

  void lock() PSMR_ACQUIRE() {
    lock_rank::check_acquire(Rank, AllowSameRank);
    mu_.lock();
    lock_rank::record_acquire(Rank);
  }

  bool try_lock() PSMR_TRY_ACQUIRE(true) {
    lock_rank::check_acquire(Rank, AllowSameRank);
    if (!mu_.try_lock()) return false;
    lock_rank::record_acquire(Rank);
    return true;
  }

  void unlock() PSMR_RELEASE() {
    mu_.unlock();
    lock_rank::record_release(Rank);
  }

  // The wrapped mutex, for CondVar's native-wait path. Callers must hold
  // the lock (they pass the wrapper itself to CondVar::wait).
  std::mutex& underlying() { return mu_; }

 private:
  std::mutex mu_;
};

// Zero-overhead twin: same API and TSA annotations, no rank bookkeeping.
template <int Rank, bool AllowSameRank = false>
class PSMR_CAPABILITY("mutex") PlainRankedMutex {
 public:
  static constexpr int kRank = Rank;

  PlainRankedMutex() = default;
  PlainRankedMutex(const PlainRankedMutex&) = delete;
  PlainRankedMutex& operator=(const PlainRankedMutex&) = delete;

  void lock() PSMR_ACQUIRE() { mu_.lock(); }
  bool try_lock() PSMR_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() PSMR_RELEASE() { mu_.unlock(); }
  std::mutex& underlying() { return mu_; }

 private:
  std::mutex mu_;
};

static_assert(sizeof(PlainRankedMutex<0>) == sizeof(std::mutex),
              "the unchecked wrapper must be layout-identical to std::mutex");

#if PSMR_LOCK_RANK_CHECKS
template <int Rank, bool AllowSameRank = false>
using RankedMutex = CheckedRankedMutex<Rank, AllowSameRank>;
#else
template <int Rank, bool AllowSameRank = false>
using RankedMutex = PlainRankedMutex<Rank, AllowSameRank>;
#endif

// Scoped lock over any of the wrappers (or std::mutex), visible to TSA.
// Mid-scope unlock()/lock() is allowed — the destructor only releases when
// the lock is held, and TSA tracks the state through the annotations.
template <typename MutexT>
class PSMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(MutexT& mu) PSMR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }

  ~MutexLock() PSMR_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() PSMR_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  void unlock() PSMR_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  MutexT& mu_;
  bool held_;
};

// Condition variable for rank-checked mutexes. Predicate waits are
// deliberately not offered: callers write explicit
// `while (!pred) cv.wait(mu);` loops, which TSA can see through (it cannot
// analyze predicate lambdas).
//
// Checked builds: condition_variable_any over a facade that forwards to
// the wrapper's lock()/unlock(), so the wait updates rank bookkeeping
// exactly like a hand-written release/reacquire would.
//
// Unchecked builds: the native std::condition_variable over the wrapper's
// underlying std::mutex — condition_variable_any carries an extra internal
// mutex on every wait/notify, which is measurable on the monitor hot paths
// (coarse-grained COS get(), semaphore, blocking queue), and the Release
// contract is zero overhead versus unwrapped code.
#if PSMR_LOCK_RANK_CHECKS
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename MutexT>
  void wait(MutexT& mu) PSMR_REQUIRES(mu) {
    LockFacade<MutexT> facade{mu};
    cv_.wait(facade);
  }

  template <typename MutexT, typename Rep, typename Period>
  std::cv_status wait_for(MutexT& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      PSMR_REQUIRES(mu) {
    LockFacade<MutexT> facade{mu};
    return cv_.wait_for(facade, dur);
  }

  template <typename MutexT, typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexT& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PSMR_REQUIRES(mu) {
    LockFacade<MutexT> facade{mu};
    return cv_.wait_until(facade, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // BasicLockable facade handed to condition_variable_any. The unlock/lock
  // pair happens inside cv_.wait, invisible to TSA; the enclosing wait()
  // holds the capability on entry and exit, which is what REQUIRES states.
  template <typename MutexT>
  struct LockFacade {
    MutexT& mu;
    void lock() PSMR_NO_THREAD_SAFETY_ANALYSIS { mu.lock(); }
    void unlock() PSMR_NO_THREAD_SAFETY_ANALYSIS { mu.unlock(); }
  };

  std::condition_variable_any cv_;
};
#else
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Each wait adopts the caller-held lock for the duration of the native
  // wait and releases ownership back on return, so the caller's scoped
  // lock still unlocks exactly once.
  template <typename MutexT>
  void wait(MutexT& mu) PSMR_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.underlying(), std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  template <typename MutexT, typename Rep, typename Period>
  std::cv_status wait_for(MutexT& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      PSMR_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.underlying(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, dur);
    adopted.release();
    return status;
  }

  template <typename MutexT, typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexT& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PSMR_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.underlying(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};
#endif  // PSMR_LOCK_RANK_CHECKS

}  // namespace psmr
