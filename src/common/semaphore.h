// Counting semaphore with close() semantics.
//
// The paper's blocking layer (Alg. 5) uses two counting semaphores, `space`
// and `ready`, to park the scheduler when the dependency graph is full and to
// park worker threads when no command is ready. A plain counting semaphore
// has no way to wake parked threads at shutdown, so this one adds close():
// after close(), every pending and future acquire() returns false instead of
// blocking, which lets COS implementations drain their worker pools cleanly.
//
// Locking: mu_ is a leaf in the COS layer — release() is called from deep
// inside the variants' remove/insert paths, so its rank sits below every
// graph lock (DESIGN.md "Lock hierarchy").
#pragma once

#include <cstddef>

#include "common/metrics.h"
#include "common/ranked_mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace psmr {

class Semaphore {
 public:
  explicit Semaphore(std::ptrdiff_t initial = 0) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Optional block accounting: when set, each acquire() that actually parks
  // bumps `blocks` once and adds the time parked to `blocked_ns`. Must be
  // called before the semaphore is shared between threads (COS variants do
  // it in their constructors); the fast non-blocking path stays untouched.
  void instrument(Counter* blocks, Counter* blocked_ns) {
    blocks_metric_ = blocks;
    blocked_ns_metric_ = blocked_ns;
  }

  // Blocks until a permit is available or the semaphore is closed.
  // Returns true if a permit was consumed, false if closed (close is
  // immediate: remaining permits are not drained).
  bool acquire() {
    MutexLock lock(mu_);
    if constexpr (kMetricsEnabled) {
      if (count_ <= 0 && !closed_ && blocks_metric_ != nullptr) {
        blocks_metric_->inc();
        const std::uint64_t t0 = now_ns();
        while (count_ <= 0 && !closed_) cv_.wait(mu_);
        blocked_ns_metric_->inc(now_ns() - t0);
      }
    }
    while (count_ <= 0 && !closed_) cv_.wait(mu_);
    if (closed_) return false;
    --count_;
    return true;
  }

  // Non-blocking acquire. Returns true iff a permit was consumed.
  bool try_acquire() {
    MutexLock lock(mu_);
    if (count_ > 0 && !closed_) {
      --count_;
      return true;
    }
    return false;
  }

  void release(std::ptrdiff_t n = 1) {
    if (n <= 0) return;
    {
      MutexLock lock(mu_);
      count_ += n;
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  // Wakes all waiters; subsequent acquire() calls return false once the
  // permit count reaches zero. Idempotent.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::ptrdiff_t available() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable RankedMutex<lock_rank::kSemaphore> mu_;
  CondVar cv_;
  std::ptrdiff_t count_ PSMR_GUARDED_BY(mu_);
  bool closed_ PSMR_GUARDED_BY(mu_) = false;
  // Set once before sharing (see instrument()); read under mu_.
  Counter* blocks_metric_ = nullptr;  // NOLINT(psmr-guarded-by-coverage) set once via instrument() before sharing
  Counter* blocked_ns_metric_ = nullptr;  // NOLINT(psmr-guarded-by-coverage) set once via instrument() before sharing
};

}  // namespace psmr
