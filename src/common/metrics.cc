#include "common/metrics.h"

#include <cstdio>

namespace psmr {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  // Metric names are [a-z0-9._] by convention, but stay safe anyway.
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "psmr_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (const auto& [name, value] : counters) {
    sep();
    out.push_back('"');
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  for (const auto& [name, value] : gauges) {
    sep();
    out.push_back('"');
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  for (const auto& [name, h] : histograms) {
    sep();
    out.push_back('"');
    append_json_escaped(out, name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"mean\":";
    out += format_double(h.mean);
    out += ",\"p50\":";
    out += std::to_string(h.p50);
    out += ",\"p99\":";
    out += std::to_string(h.p99);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += "}";
  }
  out.push_back('}');
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
    out += prom + "_mean " + format_double(h.mean) + "\n";
    out += prom + "{quantile=\"0.5\"} " + std::to_string(h.p50) + "\n";
    out += prom + "{quantile=\"0.99\"} " + std::to_string(h.p99) + "\n";
    out += prom + "_max " + std::to_string(h.max) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: metric references handed out to components must stay
  // valid through static destruction order.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

#if PSMR_METRICS_ENABLED

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    const Histogram h = hist->snapshot();
    MetricsSnapshot::HistStats stats;
    stats.count = h.count();
    if (stats.count > 0) {
      stats.mean = h.mean();
      stats.p50 = h.percentile(50.0);
      stats.p99 = h.percentile(99.0);
      stats.max = h.max();
    }
    snap.histograms[name] = stats;
  }
  return snap;
}

#endif  // PSMR_METRICS_ENABLED

}  // namespace psmr
