#include "workload/smr_driver.h"

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "smr/deployment.h"

namespace psmr {

SmrDriverResult run_smr_benchmark(const SmrDriverConfig& config) {
  const std::size_t list_size = exec_cost_list_size(config.cost);

  Deployment::Config deployment_config;
  deployment_config.replicas = config.replicas;
  deployment_config.net.base_latency_us = config.net_latency_us;
  deployment_config.net.jitter_us = config.net_jitter_us;
  deployment_config.net.seed = config.seed;
  deployment_config.replica.policy = config.policy;
  deployment_config.replica.cos = config.cos;
  deployment_config.replica.workers = config.workers;
  deployment_config.replica.broadcast.batch_max = config.batch_max;
  deployment_config.replica.broadcast.batch_timeout_us =
      config.batch_timeout_us;
  deployment_config.replica.broadcast.tick_interval_ms = 1;

  Deployment deployment(deployment_config, [&] {
    return std::make_unique<LinkedListService>(list_size);
  });

  std::vector<std::unique_ptr<Xoshiro256>> rngs;
  for (int c = 0; c < config.clients; ++c) {
    auto rng = std::make_unique<Xoshiro256>(config.seed * 1000 +
                                            static_cast<unsigned>(c));
    Xoshiro256* r = rng.get();
    rngs.push_back(std::move(rng));
    SmrClient::Config client_config;
    client_config.pipeline = config.pipeline;
    deployment.add_client(client_config, [r, list_size,
                                          write_pct = config.write_pct] {
      const std::uint64_t v = r->below(list_size);
      return r->uniform() * 100.0 < write_pct
                 ? LinkedListService::make_add(v)
                 : LinkedListService::make_contains(v);
    });
  }

  deployment.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
  const std::uint64_t before = deployment.total_client_completed();
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(config.measure_ms));
  const std::uint64_t elapsed_ns = watch.elapsed_ns();
  const std::uint64_t after = deployment.total_client_completed();

  // Latency over the whole run (dominated by the measurement window).
  Histogram latency;
  for (SmrClient* client : deployment.clients()) {
    latency.merge(client->latency_snapshot());
  }

  for (SmrClient* client : deployment.clients()) client->drain(2000);
  // Allow stragglers to finish executing before the convergence check.
  bool converged = false;
  for (int t = 0; t < 400; ++t) {
    if (deployment.states_converged()) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  deployment.stop();

  SmrDriverResult result;
  result.completed = after - before;
  result.throughput_kops = static_cast<double>(result.completed) /
                           (static_cast<double>(elapsed_ns) * 1e-9) / 1000.0;
  result.mean_latency_ms = latency.mean() * 1e-6;
  result.p95_latency_ms = static_cast<double>(latency.percentile(95)) * 1e-6;
  result.converged = converged;
  return result;
}

}  // namespace psmr
