// Workload generation (paper §7.2).
//
// Reads and writes are mixed at a configured percentage, keys/values are
// uniform over the service's key space, and everything is driven by an
// explicit seed so runs are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "cos/command.h"

namespace psmr {

class KvService;

// Linked-list workload: `write_pct` percent add(i), rest contains(i), with i
// uniform in [0, key_space). key_space should equal the initial list size so
// operations land on random positions of the list, as in the paper.
std::vector<Command> make_list_workload(std::size_t count, double write_pct,
                                        std::uint64_t key_space,
                                        std::uint64_t seed);

// KV workload: `write_pct` percent put, rest get, uniform keys.
std::vector<Command> make_kv_workload(const KvService& service,
                                      std::size_t count, double write_pct,
                                      std::uint64_t key_space,
                                      std::uint64_t seed);

// Skewed KV workload: keys drawn Zipf(theta) over [0, key_space), then
// scattered by a mix so hot keys don't cluster in one shard. theta = 0 is
// uniform; theta = 0.99 is the YCSB-style heavy skew. Used by the
// ablation_index bench to sweep key-space contention.
std::vector<Command> make_kv_workload_zipf(const KvService& service,
                                           std::size_t count, double write_pct,
                                           std::uint64_t key_space,
                                           double theta, std::uint64_t seed);

// Bank workload: `write_pct` percent transfers between two distinct uniform
// accounts, rest balance queries.
std::vector<Command> make_bank_workload(std::size_t count, double write_pct,
                                        std::uint64_t accounts,
                                        std::uint64_t seed);

}  // namespace psmr
