// SMR benchmark driver — the paper's §7.4 harness.
//
// Deploys 3 replicas + closed-loop clients over the simulated network, runs
// the linked-list workload for a warmup + measurement window, and reports
// server-side throughput (completed client commands) and client-side
// latency, as in the paper's Figs. 4-6.
#pragma once

#include <cstdint>

#include "app/linked_list_service.h"
#include "cos/factory.h"

namespace psmr {

struct SmrDriverConfig {
  // Scheduler policy for every replica (cos-dag / early / sequential).
  SchedulerPolicy policy = SchedulerPolicy::kCosDag;
  // COS knobs (kind, capacity, indexed, ...); conflict is taken from the
  // service.
  CosOptions cos;
  int workers = 4;
  ExecCost cost = ExecCost::kLight;
  double write_pct = 0.0;
  int replicas = 3;
  int clients = 16;
  int pipeline = 4;
  std::uint64_t warmup_ms = 300;
  std::uint64_t measure_ms = 700;
  std::uint64_t seed = 42;
  // Network / ordering knobs (defaults approximate a fast LAN).
  std::uint64_t net_latency_us = 30;
  std::uint64_t net_jitter_us = 20;
  std::size_t batch_max = 64;
  std::uint64_t batch_timeout_us = 200;
};

struct SmrDriverResult {
  double throughput_kops = 0.0;  // client commands completed per second /1e3
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  std::uint64_t completed = 0;
  bool converged = false;  // replicas ended in identical states
};

SmrDriverResult run_smr_benchmark(const SmrDriverConfig& config);

}  // namespace psmr
