#include "workload/generator.h"

#include "app/bank_service.h"
#include "app/kv_service.h"
#include "app/linked_list_service.h"
#include "common/rng.h"

namespace psmr {

std::vector<Command> make_list_workload(std::size_t count, double write_pct,
                                        std::uint64_t key_space,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Command> commands;
  commands.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t value = rng.below(key_space);
    if (rng.uniform() * 100.0 < write_pct) {
      commands.push_back(LinkedListService::make_add(value));
    } else {
      commands.push_back(LinkedListService::make_contains(value));
    }
  }
  return commands;
}

std::vector<Command> make_kv_workload(const KvService& service,
                                      std::size_t count, double write_pct,
                                      std::uint64_t key_space,
                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Command> commands;
  commands.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t key = rng.below(key_space);
    if (rng.uniform() * 100.0 < write_pct) {
      commands.push_back(service.make_put(key, rng()));
    } else {
      commands.push_back(service.make_get(key));
    }
  }
  return commands;
}

std::vector<Command> make_kv_workload_zipf(const KvService& service,
                                           std::size_t count, double write_pct,
                                           std::uint64_t key_space,
                                           double theta, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ZipfGenerator zipf(key_space, theta);
  std::vector<Command> commands;
  commands.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Scatter the zipf rank so hot keys are spread over the key space (and
    // thus over the service's shards) instead of clustered near zero.
    std::uint64_t mix = zipf(rng) + 0x9E3779B97F4A7C15ull;
    mix = (mix ^ (mix >> 30)) * 0xBF58476D1CE4E5B9ull;
    const std::uint64_t key = (mix ^ (mix >> 27)) % key_space;
    if (rng.uniform() * 100.0 < write_pct) {
      commands.push_back(service.make_put(key, rng()));
    } else {
      commands.push_back(service.make_get(key));
    }
  }
  return commands;
}

std::vector<Command> make_bank_workload(std::size_t count, double write_pct,
                                        std::uint64_t accounts,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Command> commands;
  commands.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.uniform() * 100.0 < write_pct) {
      const std::uint64_t from = rng.below(accounts);
      std::uint64_t to = rng.below(accounts);
      if (to == from) to = (to + 1) % accounts;
      commands.push_back(BankService::make_transfer(from, to, rng.below(100)));
    } else {
      commands.push_back(BankService::make_balance(rng.below(accounts)));
    }
  }
  return commands;
}

}  // namespace psmr
