#include "workload/ds_driver.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/padded.h"
#include "common/stopwatch.h"
#include "cos/early_sched.h"
#include "workload/generator.h"

namespace psmr {

DsDriverResult run_ds_benchmark(const DsDriverConfig& config) {
  const std::size_t list_size = exec_cost_list_size(config.cost);
  LinkedListService service(list_size);
  CosOptions cos_options = config.cos;
  cos_options.conflict = service.conflict();
  std::unique_ptr<Cos> cos;
  if (config.policy == SchedulerPolicy::kParallelInsert) {
    // The list relation is opaque (no key extractor), so this resolves to
    // the serial DAG fallback; kept so a policy sweep over the driver works.
    cos = make_parallel_insert_cos(cos_options);
  } else {
    cos = make_cos(cos_options);
    if (config.policy == SchedulerPolicy::kEarlyScheduling) {
      cos = std::make_unique<EarlyCos>(std::move(cos), service.class_map(),
                                       config.workers, cos_options.capacity);
    }
  }

  auto commands = make_list_workload(config.precreated_commands,
                                     config.write_pct, list_size, config.seed);

  std::atomic<bool> stop{false};
  std::vector<Padded<std::atomic<std::uint64_t>>> completed(
      static_cast<std::size_t>(config.workers));

  // Population sampling by the scheduler (cheap: every 64 inserts).
  std::atomic<std::uint64_t> population_sum{0};
  std::atomic<std::uint64_t> population_samples{0};

  std::thread scheduler([&] {
    std::uint64_t next_id = 1;
    std::size_t index = 0;
    while (!stop.load(std::memory_order_relaxed)) {  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
      Command c = commands[index];
      if (++index == commands.size()) index = 0;
      c.id = next_id++;
      if (!cos->insert(c)) return;  // closed
      if ((next_id & 63) == 0) {
        population_sum.fetch_add(cos->approx_size(),
                                 std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
        population_samples.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      }
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w) {
    workers.emplace_back([&, w] {
      auto& counter = completed[static_cast<std::size_t>(w)].value;
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;  // closed
        service.execute(*h.cmd);
        cos->remove(h);
        counter.fetch_add(1, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
      }
    });
  }

  auto total_completed = [&] {
    std::uint64_t total = 0;
    for (const auto& c : completed)
      total += c.value.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
    return total;
  };

  std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
  const std::uint64_t ops_before = total_completed();
  const std::uint64_t pop_sum_before =
      population_sum.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  const std::uint64_t pop_n_before =
      population_samples.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(config.measure_ms));
  const std::uint64_t elapsed = watch.elapsed_ns();
  const std::uint64_t ops_after = total_completed();
  const std::uint64_t pop_sum_after =
      population_sum.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter
  const std::uint64_t pop_n_after =
      population_samples.load(std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) stat counter

  stop.store(true, std::memory_order_relaxed);  // NOLINT(psmr-relaxed-order-audit) control flag; re-checked in loop or fenced by joins/locks
  cos->close();
  scheduler.join();
  for (auto& worker : workers) worker.join();

  DsDriverResult result;
  result.completed_ops = ops_after - ops_before;
  result.elapsed_ns = elapsed;
  result.throughput_kops = static_cast<double>(result.completed_ops) /
                           (static_cast<double>(elapsed) * 1e-9) / 1000.0;
  const std::uint64_t samples = pop_n_after - pop_n_before;
  result.mean_population =
      samples > 0 ? static_cast<double>(pop_sum_after - pop_sum_before) /
                        static_cast<double>(samples)
                  : 0.0;
  return result;
}

}  // namespace psmr
