// Standalone data-structure driver — the paper's §7.3 harness.
//
// One scheduler thread loops over a list of pre-created commands (creation
// cost off the hot path, as in the paper) invoking insert(); W worker
// threads loop get() -> execute against the service -> remove(). Throughput
// is the number of commands completed by the workers during the measurement
// window, after a warm-up phase. The mean graph population is also sampled
// (the paper uses it to show the insert thread is the bottleneck at peak).
#pragma once

#include <cstdint>
#include <memory>

#include "app/linked_list_service.h"
#include "cos/factory.h"

namespace psmr {

struct DsDriverConfig {
  // kCosDag runs every command through the COS; kEarlyScheduling routes
  // reads to per-worker queues via the list service's class map
  // (kSequential is meaningless for the standalone harness and treated as
  // kCosDag).
  SchedulerPolicy policy = SchedulerPolicy::kCosDag;
  // COS knobs; `cos.conflict` is ignored — the driver always uses the
  // service's relation.
  CosOptions cos;
  ExecCost cost = ExecCost::kLight;
  double write_pct = 0.0;
  int workers = 1;
  std::uint64_t warmup_ms = 100;
  std::uint64_t measure_ms = 500;
  std::uint64_t seed = 42;
  std::size_t precreated_commands = 1 << 16;
};

struct DsDriverResult {
  double throughput_kops = 0.0;  // completed commands per second / 1000
  double mean_population = 0.0;  // average graph occupancy during measurement
  std::uint64_t completed_ops = 0;
  std::uint64_t elapsed_ns = 0;
};

DsDriverResult run_ds_benchmark(const DsDriverConfig& config);

}  // namespace psmr
