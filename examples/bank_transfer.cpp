// Replicated bank — multi-key conflicts and an application invariant.
//
// Unlike the paper's linked list (where every write conflicts with
// everything), bank transfers name the two accounts they touch: transfers
// on disjoint account pairs run concurrently on the workers, transfers
// sharing an account serialize. The conserved total balance is checked at
// every replica at the end — any scheduling bug that lets two conflicting
// transfers interleave would break it.
//
//   ./examples/bank_transfer
#include <cstdio>
#include <memory>
#include <thread>

#include "app/bank_service.h"
#include "common/rng.h"
#include "smr/deployment.h"

int main() {
  using psmr::BankService;

  static constexpr std::size_t kAccounts = 64;
  static constexpr std::uint64_t kInitialBalance = 10'000;
  constexpr int kClients = 6;

  psmr::Deployment::Config config;
  config.replicas = 3;
  config.net.base_latency_us = 50;
  config.net.jitter_us = 30;
  config.replica.cos.kind = psmr::CosKind::kLockFree;
  config.replica.workers = 4;

  psmr::Deployment deployment(config, [] {
    return std::make_unique<BankService>(kAccounts, kInitialBalance);
  });

  std::vector<std::unique_ptr<psmr::Xoshiro256>> rngs;
  for (int c = 0; c < kClients; ++c) {
    auto rng = std::make_unique<psmr::Xoshiro256>(77 + c);
    psmr::Xoshiro256* r = rng.get();
    rngs.push_back(std::move(rng));
    psmr::SmrClient::Config client_config;
    client_config.pipeline = 4;
    deployment.add_client(client_config, [r] {
      const std::uint64_t from = r->below(kAccounts);
      std::uint64_t to = r->below(kAccounts);
      if (to == from) to = (to + 1) % kAccounts;
      if (r->uniform() < 0.6) {
        return BankService::make_transfer(from, to, r->below(100));
      }
      return BankService::make_balance(from);
    });
  }

  std::printf("running 3 bank replicas + %d clients for 2 seconds...\n",
              kClients);
  deployment.start();
  std::this_thread::sleep_for(std::chrono::seconds(2));
  const std::uint64_t completed = deployment.total_client_completed();
  for (psmr::SmrClient* client : deployment.clients()) client->drain(2000);

  bool converged = false;
  for (int t = 0; t < 400 && !converged; ++t) {
    converged = deployment.states_converged();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::printf("completed: %llu commands (%.1f kops/sec)\n",
              static_cast<unsigned long long>(completed),
              static_cast<double>(completed) / 2000.0);
  bool conserved = true;
  for (int i = 0; i < deployment.replica_count(); ++i) {
    const auto& bank =
        static_cast<const BankService&>(deployment.replica(i).service());
    const std::uint64_t total = bank.total_balance();
    const bool ok = total == kAccounts * kInitialBalance;
    conserved = conserved && ok;
    std::printf("replica %d: total balance %llu %s\n", i,
                static_cast<unsigned long long>(total),
                ok ? "(conserved)" : "(VIOLATION!)");
  }
  std::printf("replicas converged: %s\n", converged ? "yes" : "NO");
  deployment.stop();
  return (converged && conserved) ? 0 : 1;
}
