// Replicated linked-list service — the paper's end-to-end system.
//
// Deploys 3 replicas (simulated network + sequenced atomic broadcast +
// lock-free COS scheduler with 4 workers each) and 8 closed-loop clients
// running the readers/writers workload, then verifies that all replicas
// converged to the same state and prints throughput/latency.
//
//   ./examples/replicated_list
#include <cstdio>
#include <memory>
#include <thread>

#include "app/linked_list_service.h"
#include "common/rng.h"
#include "smr/deployment.h"

int main() {
  using psmr::LinkedListService;

  static constexpr std::size_t kListSize = 1000;  // "light" execution cost
  constexpr int kClients = 8;

  psmr::Deployment::Config config;
  config.replicas = 3;
  config.net.base_latency_us = 50;  // LAN-ish
  config.net.jitter_us = 30;
  config.replica.cos.kind = psmr::CosKind::kLockFree;
  config.replica.workers = 4;
  config.replica.broadcast.batch_max = 64;
  config.replica.broadcast.batch_timeout_us = 300;

  psmr::Deployment deployment(
      config, [] { return std::make_unique<LinkedListService>(kListSize); });

  std::vector<std::unique_ptr<psmr::Xoshiro256>> rngs;
  for (int c = 0; c < kClients; ++c) {
    auto rng = std::make_unique<psmr::Xoshiro256>(1000 + c);
    psmr::Xoshiro256* r = rng.get();
    rngs.push_back(std::move(rng));
    psmr::SmrClient::Config client_config;
    client_config.pipeline = 4;
    deployment.add_client(client_config, [r] {
      const std::uint64_t v = r->below(kListSize);
      // 10% writes, 90% reads.
      return r->uniform() < 0.1 ? LinkedListService::make_add(v)
                                : LinkedListService::make_contains(v);
    });
  }

  std::printf("running 3 replicas + %d clients for 2 seconds...\n", kClients);
  deployment.start();
  std::this_thread::sleep_for(std::chrono::seconds(2));

  const std::uint64_t completed = deployment.total_client_completed();
  psmr::Histogram latency;
  for (psmr::SmrClient* client : deployment.clients()) {
    latency.merge(client->latency_snapshot());
  }

  for (psmr::SmrClient* client : deployment.clients()) client->drain(2000);
  bool converged = false;
  for (int t = 0; t < 400 && !converged; ++t) {
    converged = deployment.states_converged();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::printf("completed:      %llu commands (%.1f kops/sec)\n",
              static_cast<unsigned long long>(completed),
              static_cast<double>(completed) / 2000.0);
  std::printf("latency:        mean %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              latency.mean() * 1e-6,
              static_cast<double>(latency.percentile(95)) * 1e-6,
              static_cast<double>(latency.percentile(99)) * 1e-6);
  for (int i = 0; i < deployment.replica_count(); ++i) {
    std::printf("replica %d:      executed %llu, digest %016llx%s\n", i,
                static_cast<unsigned long long>(
                    deployment.replica(i).executed_count()),
                static_cast<unsigned long long>(
                    deployment.replica(i).state_digest()),
                deployment.replica(i).is_leader() ? "  (leader)" : "");
  }
  std::printf("replicas converged: %s\n", converged ? "yes" : "NO");
  deployment.stop();
  return converged ? 0 : 1;
}
