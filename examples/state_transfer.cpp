// State-transfer demo: partition a replica, outrun the ordering log, heal.
//
// While replica 2 is partitioned, the other replicas keep committing and
// prune their logs past the retention window — ordinary delivery can no
// longer catch replica 2 up. On healing, the gap detector fires, replica 2
// fetches a checkpoint (service snapshot + at-most-once tables, via the
// wire codec) from a peer, installs it, and resumes live delivery.
//
//   ./examples/state_transfer
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "app/linked_list_service.h"
#include "smr/deployment.h"

int main() {
  using psmr::LinkedListService;

  psmr::Deployment::Config config;
  config.replicas = 3;
  config.net.base_latency_us = 40;
  config.net.jitter_us = 20;
  config.replica.cos.kind = psmr::CosKind::kLockFree;
  config.replica.workers = 2;
  config.replica.broadcast.retained_slots = 32;  // small, to demo quickly
  config.replica.broadcast.batch_max = 8;
  config.replica.broadcast.leader_timeout_ms = 100000;  // keep leader 0

  psmr::Deployment deployment(
      config, [] { return std::make_unique<LinkedListService>(0); });
  std::atomic<std::uint64_t> next{1};
  psmr::SmrClient::Config client_config;
  client_config.pipeline = 4;
  deployment.add_client(client_config, [&] {
    return LinkedListService::make_add(next.fetch_add(1) % 500);
  });
  deployment.start();

  const psmr::NodeId lagging = deployment.replica(2).endpoint();
  deployment.net().set_link(deployment.replica(0).endpoint(), lagging, false);
  deployment.net().set_link(deployment.replica(1).endpoint(), lagging, false);
  std::printf("[partition] replica 2 cut off; committing past the %u-slot "
              "retention window...\n",
              static_cast<unsigned>(config.replica.broadcast.retained_slots));

  while (deployment.total_client_completed() < 800) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("[partition] cluster executed %llu commands; replica 2 has %llu\n",
              static_cast<unsigned long long>(
                  deployment.replica(0).executed_count()),
              static_cast<unsigned long long>(
                  deployment.replica(2).executed_count()));

  deployment.net().set_link(deployment.replica(0).endpoint(), lagging, true);
  deployment.net().set_link(deployment.replica(1).endpoint(), lagging, true);
  std::printf("[heal] links restored; waiting for state transfer...\n");

  bool transferred = false;
  for (int t = 0; t < 2000 && !transferred; ++t) {
    transferred = deployment.replica(2).state_transfers() > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("[heal] state transfer %s\n",
              transferred ? "completed" : "DID NOT happen");

  for (psmr::SmrClient* client : deployment.clients()) client->drain(2000);
  bool converged = false;
  for (int t = 0; t < 1000 && !converged; ++t) {
    converged = deployment.states_converged();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (int i = 0; i < 3; ++i) {
    std::printf("replica %d: executed %llu, digest %016llx\n", i,
                static_cast<unsigned long long>(
                    deployment.replica(i).executed_count()),
                static_cast<unsigned long long>(
                    deployment.replica(i).state_digest()));
  }
  std::printf("converged after catch-up: %s\n", converged ? "yes" : "NO");
  deployment.stop();
  return (transferred && converged) ? 0 : 1;
}
