// Fault tolerance demo: crash the leader mid-run and watch the view change.
//
// With n = 2f+1 = 3 replicas the deployment tolerates one crash: when the
// leader goes silent, the followers elect the next leader (Viewstamped-
// Replication-style view change in the sequenced broadcast), the clients'
// retransmissions land at the new leader, and service resumes — with both
// survivors still in identical states.
//
//   ./examples/fault_tolerance
#include <cstdio>
#include <memory>
#include <thread>

#include "app/linked_list_service.h"
#include "common/rng.h"
#include "smr/deployment.h"

namespace {

std::uint64_t completed_after(psmr::Deployment& deployment,
                              std::uint64_t wait_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  return deployment.total_client_completed();
}

}  // namespace

int main() {
  using psmr::LinkedListService;
  static constexpr std::size_t kListSize = 500;

  psmr::Deployment::Config config;
  config.replicas = 3;
  config.net.base_latency_us = 50;
  config.net.jitter_us = 30;
  config.replica.cos.kind = psmr::CosKind::kLockFree;
  config.replica.workers = 4;
  config.replica.broadcast.heartbeat_interval_ms = 10;
  config.replica.broadcast.leader_timeout_ms = 200;

  psmr::Deployment deployment(
      config, [] { return std::make_unique<LinkedListService>(kListSize); });

  psmr::Xoshiro256 rng(5);
  psmr::SmrClient::Config client_config;
  client_config.pipeline = 2;
  client_config.resend_timeout_ms = 300;
  deployment.add_client(client_config, [&rng] {
    const std::uint64_t v = rng.below(kListSize);
    return rng.uniform() < 0.2 ? LinkedListService::make_add(v)
                               : LinkedListService::make_contains(v);
  });

  deployment.start();
  const std::uint64_t before_crash = completed_after(deployment, 800);
  std::printf("[t=0.8s] %llu commands completed under leader replica 0 "
              "(view %llu)\n",
              static_cast<unsigned long long>(before_crash),
              static_cast<unsigned long long>(deployment.replica(0).view()));

  std::printf("[t=0.8s] crashing the leader (replica 0)...\n");
  deployment.replica(0).crash();

  // The client stalls during the leader timeout + view change, then its
  // retransmissions flow through the new leader.
  bool recovered = false;
  std::uint64_t after_recovery = 0;
  for (int t = 0; t < 1200; ++t) {
    after_recovery = deployment.total_client_completed();
    if (after_recovery >= before_crash + 50) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const int new_leader = deployment.replica(1).is_leader()   ? 1
                         : deployment.replica(2).is_leader() ? 2
                                                             : -1;
  std::printf("[recovery] new leader: replica %d (view %llu)\n", new_leader,
              static_cast<unsigned long long>(deployment.replica(1).view()));
  std::printf("[recovery] %llu commands completed after the crash — "
              "service %s\n",
              static_cast<unsigned long long>(after_recovery - before_crash),
              recovered ? "recovered" : "DID NOT recover");

  for (psmr::SmrClient* client : deployment.clients()) client->drain(2000);
  bool converged = false;
  for (int t = 0; t < 400 && !converged; ++t) {
    converged = deployment.states_converged();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("survivors converged: %s\n", converged ? "yes" : "NO");
  deployment.stop();
  return (recovered && converged) ? 0 : 1;
}
