// Quickstart: the Conflict-Ordered Set in 60 lines.
//
// Builds the lock-free COS, feeds it a mixed read/write stream from one
// scheduler thread, and drains it with four worker threads — the exact
// scheduler/worker layout of parallel state machine replication (paper
// Alg. 1), minus the replication.
//
//   ./examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "app/linked_list_service.h"
#include "cos/factory.h"

int main() {
  using psmr::Command;
  using psmr::CosHandle;
  using psmr::LinkedListService;

  // The service: a sorted integer list; contains() is a read, add() is a
  // write. Reads are mutually independent, writes conflict with everything.
  LinkedListService list(/*initial_size=*/1000);

  // The paper's graph size: at most 150 pending commands.
  auto cos = psmr::make_cos({.kind = psmr::CosKind::kLockFree,
                             .capacity = 150,
                             .conflict = list.conflict()});

  constexpr int kCommands = 100000;
  constexpr int kWorkers = 4;

  // Scheduler: inserts commands in delivery order (single thread).
  std::thread scheduler([&] {
    for (std::uint64_t i = 1; i <= kCommands; ++i) {
      Command c = (i % 10 == 0) ? LinkedListService::make_add(i % 1000)
                                : LinkedListService::make_contains(i % 1000);
      c.id = i;
      if (!cos->insert(c)) return;
    }
  });

  // Workers: get a dependency-free command, execute it, remove it.
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      while (true) {
        CosHandle h = cos->get();
        if (!h) return;  // closed
        if (list.execute(*h.cmd).ok) hits.fetch_add(1);
        executed.fetch_add(1);
        cos->remove(h);
      }
    });
  }

  scheduler.join();
  while (executed.load() < kCommands) std::this_thread::yield();
  cos->close();
  for (auto& worker : workers) worker.join();

  std::printf("executed %llu commands on %d workers (%llu successful ops), "
              "final list size %zu\n",
              static_cast<unsigned long long>(executed.load()), kWorkers,
              static_cast<unsigned long long>(hits.load()), list.size());
  return 0;
}
