file(REMOVE_RECURSE
  "CMakeFiles/replicated_list.dir/replicated_list.cpp.o"
  "CMakeFiles/replicated_list.dir/replicated_list.cpp.o.d"
  "replicated_list"
  "replicated_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
