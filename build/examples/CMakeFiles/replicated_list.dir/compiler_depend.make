# Empty compiler generated dependencies file for replicated_list.
# This may be replaced when dependencies are built.
