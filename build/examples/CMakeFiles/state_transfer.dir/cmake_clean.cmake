file(REMOVE_RECURSE
  "CMakeFiles/state_transfer.dir/state_transfer.cpp.o"
  "CMakeFiles/state_transfer.dir/state_transfer.cpp.o.d"
  "state_transfer"
  "state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
