# Empty dependencies file for state_transfer.
# This may be replaced when dependencies are built.
