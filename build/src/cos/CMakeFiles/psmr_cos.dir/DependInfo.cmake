
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cos/coarse_grained.cc" "src/cos/CMakeFiles/psmr_cos.dir/coarse_grained.cc.o" "gcc" "src/cos/CMakeFiles/psmr_cos.dir/coarse_grained.cc.o.d"
  "/root/repo/src/cos/factory.cc" "src/cos/CMakeFiles/psmr_cos.dir/factory.cc.o" "gcc" "src/cos/CMakeFiles/psmr_cos.dir/factory.cc.o.d"
  "/root/repo/src/cos/fine_grained.cc" "src/cos/CMakeFiles/psmr_cos.dir/fine_grained.cc.o" "gcc" "src/cos/CMakeFiles/psmr_cos.dir/fine_grained.cc.o.d"
  "/root/repo/src/cos/lock_free.cc" "src/cos/CMakeFiles/psmr_cos.dir/lock_free.cc.o" "gcc" "src/cos/CMakeFiles/psmr_cos.dir/lock_free.cc.o.d"
  "/root/repo/src/cos/striped.cc" "src/cos/CMakeFiles/psmr_cos.dir/striped.cc.o" "gcc" "src/cos/CMakeFiles/psmr_cos.dir/striped.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/psmr_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
