file(REMOVE_RECURSE
  "libpsmr_cos.a"
)
