# Empty compiler generated dependencies file for psmr_cos.
# This may be replaced when dependencies are built.
