file(REMOVE_RECURSE
  "CMakeFiles/psmr_cos.dir/coarse_grained.cc.o"
  "CMakeFiles/psmr_cos.dir/coarse_grained.cc.o.d"
  "CMakeFiles/psmr_cos.dir/factory.cc.o"
  "CMakeFiles/psmr_cos.dir/factory.cc.o.d"
  "CMakeFiles/psmr_cos.dir/fine_grained.cc.o"
  "CMakeFiles/psmr_cos.dir/fine_grained.cc.o.d"
  "CMakeFiles/psmr_cos.dir/lock_free.cc.o"
  "CMakeFiles/psmr_cos.dir/lock_free.cc.o.d"
  "CMakeFiles/psmr_cos.dir/striped.cc.o"
  "CMakeFiles/psmr_cos.dir/striped.cc.o.d"
  "libpsmr_cos.a"
  "libpsmr_cos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_cos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
