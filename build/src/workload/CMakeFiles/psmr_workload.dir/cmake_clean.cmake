file(REMOVE_RECURSE
  "CMakeFiles/psmr_workload.dir/ds_driver.cc.o"
  "CMakeFiles/psmr_workload.dir/ds_driver.cc.o.d"
  "CMakeFiles/psmr_workload.dir/generator.cc.o"
  "CMakeFiles/psmr_workload.dir/generator.cc.o.d"
  "CMakeFiles/psmr_workload.dir/smr_driver.cc.o"
  "CMakeFiles/psmr_workload.dir/smr_driver.cc.o.d"
  "libpsmr_workload.a"
  "libpsmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
