
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ds_driver.cc" "src/workload/CMakeFiles/psmr_workload.dir/ds_driver.cc.o" "gcc" "src/workload/CMakeFiles/psmr_workload.dir/ds_driver.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/psmr_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/psmr_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/smr_driver.cc" "src/workload/CMakeFiles/psmr_workload.dir/smr_driver.cc.o" "gcc" "src/workload/CMakeFiles/psmr_workload.dir/smr_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/psmr_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cos/CMakeFiles/psmr_cos.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/psmr_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/psmr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/psmr_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/psmr_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/psmr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
