file(REMOVE_RECURSE
  "CMakeFiles/psmr_sim.dir/cos_models.cc.o"
  "CMakeFiles/psmr_sim.dir/cos_models.cc.o.d"
  "CMakeFiles/psmr_sim.dir/des.cc.o"
  "CMakeFiles/psmr_sim.dir/des.cc.o.d"
  "libpsmr_sim.a"
  "libpsmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
