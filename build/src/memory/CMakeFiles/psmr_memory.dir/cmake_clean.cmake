file(REMOVE_RECURSE
  "CMakeFiles/psmr_memory.dir/ebr.cc.o"
  "CMakeFiles/psmr_memory.dir/ebr.cc.o.d"
  "libpsmr_memory.a"
  "libpsmr_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
