file(REMOVE_RECURSE
  "libpsmr_memory.a"
)
