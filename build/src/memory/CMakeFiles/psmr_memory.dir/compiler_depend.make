# Empty compiler generated dependencies file for psmr_memory.
# This may be replaced when dependencies are built.
