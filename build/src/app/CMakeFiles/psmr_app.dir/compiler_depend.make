# Empty compiler generated dependencies file for psmr_app.
# This may be replaced when dependencies are built.
