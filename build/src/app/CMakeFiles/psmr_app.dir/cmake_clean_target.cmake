file(REMOVE_RECURSE
  "libpsmr_app.a"
)
