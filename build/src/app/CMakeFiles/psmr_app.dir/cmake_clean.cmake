file(REMOVE_RECURSE
  "CMakeFiles/psmr_app.dir/bank_service.cc.o"
  "CMakeFiles/psmr_app.dir/bank_service.cc.o.d"
  "CMakeFiles/psmr_app.dir/kv_service.cc.o"
  "CMakeFiles/psmr_app.dir/kv_service.cc.o.d"
  "CMakeFiles/psmr_app.dir/linked_list_service.cc.o"
  "CMakeFiles/psmr_app.dir/linked_list_service.cc.o.d"
  "libpsmr_app.a"
  "libpsmr_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
