# Empty compiler generated dependencies file for psmr_broadcast.
# This may be replaced when dependencies are built.
