file(REMOVE_RECURSE
  "libpsmr_broadcast.a"
)
