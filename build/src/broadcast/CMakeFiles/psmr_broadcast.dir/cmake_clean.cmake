file(REMOVE_RECURSE
  "CMakeFiles/psmr_broadcast.dir/sequenced_broadcast.cc.o"
  "CMakeFiles/psmr_broadcast.dir/sequenced_broadcast.cc.o.d"
  "libpsmr_broadcast.a"
  "libpsmr_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
