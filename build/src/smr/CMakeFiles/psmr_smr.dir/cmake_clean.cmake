file(REMOVE_RECURSE
  "CMakeFiles/psmr_smr.dir/client.cc.o"
  "CMakeFiles/psmr_smr.dir/client.cc.o.d"
  "CMakeFiles/psmr_smr.dir/deployment.cc.o"
  "CMakeFiles/psmr_smr.dir/deployment.cc.o.d"
  "CMakeFiles/psmr_smr.dir/replica.cc.o"
  "CMakeFiles/psmr_smr.dir/replica.cc.o.d"
  "libpsmr_smr.a"
  "libpsmr_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
