file(REMOVE_RECURSE
  "libpsmr_codec.a"
)
