file(REMOVE_RECURSE
  "CMakeFiles/psmr_codec.dir/command_codec.cc.o"
  "CMakeFiles/psmr_codec.dir/command_codec.cc.o.d"
  "libpsmr_codec.a"
  "libpsmr_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psmr_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
