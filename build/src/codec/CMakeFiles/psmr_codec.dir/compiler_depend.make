# Empty compiler generated dependencies file for psmr_codec.
# This may be replaced when dependencies are built.
