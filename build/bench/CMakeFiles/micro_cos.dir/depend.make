# Empty dependencies file for micro_cos.
# This may be replaced when dependencies are built.
