file(REMOVE_RECURSE
  "CMakeFiles/micro_cos.dir/micro_cos.cc.o"
  "CMakeFiles/micro_cos.dir/micro_cos.cc.o.d"
  "micro_cos"
  "micro_cos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
