# Empty dependencies file for fig2_ds_workers.
# This may be replaced when dependencies are built.
