file(REMOVE_RECURSE
  "CMakeFiles/fig2_ds_workers.dir/fig2_ds_workers.cc.o"
  "CMakeFiles/fig2_ds_workers.dir/fig2_ds_workers.cc.o.d"
  "fig2_ds_workers"
  "fig2_ds_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ds_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
