# Empty compiler generated dependencies file for fig4_smr_workers.
# This may be replaced when dependencies are built.
