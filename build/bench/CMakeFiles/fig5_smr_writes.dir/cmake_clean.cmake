file(REMOVE_RECURSE
  "CMakeFiles/fig5_smr_writes.dir/fig5_smr_writes.cc.o"
  "CMakeFiles/fig5_smr_writes.dir/fig5_smr_writes.cc.o.d"
  "fig5_smr_writes"
  "fig5_smr_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_smr_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
