# Empty compiler generated dependencies file for fig5_smr_writes.
# This may be replaced when dependencies are built.
