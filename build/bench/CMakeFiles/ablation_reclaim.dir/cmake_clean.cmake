file(REMOVE_RECURSE
  "CMakeFiles/ablation_reclaim.dir/ablation_reclaim.cc.o"
  "CMakeFiles/ablation_reclaim.dir/ablation_reclaim.cc.o.d"
  "ablation_reclaim"
  "ablation_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
