# Empty dependencies file for fig3_ds_writes.
# This may be replaced when dependencies are built.
