file(REMOVE_RECURSE
  "CMakeFiles/fig3_ds_writes.dir/fig3_ds_writes.cc.o"
  "CMakeFiles/fig3_ds_writes.dir/fig3_ds_writes.cc.o.d"
  "fig3_ds_writes"
  "fig3_ds_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ds_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
