
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/striped_test.cc" "tests/CMakeFiles/striped_test.dir/striped_test.cc.o" "gcc" "tests/CMakeFiles/striped_test.dir/striped_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cos/CMakeFiles/psmr_cos.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/psmr_app.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/psmr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/psmr_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/psmr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
