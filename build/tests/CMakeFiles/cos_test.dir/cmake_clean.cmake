file(REMOVE_RECURSE
  "CMakeFiles/cos_test.dir/cos_test.cc.o"
  "CMakeFiles/cos_test.dir/cos_test.cc.o.d"
  "cos_test"
  "cos_test.pdb"
  "cos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
