# Empty dependencies file for cos_test.
# This may be replaced when dependencies are built.
