# Empty compiler generated dependencies file for rw_window_test.
# This may be replaced when dependencies are built.
