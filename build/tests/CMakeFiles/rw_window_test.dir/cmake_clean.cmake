file(REMOVE_RECURSE
  "CMakeFiles/rw_window_test.dir/rw_window_test.cc.o"
  "CMakeFiles/rw_window_test.dir/rw_window_test.cc.o.d"
  "rw_window_test"
  "rw_window_test.pdb"
  "rw_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
