file(REMOVE_RECURSE
  "CMakeFiles/cos_concurrency_test.dir/cos_concurrency_test.cc.o"
  "CMakeFiles/cos_concurrency_test.dir/cos_concurrency_test.cc.o.d"
  "cos_concurrency_test"
  "cos_concurrency_test.pdb"
  "cos_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
