# Empty dependencies file for cos_concurrency_test.
# This may be replaced when dependencies are built.
