# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/cos_test[1]_include.cmake")
include("/root/repo/build/tests/cos_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/striped_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/broadcast_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rw_window_test[1]_include.cmake")
